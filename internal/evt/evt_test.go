package evt

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// gpdSample draws n GPD(gamma, sigma) excesses by inverting the CDF.
func gpdSample(rng *rand.Rand, n int, gamma, sigma float64) []float64 {
	y := make([]float64, n)
	for i := range y {
		u := rng.Float64()
		if gamma == 0 {
			y[i] = -sigma * math.Log(1-u)
		} else {
			y[i] = sigma / gamma * (math.Pow(1-u, -gamma) - 1)
		}
	}
	return y
}

func TestFitGPDRecoversShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ gamma, sigma float64 }{
		{0.3, 1.0},
		{0.0, 0.5},
		{-0.2, 2.0},
	} {
		y := gpdSample(rng, 4000, tc.gamma, tc.sigma)
		g, s := FitGPD(y)
		if math.Abs(g-tc.gamma) > 0.12 {
			t.Errorf("gamma=%g sigma=%g: fitted gamma %g", tc.gamma, tc.sigma, g)
		}
		if math.Abs(s-tc.sigma) > 0.25*tc.sigma+0.05 {
			t.Errorf("gamma=%g sigma=%g: fitted sigma %g", tc.gamma, tc.sigma, s)
		}
	}
}

func TestFitGPDDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	y := gpdSample(rng, 500, 0.2, 1.3)
	g1, s1 := FitGPD(y)
	g2, s2 := FitGPD(y)
	if g1 != g2 || s1 != s2 {
		t.Fatalf("same input fitted twice differs: (%v,%v) vs (%v,%v)", g1, s1, g2, s2)
	}
}

// TestCalibratorUniformLowerTail pins the end-to-end quantile against
// the one distribution whose quantiles are exact: X ~ U(0,1) has
// P(X < z) = z, so the calibrated z for risk q must be ≈ q — well
// below the anchor, where only the GPD extrapolation can reach.
func TestCalibratorUniformLowerTail(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 20000
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	sort.Float64s(x)
	for _, q := range []float64{1e-3, 1e-4} {
		c := NewCalibrator(0)
		if !c.Refit(x, q) {
			t.Fatalf("q=%g: refit did not run", q)
		}
		z := c.Threshold()
		if z < q/4 || z > q*4 {
			t.Errorf("q=%g: z=%g outside [q/4, 4q] for the uniform tail", q, z)
		}
	}
}

func TestCalibratorMonotoneInRisk(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 5000)
	for i := range x {
		x[i] = rng.NormFloat64()*0.2 + 1 // measure-like: mostly ~1, soft lower tail
		if x[i] < 0 {
			x[i] = 0
		}
	}
	sort.Float64s(x)
	prev := math.Inf(-1)
	for _, q := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 5e-2} {
		c := NewCalibrator(0)
		c.Refit(x, q)
		if z := c.Threshold(); z < prev {
			t.Fatalf("z(q) not monotone: z(%g)=%g < previous %g", q, z, prev)
		} else {
			prev = z
		}
	}
}

// TestCalibratorDeepQuantileAuthority: a short-tail (γ<0) fit must not
// saturate at its support endpoint when the requested risk goes beyond
// the census's empirical resolution (q·n < 1). A bounded sample window
// always under-represents the true lower tail, so a feedback controller
// that keeps deepening q needs z to keep strictly decreasing — the
// exponential extension past r = 1/Nt provides exactly that.
func TestCalibratorDeepQuantileAuthority(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 1024) // the detector's rolling-window size
	for i := range x {
		// Bounded support well above zero: short-tail fits, and the
		// extension has room to keep descending before the z ≥ 0 clamp.
		x[i] = 5 + 0.6*rng.Float64()
	}
	sort.Float64s(x)
	c := NewCalibrator(0)
	prev := math.Inf(1)
	for _, q := range []float64{1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8} {
		if !c.Refit(x, q) {
			t.Fatalf("q=%g: refit did not run", q)
		}
		z := c.Threshold()
		if !(z < prev) {
			t.Fatalf("z saturated: z(%g)=%.9g, previous %.9g — deeper risk must keep lowering the threshold", q, z, prev)
		}
		prev = z
	}
	if g := c.State().Gamma; g >= 0 {
		t.Skipf("fit picked γ=%g ≥ 0; scenario did not exercise the short-tail branch", g)
	}
}

func TestCalibratorInsufficientSamplesKeepsFit(t *testing.T) {
	c := NewCalibrator(0)
	if c.Refit(make([]float64, MinSamples-1), 1e-3) {
		t.Fatal("refit ran on an undersized census")
	}
	if c.Calibrated() {
		t.Fatal("undersized census produced a calibration")
	}
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 2000)
	for i := range x {
		x[i] = rng.Float64()
	}
	sort.Float64s(x)
	c.Refit(x, 1e-3)
	z := c.Threshold()
	if !c.Calibrated() || z <= 0 {
		t.Fatalf("full census did not calibrate (z=%g)", z)
	}
	// A following thin census must keep the fit, re-deriving z for
	// the moved risk (smaller q → smaller z).
	if c.Refit(x[:4], 1e-4) {
		t.Fatal("refit ran on a thin census")
	}
	if !c.Calibrated() {
		t.Fatal("thin census dropped the calibration")
	}
	if z2 := c.Threshold(); !(z2 < z) {
		t.Fatalf("requantile to smaller risk did not lower z: %g -> %g", z, z2)
	}
}

func TestCalibratorDegenerateCensus(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = 0.7 // point mass: no lower tail at all
	}
	c := NewCalibrator(0)
	if !c.Refit(x, 1e-3) {
		t.Fatal("degenerate census did not calibrate")
	}
	// Strict verdict comparisons mean z equal to the mass flags
	// nothing — z above it would flag everything.
	if z := c.Threshold(); z > 0.7 {
		t.Fatalf("degenerate census z=%g flags the point mass", z)
	}
}

func TestCalibratorBulkRisk(t *testing.T) {
	// A risk at or beyond the anchor level is a bulk quantile: the
	// calibrator must fall back to the empirical census, not
	// extrapolate a tail upward.
	x := make([]float64, 1000)
	for i := range x {
		x[i] = float64(i) / 1000
	}
	c := NewCalibrator(0.1)
	c.Refit(x, 0.3)
	if z := c.Threshold(); math.Abs(z-0.3) > 0.01 {
		t.Fatalf("bulk risk 0.3 calibrated z=%g, want ≈0.3", z)
	}
}

func TestCalibratorStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := make([]float64, 3000)
	for i := range x {
		x[i] = rng.Float64()
	}
	sort.Float64s(x)
	c := NewCalibrator(0)
	c.Refit(x, 1e-3)
	st := c.State()
	c2 := NewCalibrator(0)
	c2.SetState(st)
	if c2.State() != st {
		t.Fatal("state round trip mutated the state")
	}
	// Both must requantile identically from the restored fit.
	c.Refit(nil, 1e-4)
	c2.Refit(nil, 1e-4)
	if c.Threshold() != c2.Threshold() {
		t.Fatalf("restored calibrator requantiles differently: %g vs %g", c.Threshold(), c2.Threshold())
	}
}
