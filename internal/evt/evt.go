// Package evt implements the Peaks-Over-Threshold calibration behind
// Config.AutoThreshold: a streaming-EVT (Siffer-style SPOT) estimator
// of extreme quantiles, adapted to the *lower* tail because every SPOT
// verdict measure (RD, IRSD, IkRD) flags when it is LOW.
//
// The classic recipe — anchor a threshold t at a high empirical
// quantile of an initial window, fit a generalized Pareto distribution
// to the excesses over t, and invert the tail estimate for a
// user-chosen risk q — is mirrored downward: the anchor sits at a low
// quantile (Level) of the measure census, the excesses are the
// deficits t − x of the samples below it, and the extreme quantile
//
//	z_q = t − (σ/γ)·((q·n/Nt)^(−γ) − 1)        (γ→0: t + σ·ln(q·n/Nt))
//
// satisfies P(X < z_q) ≈ q under the fitted tail. The detector then
// flags measure values strictly below z_q, so the flagged rate tracks
// q instead of a hand-tuned constant.
//
// Unlike the window-then-stream shape of the exemplars, the detector
// refits from scratch at every epoch sweep: a sweep visits every live
// cell, so each refit sees a complete census of the current measure
// distribution — drift tracking falls out for free and no incremental
// peak bookkeeping is needed. Everything here is deterministic pure
// arithmetic over a sorted sample slice (Grimshaw's root search uses a
// fixed grid plus bisection), which is what lets calibrated verdicts
// stay bit-identical across shard counts: shards contribute samples in
// layout-dependent order, but the caller sorts before Refit.
package evt

import (
	"math"
	"sort"
)

const (
	// MinSamples is the smallest census a refit will fit a tail to;
	// below it the previous calibration (if any) is retained.
	MinSamples = 32
	// MinPeaks is the minimum number of excesses under the anchor; the
	// anchor is raised to the next distinct sample value until the
	// tail set reaches it.
	MinPeaks = 8
	// DefaultLevel is the anchor quantile used when the caller passes
	// none: the POT threshold t sits at the 10% point of the census,
	// leaving the lowest decile as the tail the GPD models.
	DefaultLevel = 0.1
)

// State is a Calibrator's complete serializable state: the published
// threshold plus the last fit's parameters, enough to re-derive z for
// a moved risk without the samples. All floats round-trip bit-exactly
// through the snapshot codec, which is what makes restored detectors
// continue bit-identically.
type State struct {
	// Calibrated reports whether Z is a fitted threshold (false means
	// the detector should keep using its fixed configured threshold).
	Calibrated bool
	// Z is the calibrated threshold: values strictly below it flag.
	Z float64
	// T is the POT anchor of the last fit; Gamma and Sigma the fitted
	// GPD shape and scale of the deficits below it.
	T, Gamma, Sigma float64
	// N is the census size of the last fit, Nt its tail (peak) count.
	N, Nt uint64
}

// Calibrator maintains the POT calibration of one measure
// distribution (the detector keeps one per (measure, arity) pair).
// Not safe for concurrent use; the detector refits on the dispatcher
// goroutine with shard workers idle.
type Calibrator struct {
	level float64
	st    State
	peaks []float64 // refit scratch, reused
}

// NewCalibrator returns an uncalibrated calibrator anchoring at the
// given census quantile; level ≤ 0 selects DefaultLevel.
func NewCalibrator(level float64) *Calibrator {
	if level <= 0 {
		level = DefaultLevel
	}
	return &Calibrator{level: level}
}

// Calibrated reports whether Threshold carries a fitted value.
func (c *Calibrator) Calibrated() bool { return c.st.Calibrated }

// Threshold returns the current calibrated threshold z_q (only
// meaningful when Calibrated).
func (c *Calibrator) Threshold() float64 { return c.st.Z }

// State returns the calibrator's serializable state.
func (c *Calibrator) State() State { return c.st }

// SetState overwrites the calibrator's state (snapshot restore).
func (c *Calibrator) SetState(s State) { c.st = s }

// Refit recalibrates the threshold from a complete census of the
// measure distribution, sorted ascending, for risk q (the target
// P(X < z)). It reports whether a fit ran: censuses under MinSamples
// keep the previous fit — re-deriving z for the moved q when one
// exists — so a thin sweep degrades to a stale threshold, never to a
// garbage one.
func (c *Calibrator) Refit(sorted []float64, q float64) bool {
	n := len(sorted)
	if n < MinSamples {
		if c.st.Calibrated {
			c.requantile(q)
		}
		return false
	}
	// Anchor at the census's level-quantile, raised to the next
	// distinct value until at least MinPeaks samples sit strictly
	// below it (ties with t carry no tail information).
	pos := int(c.level * float64(n))
	if pos < MinPeaks {
		pos = MinPeaks
	}
	if pos > n-1 {
		pos = n - 1
	}
	t := sorted[pos]
	below := sort.SearchFloat64s(sorted, t)
	for below < MinPeaks {
		nb := sort.Search(n, func(i int) bool { return sorted[i] > t })
		if nb >= n {
			break
		}
		below = nb
		t = sorted[nb]
	}
	if below < MinPeaks {
		// Degenerate census — essentially a point mass, no lower tail
		// to model. The empirical quantile is the honest answer, and
		// because verdict comparisons are strict, z landing on the
		// mass flags nothing.
		c.st = State{Calibrated: true, Z: empirical(sorted, q), T: t, N: uint64(n)}
		return true
	}
	peaks := c.peaks[:0]
	for i := 0; i < below; i++ {
		peaks = append(peaks, t-sorted[i])
	}
	c.peaks = peaks
	gamma, sigma := FitGPD(peaks)
	c.st = State{Calibrated: true, T: t, Gamma: gamma, Sigma: sigma, N: uint64(n), Nt: uint64(below)}
	if sigma <= 0 || q*float64(n) >= float64(below) {
		// The target quantile sits inside the bulk the anchor already
		// covers (or the fit degenerated): read it off the census.
		c.st.Z = empirical(sorted, q)
	} else {
		c.st.Z = tailQuantile(t, gamma, sigma, float64(n), float64(below), q)
	}
	if c.st.Z < 0 {
		c.st.Z = 0
	}
	return true
}

// requantile re-derives z from the retained fit for a moved risk —
// the no-new-samples path. Risks that fall inside the bulk keep the
// previous z (the census needed for an empirical read is gone).
func (c *Calibrator) requantile(q float64) {
	s := &c.st
	if s.Nt == 0 || s.Sigma <= 0 || q*float64(s.N) >= float64(s.Nt) {
		return
	}
	if z := tailQuantile(s.T, s.Gamma, s.Sigma, float64(s.N), float64(s.Nt), q); z >= 0 {
		s.Z = z
	} else {
		s.Z = 0
	}
}

// empirical is the plain lower quantile of a sorted census:
// P(X < sorted[i]) ≈ i/n, so index floor(q·n).
func empirical(sorted []float64, q float64) float64 {
	i := int(q * float64(len(sorted)))
	if i > len(sorted)-1 {
		i = len(sorted) - 1
	}
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

// tailQuantile inverts the POT tail estimate for the lower tail:
// with deficits Y = t − X ~ GPD(γ, σ) and Nt of n samples in the
// tail, P(X < t − y) ≈ (Nt/n)·(1 + γy/σ)^(−1/γ); solving for
// P = q gives the returned z. r = q·n/Nt < 1 on every call (the
// caller routes bulk risks to the empirical census).
//
// A short-tail fit (γ < 0) has a finite support endpoint at t + σ/γ,
// so below the fit's empirical resolution (r < 1/Nt, i.e. deeper than
// one peak's worth of tail mass) the inverted quantile saturates just
// past the observed sample minimum and stops responding to q — which
// would freeze the detector's rate controller at whatever the census
// endpoint happens to fire. The true distribution keeps producing
// fresh values below any finite window's minimum, so past r = 1/Nt
// the estimate switches to an exponential extension through the GPD's
// value there, with the fit's mean-matched slope σ/(1−γ): z keeps
// strictly decreasing in q and the controller keeps its authority.
func tailQuantile(t, gamma, sigma, n, nt, q float64) float64 {
	r := q * n / nt
	if gamma < 0 {
		if r0 := 1 / nt; r < r0 {
			z0 := t - sigma/gamma*(math.Pow(r0, -gamma)-1)
			return z0 + sigma/(1-gamma)*math.Log(r/r0)
		}
	}
	if gamma == 0 {
		return t + sigma*math.Log(r)
	}
	return t - sigma/gamma*(math.Pow(r, -gamma)-1)
}

// FitGPD fits a generalized Pareto distribution to the excesses y
// (all ≥ 0, at least one > 0) and returns the maximum-likelihood
// (shape γ, scale σ) among the candidates considered: Grimshaw's
// estimator — the roots of u(x)·v(x) = 1 located by a fixed
// deterministic grid-plus-bisection search over both admissible
// branches, each root yielding γ = v(x)−1, σ = γ/x — plus the
// method-of-moments estimate and the exponential (γ=0, σ=mean)
// baseline. Deterministic: identical input yields identical output.
func FitGPD(y []float64) (gamma, sigma float64) {
	var ymin, ymax, sum float64
	ymin = math.Inf(1)
	for _, v := range y {
		if v < ymin {
			ymin = v
		}
		if v > ymax {
			ymax = v
		}
		sum += v
	}
	if ymax <= 0 || len(y) == 0 {
		return 0, 0
	}
	mean := sum / float64(len(y))

	bestG, bestS := 0.0, mean
	bestLL := gpdLogLik(y, 0, mean)
	consider := func(g, s float64) {
		if g < 0 && s <= -g*ymax {
			// Short-tail candidate whose support endpoint −σ/γ falls at
			// or inside the sample maximum — the true endpoint must
			// cover every observed excess, so lift σ until it just
			// does rather than discarding the candidate. (Uniform-ish
			// tails put the moment estimate exactly here.)
			s = -g * ymax * (1 + 1e-9)
		}
		if ll := gpdLogLik(y, g, s); ll > bestLL {
			bestLL, bestG, bestS = ll, g, s
		}
	}
	if mg, ms, ok := momentEstimate(y, mean); ok {
		consider(mg, ms)
	}
	root := func(x float64) {
		_, v := grimshawUV(y, x)
		g := v - 1
		if g != 0 {
			consider(g, g/x)
		}
	}
	// Left branch: x ∈ (−1/ymax, 0). Right branch: x ∈ (0, c] with
	// Grimshaw's bound c = 2(mean−ymin)/ymin². The trivial root at
	// x = 0 is excluded by the interval margins; it is the γ=0
	// baseline already considered.
	a := -1 / ymax
	searchRoots(y, a*(1-1e-6), a*1e-6, root)
	if ymin > 0 && mean > ymin {
		cb := 2 * (mean - ymin) / (ymin * ymin)
		searchRoots(y, cb*1e-9, cb, root)
	}
	return bestG, bestS
}

// searchRoots scans [lo, hi] for sign changes of w(x) = u(x)·v(x) − 1
// on a fixed 32-cell grid and bisects each bracketed root to float
// convergence, invoking found on every root. Fixed iteration counts
// keep the search deterministic.
func searchRoots(y []float64, lo, hi float64, found func(float64)) {
	const cells = 32
	if !(hi > lo) {
		return
	}
	w := func(x float64) float64 {
		u, v := grimshawUV(y, x)
		return u*v - 1
	}
	step := (hi - lo) / cells
	x0, w0 := lo, w(lo)
	for i := 1; i <= cells; i++ {
		x1 := lo + float64(i)*step
		if i == cells {
			x1 = hi
		}
		w1 := w(x1)
		if w0 == 0 {
			found(x0)
		} else if !math.IsNaN(w0) && !math.IsNaN(w1) && w0*w1 < 0 {
			bl, bh, wl := x0, x1, w0
			for it := 0; it < 60; it++ {
				mid := (bl + bh) / 2
				wm := w(mid)
				if wm == 0 {
					bl, bh = mid, mid
					break
				}
				if wl*wm < 0 {
					bh = mid
				} else {
					bl, wl = mid, wm
				}
			}
			found((bl + bh) / 2)
		}
		x0, w0 = x1, w1
	}
}

// grimshawUV evaluates Grimshaw's u(x) = mean(1/(1+x·yᵢ)) and
// v(x) = 1 + mean(ln(1+x·yᵢ)); NaN when x leaves the admissible
// region (some 1+x·yᵢ ≤ 0).
func grimshawUV(y []float64, x float64) (u, v float64) {
	var su, sv float64
	for _, yi := range y {
		a := 1 + x*yi
		if a <= 0 {
			return math.NaN(), math.NaN()
		}
		su += 1 / a
		sv += math.Log(a)
	}
	n := float64(len(y))
	return su / n, 1 + sv/n
}

// momentEstimate is the method-of-moments GPD estimate:
// γ = ½(1 − m²/s²), σ = ½m(1 + m²/s²). Valid only with positive
// sample variance.
func momentEstimate(y []float64, mean float64) (gamma, sigma float64, ok bool) {
	var sq float64
	for _, v := range y {
		d := v - mean
		sq += d * d
	}
	variance := sq / float64(len(y))
	if variance <= 0 || mean <= 0 {
		return 0, 0, false
	}
	r := mean * mean / variance
	return 0.5 * (1 - r), 0.5 * mean * (1 + r), true
}

// gpdLogLik is the GPD log-likelihood of the excesses under (γ, σ);
// −Inf outside the parameter support, so invalid candidates lose
// every comparison.
func gpdLogLik(y []float64, gamma, sigma float64) float64 {
	if sigma <= 0 {
		return math.Inf(-1)
	}
	n := float64(len(y))
	ll := -n * math.Log(sigma)
	if gamma == 0 {
		var s float64
		for _, v := range y {
			s += v
		}
		return ll - s/sigma
	}
	inv := 1 + 1/gamma
	for _, v := range y {
		a := 1 + gamma*v/sigma
		if a <= 0 {
			return math.Inf(-1)
		}
		ll -= inv * math.Log(a)
	}
	return ll
}
