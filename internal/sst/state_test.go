package sst

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// --- fixtures -------------------------------------------------------

// richStats builds an epoch snapshot whose base cells make pair
// subspaces look worth promoting: a dense cluster varying only in dims
// 0 and 1, plus two far-away low-density cells that project to sparse
// cells in every pair. Subspaces are reported healthy (sparse fraction
// 0.5) so owned members survive the demotion pass.
func richStats(d, subspaces int) *EpochStats {
	st := &EpochStats{Tick: 64, Subspaces: make([]SubspaceStats, subspaces)}
	for i := range st.Subspaces {
		st.Subspaces[i] = SubspaceStats{Populated: 4, TotalDc: 8, Sparse: 2}
	}
	for k := 0; k < 8; k++ {
		coords := make([]uint8, d)
		coords[0] = uint8(k % 2)
		coords[1] = uint8(k / 2 % 2)
		st.BaseCells = append(st.BaseCells, BaseCell{Coords: coords, Dc: 10})
		st.BaseTotal += 10
	}
	for k := 0; k < 2; k++ {
		coords := make([]uint8, d)
		for i := range coords {
			coords[i] = uint8(6 + k)
		}
		st.BaseCells = append(st.BaseCells, BaseCell{Coords: coords, Dc: 0.01})
		st.BaseTotal += 0.01
	}
	return st
}

// poorStats reports every subspace empty, forcing the demotion pass to
// fire for all owned members, while keeping base cells so the promote
// search still runs (and draws from the RNG).
func poorStats(d, subspaces int) *EpochStats {
	st := richStats(d, subspaces)
	for i := range st.Subspaces {
		st.Subspaces[i] = SubspaceStats{}
	}
	return st
}

// apply replays an evolution onto a template the way the stream layer
// does: demotions first, then promotions.
func apply(t *testing.T, tmpl *Template, ev Evolution) {
	t.Helper()
	for _, id := range ev.Demote {
		if err := tmpl.Demote(id); err != nil {
			t.Fatalf("demote %d: %v", id, err)
		}
	}
	for _, dims := range ev.Promote {
		if _, err := tmpl.Promote(dims); err != nil {
			t.Fatalf("promote %v: %v", dims, err)
		}
	}
}

// cloneTemplate round-trips a template's evolved group through the
// serialization surface into a fresh fixed template.
func cloneTemplate(t *testing.T, src *Template, d, maxDim int) *Template {
	t.Helper()
	dst, err := NewFixed(d, maxDim)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.RestoreEvolved(src.EvolvedSlots(), src.FreeSlots()); err != nil {
		t.Fatalf("RestoreEvolved: %v", err)
	}
	return dst
}

// sameTemplate asserts two templates agree slot by slot.
func sameTemplate(t *testing.T, a, b *Template) {
	t.Helper()
	if a.Count() != b.Count() || a.FixedCount() != b.FixedCount() {
		t.Fatalf("template shape: %d/%d vs %d/%d", a.Count(), a.FixedCount(), b.Count(), b.FixedCount())
	}
	for i := 0; i < a.Count(); i++ {
		if a.Active(i) != b.Active(i) {
			t.Fatalf("slot %d active %v vs %v", i, a.Active(i), b.Active(i))
		}
		if a.Active(i) && !reflect.DeepEqual(a.Dims(i), b.Dims(i)) {
			t.Fatalf("slot %d dims %v vs %v", i, a.Dims(i), b.Dims(i))
		}
	}
	if !reflect.DeepEqual(a.FreeSlots(), b.FreeSlots()) {
		t.Fatalf("free lists %v vs %v", a.FreeSlots(), b.FreeSlots())
	}
}

// --- countedSource --------------------------------------------------

func TestCountedSourceSkipTo(t *testing.T) {
	a := newCountedSource(7)
	ra := rand.New(a)
	for i := 0; i < 37; i++ {
		if i%3 == 0 {
			ra.Uint64()
		} else {
			ra.Int63()
		}
	}
	draws := a.draws
	if draws == 0 {
		t.Fatal("no draws counted")
	}

	b := newCountedSource(1) // wrong seed on purpose; Seed resets it
	b.Seed(7)
	b.skipTo(draws)
	if b.draws != draws {
		t.Fatalf("skipTo landed at %d draws, want %d", b.draws, draws)
	}
	for i := 0; i < 16; i++ {
		if av, bv := a.Int63(), b.Int63(); av != bv {
			t.Fatalf("draw %d diverged after skipTo: %d vs %d", i, av, bv)
		}
	}
}

// --- TopSparse ------------------------------------------------------

// TestTopSparseStateRoundTrip drives a sampling-mode TopSparse (so the
// RNG advances) through promote and demote epochs, checkpoints it,
// restores into a fresh evolver, and asserts byte-stable state plus an
// identical evolution sequence afterwards.
func TestTopSparseStateRoundTrip(t *testing.T) {
	const d, maxDim = 8, 1
	cfg := TopSparseConfig{Arity: 2, TopS: 4, Explore: 5, SparseRatio: 0.5, MinScore: 0.01, Seed: 99}
	evA, err := NewTopSparse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tmplA, err := NewFixed(d, maxDim)
	if err != nil {
		t.Fatal(err)
	}
	// C(8,2)=28 > Explore=5, so candidates are sampled — RNG state matters.
	epochs := []*EpochStats{richStats(d, 64), poorStats(d, 64), richStats(d, 64)}
	for _, st := range epochs {
		apply(t, tmplA, evA.Evolve(tmplA, st))
	}
	if len(evA.owned) == 0 {
		t.Fatal("fixture never promoted anything; the round trip would be vacuous")
	}
	if evA.src.draws == 0 {
		t.Fatal("fixture never drew from the RNG; the round trip would be vacuous")
	}

	state, err := evA.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if again, _ := evA.MarshalState(); !bytes.Equal(state, again) {
		t.Fatal("MarshalState is not deterministic")
	}

	evB, err := NewTopSparse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := evB.UnmarshalState(state); err != nil {
		t.Fatalf("UnmarshalState: %v", err)
	}
	if re, _ := evB.MarshalState(); !bytes.Equal(state, re) {
		t.Fatal("restored state re-marshals differently")
	}
	if evB.src.draws != evA.src.draws {
		t.Fatalf("restored draw count %d, want %d", evB.src.draws, evA.src.draws)
	}
	for s := range evA.owned {
		if !evB.Owns(sigDims(s)) {
			t.Fatalf("restored evolver lost ownership of %v", sigDims(s))
		}
	}

	tmplB := cloneTemplate(t, tmplA, d, maxDim)
	sameTemplate(t, tmplA, tmplB)
	for i, st := range []*EpochStats{poorStats(d, 64), richStats(d, 64), richStats(d, 64)} {
		eva, evb := evA.Evolve(tmplA, st), evB.Evolve(tmplB, st)
		if !reflect.DeepEqual(eva, evb) {
			t.Fatalf("epoch %d after restore: %+v vs %+v", i, eva, evb)
		}
		apply(t, tmplA, eva)
		apply(t, tmplB, evb)
	}
	sameTemplate(t, tmplA, tmplB)
}

func TestTopSparseUnmarshalErrors(t *testing.T) {
	cfg := TopSparseConfig{Arity: 2, TopS: 2, Seed: 1}
	fresh := func() *TopSparse {
		e, err := NewTopSparse(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	valid, err := fresh().MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh().UnmarshalState(valid); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"bad version", append([]byte{9}, valid[1:]...), "state version"},
		{"truncated", valid[:len(valid)-2], "truncated"},
		{"trailing", append(append([]byte(nil), valid...), 0), "trailing"},
		{"draw bound", func() []byte {
			var enc stateEnc
			enc.u8(evolverStateVersion)
			enc.u64(maxRestoreDraws + 1)
			enc.u32(0)
			return enc.b
		}(), "restore bound"},
		{"owned not increasing", func() []byte {
			var enc stateEnc
			enc.u8(evolverStateVersion)
			enc.u64(0)
			enc.u32(1)
			enc.dimSet([]uint16{5, 5})
			return enc.b
		}(), "not strictly increasing"},
		{"owned arity", func() []byte {
			var enc stateEnc
			enc.u8(evolverStateVersion)
			enc.u64(0)
			enc.u32(1)
			enc.dimSet([]uint16{0, 1, 2, 3, 4, 5})
			return enc.b
		}(), "arity"},
	}
	for _, tc := range cases {
		err := fresh().UnmarshalState(tc.data)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// --- MOGA -----------------------------------------------------------

func mogaConfig() MOGAConfig {
	return MOGAConfig{MinArity: 2, MaxArity: 2, PopSize: 4, Generations: 1, TopS: 2, Seed: 5}
}

// mogaStats adds labeled examples so the genetic search actually runs.
func mogaRichStats(d, subspaces int) *EpochStats {
	st := richStats(d, subspaces)
	for k := 0; k < 3; k++ {
		coords := make([]uint8, d)
		for i := range coords {
			coords[i] = uint8(6 + k%2)
		}
		st.Examples = append(st.Examples, Example{Coords: coords, Tick: uint64(10 + k)})
	}
	return st
}

func TestMOGAStateRoundTripUninitialized(t *testing.T) {
	evA, err := NewMOGA(mogaConfig())
	if err != nil {
		t.Fatal(err)
	}
	state, err := evA.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	evB, err := NewMOGA(mogaConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := evB.UnmarshalState(state); err != nil {
		t.Fatalf("UnmarshalState: %v", err)
	}
	if re, _ := evB.MarshalState(); !bytes.Equal(state, re) {
		t.Fatal("uninitialized state re-marshals differently")
	}
}

func TestMOGAStateRoundTripInitialized(t *testing.T) {
	const d, maxDim = 6, 1
	evA, err := NewMOGA(mogaConfig())
	if err != nil {
		t.Fatal(err)
	}
	tmplA, err := NewFixed(d, maxDim)
	if err != nil {
		t.Fatal(err)
	}
	st := mogaRichStats(d, 32)
	apply(t, tmplA, evA.Evolve(tmplA, st))
	if evA.d == 0 {
		t.Fatal("fixture never initialized the MOGA lattice")
	}

	state, err := evA.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	evB, err := NewMOGA(mogaConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := evB.UnmarshalState(state); err != nil {
		t.Fatalf("UnmarshalState: %v", err)
	}
	if re, _ := evB.MarshalState(); !bytes.Equal(state, re) {
		t.Fatal("restored state re-marshals differently")
	}

	tmplB := cloneTemplate(t, tmplA, d, maxDim)
	for i := 0; i < 2; i++ {
		eva, evb := evA.Evolve(tmplA, st), evB.Evolve(tmplB, st)
		if !reflect.DeepEqual(eva, evb) {
			t.Fatalf("epoch %d after restore: %+v vs %+v", i, eva, evb)
		}
		apply(t, tmplA, eva)
		apply(t, tmplB, evb)
	}
	sameTemplate(t, tmplA, tmplB)
}

func TestMOGAUnmarshalErrors(t *testing.T) {
	// Hand-built payloads: version 1, draws, d, maxArity, owned, pop.
	build := func(draws uint64, d, maxArity uint32, pop [][]uint16) []byte {
		var enc stateEnc
		enc.u8(evolverStateVersion)
		enc.u64(draws)
		enc.u32(d)
		enc.u32(maxArity)
		enc.u32(0)
		enc.u32(uint32(len(pop)))
		for _, g := range pop {
			enc.dimSet(g)
		}
		return enc.b
	}
	pop4 := [][]uint16{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"bad version", append([]byte{3}, build(0, 0, 0, nil)[1:]...), "state version"},
		{"draw bound", build(maxRestoreDraws+1, 0, 0, nil), "restore bound"},
		{"pop before init", build(0, 0, 0, [][]uint16{{0, 1}}), "before initialization"},
		{"maxArity vs config", build(0, 6, 5, pop4), "inconsistent with config"},
		{"pop size vs config", build(0, 6, 2, pop4[:3]), "config says"},
		{"genome arity", build(0, 6, 2, [][]uint16{{0, 1}, {1, 2}, {2, 3}, {1, 2, 3}}), "arity"},
		{"genome out of range", build(0, 6, 2, [][]uint16{{0, 1}, {1, 2}, {2, 3}, {3, 9}}), "invalid over"},
		{"genome not increasing", build(0, 6, 2, [][]uint16{{0, 1}, {1, 2}, {2, 3}, {4, 4}}), "invalid over"},
		{"truncated", build(0, 6, 2, pop4)[:9], "truncated"},
	}
	for _, tc := range cases {
		m, err := NewMOGA(mogaConfig())
		if err != nil {
			t.Fatal(err)
		}
		err = m.UnmarshalState(tc.data)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// --- Multi ----------------------------------------------------------

// statelessEv is an Evolver with no checkpointable state.
type statelessEv struct{}

func (statelessEv) Evolve(*Template, *EpochStats) Evolution { return Evolution{} }

func TestMultiStateRoundTrip(t *testing.T) {
	cfg := TopSparseConfig{Arity: 2, TopS: 4, Explore: 5, SparseRatio: 0.5, MinScore: 0.01, Seed: 17}
	tsA, err := NewTopSparse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := NewFixed(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	apply(t, tmpl, Multi{tsA, statelessEv{}}.Evolve(tmpl, richStats(8, 64)))

	state, err := Multi{tsA, statelessEv{}}.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	tsB, err := NewTopSparse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := (Multi{tsB, statelessEv{}}).UnmarshalState(state); err != nil {
		t.Fatalf("UnmarshalState: %v", err)
	}
	re, err := Multi{tsB, statelessEv{}}.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(state, re) {
		t.Fatal("restored Multi state re-marshals differently")
	}
	if tsB.src.draws != tsA.src.draws {
		t.Fatalf("sub-evolver draw count %d, want %d", tsB.src.draws, tsA.src.draws)
	}
}

func TestMultiUnmarshalCompositionMismatch(t *testing.T) {
	cfg := TopSparseConfig{Arity: 2, TopS: 2, Seed: 1}
	ts := func() *TopSparse {
		e, err := NewTopSparse(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	state, err := Multi{ts(), statelessEv{}}.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	// Flag order (stateless, stateful) — for the mismatch where a
	// stateful member meets a stateless slot.
	flipped, err := Multi{statelessEv{}, ts()}.MarshalState()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		m    Multi
		data []byte
		want string
	}{
		{"wrong count", Multi{ts()}, state, "this combinator has"},
		{"stateless gets state", Multi{statelessEv{}, statelessEv{}}, state, "is stateless but"},
		{"stateful gets none", Multi{ts(), ts()}, flipped, "is stateful but"},
		{"bad version", Multi{ts(), statelessEv{}}, append([]byte{8}, state[1:]...), "state version"},
		{"bad flag", Multi{ts(), statelessEv{}}, func() []byte {
			var enc stateEnc
			enc.u8(evolverStateVersion)
			enc.u32(2)
			enc.u8(2) // flag must be 0 or 1
			enc.u8(0)
			return enc.b
		}(), "invalid state flag"},
		{"truncated payload", Multi{ts(), statelessEv{}}, state[:len(state)-3], "truncated"},
	}
	for _, tc := range cases {
		err := tc.m.UnmarshalState(tc.data)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// --- Template slots -------------------------------------------------

func TestTemplateEvolvedSlotsRoundTrip(t *testing.T) {
	const d, maxDim = 6, 1
	tmpl, err := NewFixed(d, maxDim)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint32, 0, 3)
	for _, dims := range [][]uint16{{0, 1}, {2, 3}, {1, 4}} {
		id, err := tmpl.Promote(dims)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := tmpl.Demote(ids[1]); err != nil {
		t.Fatal(err)
	}

	slots, free := tmpl.EvolvedSlots(), tmpl.FreeSlots()
	if len(slots) != 3 || len(free) != 1 || free[0] != ids[1] {
		t.Fatalf("slots %v free %v", slots, free)
	}
	if slots[1].Active || len(slots[1].Dims) != 0 {
		t.Fatalf("tombstone not empty: %+v", slots[1])
	}

	restored := cloneTemplate(t, tmpl, d, maxDim)
	sameTemplate(t, tmpl, restored)

	// Slot reuse stays identical: the next promotion lands in the same
	// tombstone on both templates.
	idA, err := tmpl.Promote([]uint16{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	idB, err := restored.Promote([]uint16{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	if idA != idB || idA != ids[1] {
		t.Fatalf("slot reuse diverged: %d vs %d (want %d)", idA, idB, ids[1])
	}
}

func TestTemplateRestoreEvolvedValidation(t *testing.T) {
	const d, maxDim = 6, 1
	fresh := func() *Template {
		tmpl, err := NewFixed(d, maxDim)
		if err != nil {
			t.Fatal(err)
		}
		return tmpl
	}
	active := func(dims ...uint16) EvolvedSlot { return EvolvedSlot{Dims: dims, Active: true} }
	tomb := EvolvedSlot{}
	fixedCount := fresh().FixedCount()

	cases := []struct {
		name  string
		slots []EvolvedSlot
		free  []uint32
		want  string
	}{
		{"tombstone with dims", []EvolvedSlot{{Dims: []uint16{0, 1}}}, []uint32{uint32(fixedCount)}, "carries dimensions"},
		{"zero arity", []EvolvedSlot{{Active: true}}, nil, "arity"},
		{"arity too high", []EvolvedSlot{active(0, 1, 2, 3, 4, 5)}, nil, "arity"},
		{"dim out of range", []EvolvedSlot{active(0, uint16(d))}, nil, "out of range"},
		{"not increasing", []EvolvedSlot{active(3, 3)}, nil, "not strictly increasing"},
		{"duplicate slot", []EvolvedSlot{active(0, 1), active(0, 1)}, nil, "duplicates"},
		{"duplicate of fixed", []EvolvedSlot{active(2)}, nil, "duplicates"},
		{"free count mismatch", []EvolvedSlot{active(0, 1)}, []uint32{uint32(fixedCount)}, "free list"},
		{"free points at live slot", []EvolvedSlot{active(0, 1), tomb}, []uint32{uint32(fixedCount)}, "not a distinct tombstoned"},
		{"free duplicate", []EvolvedSlot{tomb, tomb}, []uint32{uint32(fixedCount), uint32(fixedCount)}, "not a distinct tombstoned"},
	}
	for _, tc := range cases {
		err := fresh().RestoreEvolved(tc.slots, tc.free)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	// Restoring onto a template that already grew an evolved group is
	// rejected outright.
	dirty := fresh()
	if _, err := dirty.Promote([]uint16{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := dirty.RestoreEvolved(nil, nil); err == nil || !strings.Contains(err.Error(), "evolved slots") {
		t.Fatalf("dirty restore: %v", err)
	}
}
