// moga.go implements the supervised self-evolving SST group of the
// paper: a multi-objective genetic (MOGA-style) search over the
// subspace lattice, driven by labeled outlier examples the caller feeds
// back between batches. Where the unsupervised TopSparse group promotes
// whatever subspaces look globally sparsest, the supervised group hunts
// the subspaces in which the *analyst's confirmed outliers* look
// maximally anomalous — the two notions only coincide when the
// interesting outliers happen to dominate the stream's sparse
// structure, which on real workloads they rarely do.
//
// The search works on a population of candidate subspaces encoded as
// dimension bitsets. Each epoch the population is re-scored against the
// sweep's base-cell snapshot with two objectives:
//
//   - sparsity: how far below the projection's average populated-cell
//     density the examples' cells sit (an RD-style measure, 1 for an
//     example in an empty cell, 0 for one at or above the average);
//   - coverage: the fraction of examples landing in sparse cells of the
//     projection (density below SparseRatio × the average).
//
// Candidates are ranked by Pareto dominance (Fonseca–Fleming MOGA
// ranking: rank = number of dominating individuals), bred with uniform
// set crossover and add/remove/swap mutation for a configurable number
// of generations per epoch, and the elite front — rank-0 candidates
// clearing both objective floors — is promoted through the ordinary
// Evolver promote/demote machinery, capped at TopS live members.
package sst

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"slices"
	"sort"

	"spot/internal/core"
)

// MOGAConfig parameterizes the supervised genetic subspace search.
type MOGAConfig struct {
	// MinArity and MaxArity bound the arity of candidate subspaces;
	// both must lie in [2, core.MaxSubspaceDims] (arity-1 subspaces are
	// the fixed group's job). Defaults: 2 and 3.
	MinArity, MaxArity int
	// PopSize is the number of candidate subspaces kept in the
	// population across epochs. 0 defaults to 32.
	PopSize int
	// Generations is how many selection/crossover/mutation rounds run
	// per epoch. The per-epoch evaluation budget is roughly
	// PopSize × (Generations+1) projections of the base-cell snapshot.
	// 0 defaults to 8.
	Generations int
	// TopS caps the supervised group: at most TopS of this evolver's
	// subspaces are live at once.
	TopS int
	// CrossoverP is the probability an offspring is bred from two
	// parents rather than cloned from one. 0 defaults to 0.9.
	CrossoverP float64
	// MutationP is the per-offspring probability of a mutation
	// (add/remove/swap of one dimension). 0 defaults to 0.3.
	MutationP float64
	// Immigrants is how many fresh random genomes join each
	// generation's offspring, keeping exploration alive once the
	// population converges. 0 defaults to 2; -1 disables.
	Immigrants int
	// SparseRatio classifies a projected cell as sparse (for the
	// coverage objective) when its density is below SparseRatio times
	// the projection's average populated-cell density. 0 defaults to
	// 0.1.
	SparseRatio float64
	// MinCoverage and MinSparsity are the promotion floors on the two
	// objectives: only candidates with coverage ≥ MinCoverage and
	// sparsity ≥ MinSparsity may enter the template. Defaults: 0.5 and
	// 0.3.
	MinCoverage, MinSparsity float64
	// DemoteScore is the demotion floor, with the same semantics as
	// TopSparseConfig.MinScore: a member whose swept sparse-cell
	// fraction drops below it (or whose cells were all evicted) is
	// demoted. 0 defaults to 0.02.
	DemoteScore float64
	// Seed fixes the genetic-search RNG so runs are reproducible.
	Seed int64
}

// MOGA is the supervised evolver. Not safe for concurrent use; the
// detector calls it from the epoch path only. Its decisions are a
// deterministic function of its seed and the sweep snapshots it has
// seen, so — like every Evolver — verdicts are independent of the
// detector's shard count.
type MOGA struct {
	cfg      MOGAConfig
	src      *countedSource // rng's source, counted so state can checkpoint
	rng      *rand.Rand
	d        int // data-space dimensionality, fixed at first Evolve
	maxArity int // cfg.MaxArity clamped to d, fixed alongside it
	pop      []genome
	next     []genome // offspring + merged-selection scratch
	owned    map[string]bool
	hist     map[uint64]float64
	ids      []uint32
}

// genome is one candidate subspace: its member dimensions as a bitset
// over the data space, the cached sorted member list, and the fitness
// of the last evaluation.
type genome struct {
	bits     []uint64
	dims     []uint16
	sparsity float64
	coverage float64
	valid    bool // objectives are meaningful (projection had contrast)
	rank     int  // MOGA Pareto rank: number of dominating individuals
	crowd    float64
}

// NewMOGA validates cfg, applies defaults, and returns the evolver.
func NewMOGA(cfg MOGAConfig) (*MOGA, error) {
	if cfg.MinArity == 0 {
		cfg.MinArity = 2
	}
	if cfg.MaxArity == 0 {
		cfg.MaxArity = 3
	}
	if cfg.MinArity < 2 || cfg.MaxArity > core.MaxSubspaceDims || cfg.MinArity > cfg.MaxArity {
		return nil, fmt.Errorf("sst: MOGA arity bounds [%d,%d] must satisfy 2 ≤ min ≤ max ≤ %d",
			cfg.MinArity, cfg.MaxArity, core.MaxSubspaceDims)
	}
	if cfg.PopSize == 0 {
		cfg.PopSize = 32
	}
	if cfg.PopSize < 4 {
		return nil, fmt.Errorf("sst: MOGA PopSize must be ≥ 4, got %d", cfg.PopSize)
	}
	if cfg.Generations == 0 {
		cfg.Generations = 8
	}
	if cfg.Generations < 1 {
		return nil, fmt.Errorf("sst: MOGA Generations must be positive, got %d", cfg.Generations)
	}
	if cfg.TopS < 1 {
		return nil, fmt.Errorf("sst: MOGA TopS must be positive, got %d", cfg.TopS)
	}
	if cfg.CrossoverP == 0 {
		cfg.CrossoverP = 0.9
	}
	if cfg.MutationP == 0 {
		cfg.MutationP = 0.3
	}
	if cfg.CrossoverP < 0 || cfg.CrossoverP > 1 || cfg.MutationP < 0 || cfg.MutationP > 1 {
		return nil, fmt.Errorf("sst: MOGA CrossoverP/MutationP must be probabilities, got %g/%g",
			cfg.CrossoverP, cfg.MutationP)
	}
	switch {
	case cfg.Immigrants == 0:
		cfg.Immigrants = 2
	case cfg.Immigrants < 0:
		cfg.Immigrants = 0
	}
	if cfg.SparseRatio == 0 {
		cfg.SparseRatio = 0.1
	}
	if cfg.SparseRatio < 0 || cfg.SparseRatio >= 1 {
		return nil, fmt.Errorf("sst: MOGA SparseRatio must be in (0,1), got %g", cfg.SparseRatio)
	}
	if cfg.MinCoverage == 0 {
		cfg.MinCoverage = 0.5
	}
	if cfg.MinSparsity == 0 {
		cfg.MinSparsity = 0.3
	}
	if cfg.MinCoverage < 0 || cfg.MinCoverage > 1 || cfg.MinSparsity < 0 || cfg.MinSparsity > 1 {
		return nil, fmt.Errorf("sst: MOGA objective floors must be in [0,1], got coverage %g / sparsity %g",
			cfg.MinCoverage, cfg.MinSparsity)
	}
	if cfg.DemoteScore == 0 {
		cfg.DemoteScore = 0.02
	}
	src := newCountedSource(cfg.Seed)
	return &MOGA{
		cfg:   cfg,
		src:   src,
		rng:   rand.New(src),
		owned: make(map[string]bool),
		hist:  make(map[uint64]float64),
	}, nil
}

// Owns reports whether the evolver considers the given dimension set
// one of its own promotions (proposed by it and not since demoted).
func (m *MOGA) Owns(dims []uint16) bool { return m.owned[sig(dims)] }

// disown implements the Multi duplicate-resolution hook.
func (m *MOGA) disown(dims []uint16) { delete(m.owned, sig(dims)) }

// Evolve implements Evolver: demote stale owned members, then run the
// genetic search against the snapshot's examples and promote the elite
// front into the free slots of the supervised group's budget.
func (m *MOGA) Evolve(t *Template, stats *EpochStats) Evolution {
	var ev Evolution
	m.ids = t.EvolvedIDs(m.ids[:0])
	live := 0
	for _, id := range m.ids {
		sg := sig(t.Dims(int(id)))
		if !m.owned[sg] {
			continue
		}
		s := SubspaceStats{}
		if int(id) < len(stats.Subspaces) {
			s = stats.Subspaces[id]
		}
		if s.Populated == 0 || float64(s.Sparse)/float64(s.Populated) < m.cfg.DemoteScore {
			ev.Demote = append(ev.Demote, id)
			delete(m.owned, sg)
			continue
		}
		live++
	}

	// No labeled guidance or no surviving structure to project: the
	// supervised search has nothing to optimize against this epoch.
	if len(stats.Examples) == 0 || len(stats.BaseCells) == 0 {
		return ev
	}
	d := t.SpaceDims()
	if d < m.cfg.MinArity {
		return ev
	}
	if m.d == 0 {
		m.d = d
		// Clamp the arity band to the data space: in a d-dimensional
		// space no genome can grow beyond d set bits, and every
		// add/remove helper below relies on this bound to terminate.
		m.maxArity = m.cfg.MaxArity
		if m.maxArity > d {
			m.maxArity = d
		}
		m.pop = make([]genome, m.cfg.PopSize)
		for i := range m.pop {
			m.randomize(&m.pop[i])
		}
	}

	for i := range m.pop {
		m.eval(&m.pop[i], stats)
	}
	m.rank(m.pop)
	for g := 0; g < m.cfg.Generations; g++ {
		m.generation(stats)
	}

	room := m.cfg.TopS - live
	if room <= 0 {
		return ev
	}
	// Elite order: Pareto rank, then crowding (spread first), then the
	// lexicographically smaller dimension set so promotion is
	// deterministic.
	order := make([]int, len(m.pop))
	for i := range order {
		order[i] = i
	}
	sortByFitness(m.pop, order)
	for _, i := range order {
		if room == 0 {
			break
		}
		g := &m.pop[i]
		if !g.valid || g.rank != 0 || g.coverage < m.cfg.MinCoverage || g.sparsity < m.cfg.MinSparsity {
			continue
		}
		if _, in := t.Contains(g.dims); in {
			continue
		}
		dup := false
		for _, p := range ev.Promote {
			if slices.Equal(p, g.dims) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		set := append([]uint16(nil), g.dims...)
		ev.Promote = append(ev.Promote, set)
		m.owned[sig(set)] = true
		room--
	}
	return ev
}

// eval scores one genome against the snapshot: project the base cells
// onto its dimensions, then measure how sparse the examples' projected
// cells are (sparsity) and how many of them fall below the sparse-cell
// ratio (coverage). A projection with fewer than two populated cells
// has no contrast and is invalid.
func (m *MOGA) eval(g *genome, stats *EpochStats) {
	g.sparsity, g.coverage, g.valid = 0, 0, false
	clear(m.hist)
	total := 0.0
	for i := range stats.BaseCells {
		bc := &stats.BaseCells[i]
		var key uint64
		for j, dim := range g.dims {
			key |= uint64(bc.Coords[dim]) << (uint(j) * core.CoordBits)
		}
		m.hist[key] += bc.Dc
		total += bc.Dc
	}
	if len(m.hist) < 2 || total <= 0 {
		return
	}
	avg := total / float64(len(m.hist))
	sumSp, covered := 0.0, 0
	for i := range stats.Examples {
		ex := &stats.Examples[i]
		var key uint64
		for j, dim := range g.dims {
			key |= uint64(ex.Coords[dim]) << (uint(j) * core.CoordBits)
		}
		dc := m.hist[key] // 0 when the example's cell is empty
		if sp := 1 - dc/avg; sp > 0 {
			sumSp += sp
		}
		if dc < m.cfg.SparseRatio*avg {
			covered++
		}
	}
	n := float64(len(stats.Examples))
	g.sparsity = sumSp / n
	g.coverage = float64(covered) / n
	g.valid = true
}

// generation breeds one offspring cohort (tournament selection, uniform
// set crossover, mutation, random immigrants), evaluates it, and keeps
// the best PopSize of parents ∪ offspring — an elitist (μ+λ) step.
func (m *MOGA) generation(stats *EpochStats) {
	m.next = m.next[:0]
	for len(m.next) < m.cfg.PopSize {
		m.next = append(m.next, genome{})
		child := &m.next[len(m.next)-1]
		a := m.tournament()
		if m.rng.Float64() < m.cfg.CrossoverP {
			b := m.tournament()
			m.crossover(a, b, child)
		} else {
			m.clone(a, child)
		}
		if m.rng.Float64() < m.cfg.MutationP {
			m.mutate(child)
		}
	}
	for i := 0; i < m.cfg.Immigrants; i++ {
		m.next = append(m.next, genome{})
		m.randomize(&m.next[len(m.next)-1])
	}
	for i := range m.next {
		m.eval(&m.next[i], stats)
	}

	merged := append(m.next, m.pop...)
	m.rank(merged)
	order := make([]int, len(merged))
	for i := range order {
		order[i] = i
	}
	sortByFitness(merged, order)
	survivors := make([]genome, m.cfg.PopSize)
	for i := range survivors {
		survivors[i] = merged[order[i]]
	}
	m.next = m.pop[:0] // recycle the old population as next scratch
	m.pop = survivors
	m.rank(m.pop)
}

// tournament returns the fitter of two uniformly drawn population
// members.
func (m *MOGA) tournament() *genome {
	a := &m.pop[m.rng.Intn(len(m.pop))]
	b := &m.pop[m.rng.Intn(len(m.pop))]
	if fitter(b, a) {
		return b
	}
	return a
}

// crossover builds the child as the parents' common dimensions plus a
// fair coin per exclusive dimension, repaired to the arity of one
// parent — uniform crossover over dimension bitsets.
func (m *MOGA) crossover(a, b, child *genome) {
	m.ensureBits(child)
	for w := range child.bits {
		common := a.bits[w] & b.bits[w]
		either := a.bits[w] ^ b.bits[w]
		pick := uint64(0)
		for e := either; e != 0; e &= e - 1 {
			if m.rng.Intn(2) == 0 {
				pick |= e & -e
			}
		}
		child.bits[w] = common | pick
	}
	target := len(a.dims)
	if m.rng.Intn(2) == 0 {
		target = len(b.dims)
	}
	m.repair(child, target)
}

// clone copies a parent into the child.
func (m *MOGA) clone(a, child *genome) {
	m.ensureBits(child)
	copy(child.bits, a.bits)
	child.dims = append(child.dims[:0], a.dims...)
}

// mutate applies one random edit: swap a member for a non-member, grow
// by one dimension, or shrink by one, staying inside the arity bounds.
func (m *MOGA) mutate(g *genome) {
	k := len(g.dims)
	switch op := m.rng.Intn(3); {
	case op == 1 && k < m.maxArity:
		m.addRandom(g)
	case op == 2 && k > m.cfg.MinArity:
		m.removeRandom(g)
	case k == m.d: // full space: a swap cannot change anything
	default: // swap
		m.removeRandom(g)
		m.addRandom(g)
	}
	g.dims = bitsToDims(g.bits, g.dims[:0])
}

// repair adds or removes uniformly random dimensions until the genome
// has exactly the target arity (clamped to the configured bounds), then
// refreshes the cached member list.
func (m *MOGA) repair(g *genome, target int) {
	if target < m.cfg.MinArity {
		target = m.cfg.MinArity
	}
	if target > m.maxArity {
		target = m.maxArity
	}
	for popcount(g.bits) > target {
		m.removeRandom(g)
	}
	for popcount(g.bits) < target {
		m.addRandom(g)
	}
	g.dims = bitsToDims(g.bits, g.dims[:0])
}

// randomize re-seeds the genome with a uniformly random dimension set of
// random arity within the bounds.
func (m *MOGA) randomize(g *genome) {
	m.ensureBits(g)
	for w := range g.bits {
		g.bits[w] = 0
	}
	arity := m.cfg.MinArity
	if m.maxArity > arity {
		arity += m.rng.Intn(m.maxArity - arity + 1)
	}
	for popcount(g.bits) < arity {
		m.addRandom(g)
	}
	g.dims = bitsToDims(g.bits, g.dims[:0])
}

// ensureBits sizes the genome's bitset for the data space.
func (m *MOGA) ensureBits(g *genome) {
	words := (m.d + 63) / 64
	if len(g.bits) != words {
		g.bits = make([]uint64, words)
	}
}

// addRandom sets one uniformly random currently-clear bit.
func (m *MOGA) addRandom(g *genome) {
	for {
		dim := m.rng.Intn(m.d)
		if !bitHas(g.bits, dim) {
			g.bits[dim>>6] |= 1 << (uint(dim) & 63)
			return
		}
	}
}

// removeRandom clears one uniformly random currently-set bit.
func (m *MOGA) removeRandom(g *genome) {
	n := popcount(g.bits)
	if n == 0 {
		return
	}
	nth := m.rng.Intn(n)
	for w, word := range g.bits {
		c := bits.OnesCount64(word)
		if nth >= c {
			nth -= c
			continue
		}
		for ; nth > 0; nth-- {
			word &= word - 1
		}
		g.bits[w] &^= word & -word
		return
	}
}

// rank assigns every genome its MOGA Pareto rank — the number of
// population members that dominate it (0 = non-dominated) — and the
// NSGA-style crowding distance within each rank for diversity-aware
// tie-breaking.
func (m *MOGA) rank(pop []genome) {
	for i := range pop {
		pop[i].rank = 0
		pop[i].crowd = 0
		for j := range pop {
			if i != j && dominates(&pop[j], &pop[i]) {
				pop[i].rank++
			}
		}
	}
	// Crowding per rank group, accumulated over both objectives.
	idx := make([]int, 0, len(pop))
	byRank := map[int][]int{}
	for i := range pop {
		byRank[pop[i].rank] = append(byRank[pop[i].rank], i)
	}
	for _, group := range byRank {
		for _, obj := range []func(*genome) float64{
			func(g *genome) float64 { return g.sparsity },
			func(g *genome) float64 { return g.coverage },
		} {
			idx = append(idx[:0], group...)
			sort.Slice(idx, func(a, b int) bool {
				if va, vb := obj(&pop[idx[a]]), obj(&pop[idx[b]]); va != vb {
					return va < vb
				}
				return slices.Compare(pop[idx[a]].dims, pop[idx[b]].dims) < 0
			})
			pop[idx[0]].crowd = math.Inf(1)
			pop[idx[len(idx)-1]].crowd = math.Inf(1)
			for k := 1; k < len(idx)-1; k++ {
				pop[idx[k]].crowd += obj(&pop[idx[k+1]]) - obj(&pop[idx[k-1]])
			}
		}
	}
}

// dominates reports Pareto dominance of a over b on (sparsity,
// coverage), both maximized. A valid genome always dominates an invalid
// one.
func dominates(a, b *genome) bool {
	if a.valid != b.valid {
		return a.valid
	}
	if !a.valid {
		return false
	}
	if a.sparsity < b.sparsity || a.coverage < b.coverage {
		return false
	}
	return a.sparsity > b.sparsity || a.coverage > b.coverage
}

// fitter is the tournament/selection order: lower Pareto rank first,
// higher crowding distance within a rank, lexicographic dimension set
// as the deterministic last word.
func fitter(a, b *genome) bool {
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	if a.crowd != b.crowd {
		return a.crowd > b.crowd
	}
	return slices.Compare(a.dims, b.dims) < 0
}

// sortByFitness orders the index slice by fitter over pop.
func sortByFitness(pop []genome, order []int) {
	sort.Slice(order, func(i, j int) bool {
		return fitter(&pop[order[i]], &pop[order[j]])
	})
}

// bitHas reports whether bit i is set.
func bitHas(b []uint64, i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// popcount counts the set bits of the bitset.
func popcount(b []uint64) int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// bitsToDims appends the set bits of the bitset to dims in ascending
// order and returns it.
func bitsToDims(b []uint64, dims []uint16) []uint16 {
	for w, word := range b {
		for ; word != 0; word &= word - 1 {
			dims = append(dims, uint16(w<<6+bits.TrailingZeros64(word)))
		}
	}
	return dims
}
