package sst

import (
	"testing"

	"spot/internal/core"
)

func TestFixedEnumerationCounts(t *testing.T) {
	cases := []struct {
		d, maxDim, want int
	}{
		{6, 3, 6 + 15 + 20},
		{4, 2, 4 + 6},
		{10, 1, 10},
		{3, 3, 3 + 3 + 1},
		{2, 3, 2 + 1}, // maxDim capped at d
		{50, 2, 50 + 1225},
	}
	for _, c := range cases {
		tmpl, err := NewFixed(c.d, c.maxDim)
		if err != nil {
			t.Fatalf("NewFixed(%d,%d): %v", c.d, c.maxDim, err)
		}
		if tmpl.Count() != c.want {
			t.Errorf("NewFixed(%d,%d).Count() = %d, want %d", c.d, c.maxDim, tmpl.Count(), c.want)
		}
	}
}

func TestFixedEnumerationShape(t *testing.T) {
	tmpl, err := NewFixed(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[3]uint16]bool{}
	prevSize := 0
	for i := 0; i < tmpl.Count(); i++ {
		size := tmpl.Size(i)
		dims := tmpl.Dims(i)
		if len(dims) != size {
			t.Fatalf("subspace %d: len(Dims)=%d, Size=%d", i, len(dims), size)
		}
		if size < prevSize {
			t.Fatalf("subspace %d: arity %d after %d — not ordered by arity", i, size, prevSize)
		}
		prevSize = size
		var key [3]uint16
		for j, dm := range dims {
			if int(dm) >= tmpl.SpaceDims() {
				t.Fatalf("subspace %d: dimension %d out of range", i, dm)
			}
			if j > 0 && dims[j] <= dims[j-1] {
				t.Fatalf("subspace %d: dims %v not strictly increasing", i, dims)
			}
			key[j] = dm + 1 // +1 so absent slots (0) never collide
		}
		if seen[key] {
			t.Fatalf("subspace %d: duplicate dimension set %v", i, dims)
		}
		seen[key] = true
	}
	if tmpl.MaxDim() != 3 {
		t.Errorf("MaxDim = %d, want 3", tmpl.MaxDim())
	}
}

func TestFixedValidation(t *testing.T) {
	if _, err := NewFixed(0, 2); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := NewFixed(5, 0); err == nil {
		t.Error("maxDim=0 accepted")
	}
	if _, err := NewFixed(5, core.MaxSubspaceDims+1); err == nil {
		t.Error("maxDim beyond key capacity accepted")
	}
	if _, err := NewFixed(70000, 1); err == nil {
		t.Error("d beyond uint16 index range accepted")
	}
}
