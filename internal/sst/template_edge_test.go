package sst

import (
	"slices"
	"testing"
)

// TestTemplateLifecycleTable drives the template's promote/demote slot
// machinery through scripted operation sequences, pinning the edge
// cases the evolvers rely on: tombstoned slots are reused (LIFO) before
// fresh IDs are minted, a demoted subspace can be re-promoted into a
// reused slot with its index entries consistent, and proposals that
// duplicate a fixed-group member or a live evolved member fail without
// corrupting counts.
func TestTemplateLifecycleTable(t *testing.T) {
	type op struct {
		promote []uint16 // non-nil: Promote(promote)
		demote  []uint16 // non-nil: Demote(id of this live set)
		wantID  uint32   // expected ID for a successful promote
		wantErr bool
	}
	cases := []struct {
		name        string
		d, maxDim   int
		ops         []op
		wantCount   int // total slots incl. tombstones
		wantEvolved int // live evolved subspaces
	}{
		{
			name: "tombstone_reuse_is_lifo",
			d:    6, maxDim: 1,
			ops: []op{
				{promote: []uint16{0, 1}, wantID: 6},
				{promote: []uint16{1, 2}, wantID: 7},
				{promote: []uint16{2, 3}, wantID: 8},
				{demote: []uint16{0, 1}},           // frees slot 6
				{demote: []uint16{1, 2}},           // frees slot 7
				{promote: []uint16{3, 4}, wantID: 7}, // most recently freed first
				{promote: []uint16{4, 5}, wantID: 6},
				{promote: []uint16{0, 5}, wantID: 9}, // tombstones exhausted → append
			},
			wantCount:   10,
			wantEvolved: 4,
		},
		{
			name: "demote_then_repromote_same_subspace",
			d:    5, maxDim: 1,
			ops: []op{
				{promote: []uint16{1, 3}, wantID: 5},
				{demote: []uint16{1, 3}},
				{promote: []uint16{1, 3}, wantID: 5}, // same set, reused slot
				{demote: []uint16{1, 3}},
				{promote: []uint16{1, 3}, wantID: 5}, // and again
			},
			wantCount:   6,
			wantEvolved: 1,
		},
		{
			name: "fixed_duplicate_rejected_not_double_counted",
			d:    4, maxDim: 2,
			ops: []op{
				{promote: []uint16{2}, wantErr: true},    // duplicates fixed arity-1
				{promote: []uint16{0, 3}, wantErr: true}, // duplicates fixed arity-2
				{promote: []uint16{0, 1, 2}, wantID: 10}, // 4 + C(4,2) = 10 fixed slots
				{promote: []uint16{0, 1, 2}, wantErr: true}, // duplicates live evolved
				{demote: []uint16{0, 1, 2}},
				{promote: []uint16{0, 1, 2}, wantID: 10}, // re-promotable after demote
			},
			wantCount:   11,
			wantEvolved: 1,
		},
		{
			name: "malformed_proposals_rejected",
			d:    5, maxDim: 1,
			ops: []op{
				{promote: []uint16{3, 1}, wantErr: true},          // not strictly increasing
				{promote: []uint16{2, 2}, wantErr: true},          // repeated dimension
				{promote: []uint16{1, 7}, wantErr: true},          // dimension out of range
				{promote: []uint16{0, 1, 2, 3, 4}, wantID: 5},     // max-arity set is fine
				{promote: []uint16{}, wantErr: true},              // empty set
			},
			wantCount:   6,
			wantEvolved: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tmpl, err := NewFixed(tc.d, tc.maxDim)
			if err != nil {
				t.Fatal(err)
			}
			for i, o := range tc.ops {
				switch {
				case o.promote != nil:
					id, err := tmpl.Promote(o.promote)
					if o.wantErr {
						if err == nil {
							t.Fatalf("op %d: Promote(%v) succeeded, want error", i, o.promote)
						}
						continue
					}
					if err != nil {
						t.Fatalf("op %d: Promote(%v): %v", i, o.promote, err)
					}
					if id != o.wantID {
						t.Fatalf("op %d: Promote(%v) = ID %d, want %d", i, o.promote, id, o.wantID)
					}
					if got := tmpl.Dims(int(id)); !slices.Equal(got, o.promote) {
						t.Fatalf("op %d: Dims(%d) = %v, want %v", i, id, got, o.promote)
					}
					if got, ok := tmpl.Contains(o.promote); !ok || got != id {
						t.Fatalf("op %d: Contains(%v) = %d,%v, want %d,true", i, o.promote, got, ok, id)
					}
				case o.demote != nil:
					id, ok := tmpl.Contains(o.demote)
					if !ok {
						t.Fatalf("op %d: %v not in template, cannot demote", i, o.demote)
					}
					if err := tmpl.Demote(id); (err != nil) != o.wantErr {
						t.Fatalf("op %d: Demote(%d) error = %v, wantErr %v", i, id, err, o.wantErr)
					}
					if _, still := tmpl.Contains(o.demote); still {
						t.Fatalf("op %d: %v still in index after demotion", i, o.demote)
					}
				}
			}
			if tmpl.Count() != tc.wantCount {
				t.Errorf("Count = %d, want %d", tmpl.Count(), tc.wantCount)
			}
			if tmpl.EvolvedCount() != tc.wantEvolved {
				t.Errorf("EvolvedCount = %d, want %d", tmpl.EvolvedCount(), tc.wantEvolved)
			}
			// The index and the active flags must agree after any script.
			for i := 0; i < tmpl.Count(); i++ {
				id, ok := tmpl.Contains(tmpl.Dims(i))
				if tmpl.Active(i) && (!ok || id != uint32(i)) {
					t.Errorf("live subspace %d not resolvable through Contains", i)
				}
			}
		})
	}
}
