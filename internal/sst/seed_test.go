package sst

import "testing"

// seedSnapshot builds a synthetic d-dimensional sweep snapshot whose
// mass sits in intervals 3/4 of every dimension, plus two near-empty
// cells deviating hard in exactly the truth pair of dimensions — the
// base-cell shape a planted correlated anomaly leaves behind.
func seedSnapshot(d, truthA, truthB int) *EpochStats {
	var cells []BaseCell
	total := 0.0
	for i := 0; i < 20; i++ {
		coords := make([]uint8, d)
		for dim := 0; dim < d; dim++ {
			coords[dim] = uint8(3 + (i+dim)%2)
		}
		cells = append(cells, BaseCell{Coords: coords, Dc: 10})
		total += 10
	}
	for i := 0; i < 2; i++ {
		coords := make([]uint8, d)
		for dim := 0; dim < d; dim++ {
			coords[dim] = 3
		}
		coords[truthA] = 7
		coords[truthB] = uint8(7 - i) // distinct cells, both far out in the truth dims
		cells = append(cells, BaseCell{Coords: coords, Dc: 0.05})
		total += 0.05
	}
	return &EpochStats{BaseCells: cells, BaseTotal: total}
}

// TestSeedFromBaseConvergence pins the unsupervised guided-search win
// at high dimensionality: with d=64 and an Explore budget of 4 blind
// draws per epoch, C(64,2)=2016 candidate pairs make finding the
// planted truth pair a lottery — the blind evolver does not promote it
// within 12 epochs. SeedFromBase reads the same snapshot's sparsest
// base cells, whose deviating dimensions ARE the truth pair, and
// promotes it in epoch 1.
func TestSeedFromBaseConvergence(t *testing.T) {
	const d, truthA, truthB = 64, 11, 37

	run := func(seedFromBase, epochs int) int {
		tmpl, err := NewFixed(d, 1)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := NewTopSparse(TopSparseConfig{
			Arity: 2, TopS: 64, Explore: 4, SparseRatio: 0.1, MinScore: 0.05,
			SeedFromBase: seedFromBase, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		for ep := 1; ep <= epochs; ep++ {
			stats := seedSnapshot(d, truthA, truthB)
			// Every live subspace keeps showing sparse structure, so
			// nothing is demoted and the search only moves forward.
			stats.Subspaces = make([]SubspaceStats, tmpl.Count())
			for i := range stats.Subspaces {
				stats.Subspaces[i] = SubspaceStats{Populated: 1, TotalDc: 10, Sparse: 1}
			}
			out := ev.Evolve(tmpl, stats)
			if len(out.Demote) != 0 {
				t.Fatalf("epoch %d demoted %v on a stable snapshot", ep, out.Demote)
			}
			for _, dims := range out.Promote {
				if _, err := tmpl.Promote(dims); err != nil {
					t.Fatalf("epoch %d: promoting %v: %v", ep, dims, err)
				}
			}
			for _, dims := range out.Promote {
				if len(dims) == 2 && dims[0] == truthA && dims[1] == truthB {
					return ep
				}
			}
		}
		return -1
	}

	if ep := run(4, 1); ep != 1 {
		t.Fatalf("SeedFromBase evolver promoted the truth pair at epoch %d, want 1", ep)
	}
	if ep := run(0, 12); ep != -1 {
		t.Fatalf("blind evolver found the truth pair at epoch %d — seed no longer demonstrates the gap; pick another Seed", ep)
	}
}
