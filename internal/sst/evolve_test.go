package sst

import (
	"testing"
)

// TestPromoteDemoteLifecycle exercises the evolved group's slot
// machinery: promotion appends, demotion tombstones, re-promotion
// reuses the freed slot, and the fixed group is untouchable.
func TestPromoteDemoteLifecycle(t *testing.T) {
	tmpl, err := NewFixed(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	fixed := tmpl.FixedCount()
	if fixed != 6 {
		t.Fatalf("FixedCount = %d, want 6", fixed)
	}

	id, err := tmpl.Promote([]uint16{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if int(id) != fixed {
		t.Fatalf("first evolved ID = %d, want %d", id, fixed)
	}
	if got := tmpl.Dims(int(id)); len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("Dims(%d) = %v, want [1 4]", id, got)
	}
	if tmpl.MaxDim() != 2 {
		t.Fatalf("MaxDim = %d after arity-2 promotion, want 2", tmpl.MaxDim())
	}
	if _, err := tmpl.Promote([]uint16{1, 4}); err == nil {
		t.Fatal("duplicate promotion accepted")
	}
	if _, err := tmpl.Promote([]uint16{3}); err == nil {
		t.Fatal("promotion duplicating a fixed subspace accepted")
	}
	if _, err := tmpl.Promote([]uint16{4, 1}); err == nil {
		t.Fatal("unsorted dimension set accepted")
	}
	if _, err := tmpl.Promote([]uint16{2, 9}); err == nil {
		t.Fatal("out-of-range dimension accepted")
	}

	if err := tmpl.Demote(0); err == nil {
		t.Fatal("fixed-group demotion accepted")
	}
	if err := tmpl.Demote(id); err != nil {
		t.Fatal(err)
	}
	if tmpl.Active(int(id)) {
		t.Fatal("demoted subspace still active")
	}
	if err := tmpl.Demote(id); err == nil {
		t.Fatal("double demotion accepted")
	}
	if tmpl.EvolvedCount() != 0 {
		t.Fatalf("EvolvedCount = %d after demotion, want 0", tmpl.EvolvedCount())
	}

	id2, err := tmpl.Promote([]uint16{0, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Fatalf("re-promotion got ID %d, want reused slot %d", id2, id)
	}
	if got := tmpl.Dims(int(id2)); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 5 {
		t.Fatalf("reused slot Dims = %v, want [0 2 5]", got)
	}
	if got, ok := tmpl.Contains([]uint16{0, 2, 5}); !ok || got != id2 {
		t.Fatalf("Contains([0 2 5]) = %d,%v, want %d,true", got, ok, id2)
	}
	if _, ok := tmpl.Contains([]uint16{1, 4}); ok {
		t.Fatal("demoted subspace still reported by Contains")
	}
	if tmpl.Count() != fixed+1 {
		t.Fatalf("Count = %d, want %d (slot reused, not appended)", tmpl.Count(), fixed+1)
	}
}

// TestTopSparsePromotesSparsePair plants a base-cell snapshot with two
// dense clusters plus a sparse cross-combination that only shows up in
// the {1,3} projection, and checks the evolver promotes exactly the
// pairs exhibiting that sparse structure.
func TestTopSparsePromotesSparsePair(t *testing.T) {
	tmpl, err := NewFixed(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewTopSparse(TopSparseConfig{Arity: 2, TopS: 1, Explore: 64, SparseRatio: 0.1, MinScore: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Cluster A at interval 1 everywhere, cluster B at interval 6
	// everywhere, and a handful of outliers that take cluster A's
	// coordinates except dimension 3, borrowed from cluster B. Every
	// pair containing dim 3 projects those to a sparse (1,6)-style
	// combo; pairs without dim 3 see only the two dense cells.
	stats := &EpochStats{
		Tick:      100,
		BaseTotal: 101,
		BaseCells: []BaseCell{
			{Coords: []uint8{1, 1, 1, 1}, Dc: 50},
			{Coords: []uint8{6, 6, 6, 6}, Dc: 50},
			{Coords: []uint8{1, 1, 1, 6}, Dc: 1},
		},
		Subspaces: make([]SubspaceStats, tmpl.Count()),
	}
	out := ev.Evolve(tmpl, stats)
	if len(out.Demote) != 0 {
		t.Fatalf("nothing to demote, got %v", out.Demote)
	}
	if len(out.Promote) != 1 {
		t.Fatalf("promotions = %v, want exactly 1", out.Promote)
	}
	p := out.Promote[0]
	if len(p) != 2 || p[1] != 3 {
		t.Fatalf("promoted %v, want a pair containing dimension 3", p)
	}

	// Apply it and verify the follow-up epoch demotes once the swept
	// statistics show the subspace went stale.
	id, err := tmpl.Promote(p)
	if err != nil {
		t.Fatal(err)
	}
	stats2 := &EpochStats{
		Tick:      200,
		BaseTotal: 100,
		BaseCells: []BaseCell{
			{Coords: []uint8{1, 1, 1, 1}, Dc: 50},
			{Coords: []uint8{6, 6, 6, 6}, Dc: 50},
		},
		Subspaces: make([]SubspaceStats, tmpl.Count()),
	}
	// The promoted subspace's sparse combo cells were evicted; only the
	// two dense cells remain.
	stats2.Subspaces[id] = SubspaceStats{Populated: 2, TotalDc: 100, Sparse: 0}
	out2 := ev.Evolve(tmpl, stats2)
	if len(out2.Demote) != 1 || out2.Demote[0] != id {
		t.Fatalf("demotions = %v, want [%d]", out2.Demote, id)
	}
	if len(out2.Promote) != 0 {
		t.Fatalf("clean snapshot promoted %v, want nothing", out2.Promote)
	}
}

// TestTopSparseRespectsCapacity: with the evolver's OWN group full and
// healthy it proposes nothing even when candidates qualify, while
// foreign evolved subspaces — promoted by another evolver group or
// directly by the caller — neither consume its TopS budget nor get
// demoted by it, no matter how stale their swept statistics look.
func TestTopSparseRespectsCapacity(t *testing.T) {
	tmpl, err := NewFixed(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewTopSparse(TopSparseConfig{Arity: 2, TopS: 1, Explore: 64, SparseRatio: 0.1, MinScore: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	baseCells := []BaseCell{
		{Coords: []uint8{1, 1, 1, 1}, Dc: 50},
		{Coords: []uint8{6, 6, 6, 6}, Dc: 50},
		{Coords: []uint8{1, 1, 1, 6}, Dc: 1},
	}
	stats := &EpochStats{
		Tick:      100,
		BaseTotal: 101,
		BaseCells: baseCells,
		Subspaces: make([]SubspaceStats, tmpl.Count()),
	}
	out := ev.Evolve(tmpl, stats)
	if len(out.Promote) != 1 {
		t.Fatalf("promotions = %v, want exactly 1 to fill TopS", out.Promote)
	}
	own, err := tmpl.Promote(out.Promote[0])
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := tmpl.Promote([]uint16{0, 1}) // e.g. another group's member
	if err != nil {
		t.Fatal(err)
	}

	stats2 := &EpochStats{
		Tick:      200,
		BaseTotal: 101,
		BaseCells: baseCells,
		Subspaces: make([]SubspaceStats, tmpl.Count()),
	}
	stats2.Subspaces[own] = SubspaceStats{Populated: 3, TotalDc: 101, Sparse: 1}     // healthy own member
	stats2.Subspaces[foreign] = SubspaceStats{Populated: 2, TotalDc: 100, Sparse: 0} // stale, but foreign
	out2 := ev.Evolve(tmpl, stats2)
	if len(out2.Promote) != 0 || len(out2.Demote) != 0 {
		t.Fatalf("full healthy own group mutated the template: %+v", out2)
	}
	if !ev.Owns(out.Promote[0]) {
		t.Error("evolver does not own its own promotion")
	}
	if ev.Owns([]uint16{0, 1}) {
		t.Error("evolver claims ownership of a foreign subspace")
	}
}
