package sst

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"

	"spot/internal/core"
)

// BaseCell is one populated cell of the full data space as seen by the
// epoch sweep: its per-dimension interval indices and its decayed
// density at the sweep tick. The slice of BaseCells is the compact,
// stream-independent snapshot an Evolver mines for candidate subspaces
// — projecting base cells onto a dimension set reconstructs that
// subspace's cell histogram without ever revisiting points.
type BaseCell struct {
	Coords []uint8
	Dc     float64
}

// Example is one caller-confirmed outlier exemplar as retained by the
// detector: the per-dimension interval indices of the full data space
// the point fell into, and the stream tick it was marked at. Supervised
// evolvers (MOGA) mine examples for the subspaces in which they look
// maximally anomalous.
type Example struct {
	Coords []uint8
	Tick   uint64
}

// SubspaceStats is what the epoch sweep records for one live SST
// subspace: how many of its cells are populated, their total decayed
// density, and how many are sparse (density below the detector's
// sparse-cell ratio times the subspace's average populated density).
// Evolvers use it to decide whether an evolved subspace still earns its
// slot; Sparse is therefore only computed for evolved subspaces and
// stays zero for the fixed group.
type SubspaceStats struct {
	Populated int
	TotalDc   float64
	Sparse    int
}

// EpochStats is the summary snapshot the detector hands the Evolver at
// each epoch boundary. All densities are as of Tick; the snapshot is
// identical regardless of shard count, so evolution decisions are too.
type EpochStats struct {
	// Tick is the stream tick the sweep ran at.
	Tick uint64
	// BaseTotal is the total decayed density across surviving base
	// cells.
	BaseTotal float64
	// BaseCells are the surviving cells of the full-space table.
	BaseCells []BaseCell
	// Subspaces is indexed by subspace ID; entries for inactive slots
	// are zero. Only populated cells that survived eviction count.
	Subspaces []SubspaceStats
	// Examples are the labeled outlier exemplars retained by the
	// detector at sweep time (newest last). Empty unless the caller
	// marked confirmed outliers via the detector's feedback API;
	// unsupervised evolvers ignore it.
	Examples []Example
}

// Evolution is an Evolver's verdict for one epoch: dimension sets to
// promote into the evolved group and live evolved IDs to demote. The
// detector applies demotions first, so a promotion may reuse a slot
// demoted in the same epoch.
type Evolution struct {
	Promote [][]uint16
	Demote  []uint32
}

// Evolver is the self-evolving-group strategy: called by the detector
// at every epoch boundary (hot path idle) with the sweep's summary
// snapshot, it proposes template mutations. Implementations must be
// deterministic functions of their own state and the snapshot so that
// verdicts stay independent of the shard count. An evolver manages only
// the subspaces it promoted itself (tracked by dimension-set signature),
// so several evolver groups — e.g. the unsupervised TopSparse and the
// supervised MOGA — can share one template via Multi without demoting
// each other's members.
type Evolver interface {
	Evolve(t *Template, stats *EpochStats) Evolution
}

// Multi composes several evolver groups into one Evolver: each epoch it
// consults the sub-evolvers in order and concatenates their verdicts.
// Because every evolver only demotes and budgets the subspaces it
// promoted itself, the groups coexist in the template — the paper's SST
// holds the unsupervised top-sparse group and the supervised
// example-driven group side by side. If two groups propose the same
// dimension set in one epoch, the earlier evolver wins: the duplicate
// is dropped from the merged verdict and the later evolver's ownership
// claim is revoked, so exactly one group ever manages a subspace.
type Multi []Evolver

// disowner is implemented by evolvers that track ownership of their
// promotions; Multi uses it to revoke the claim of a proposal it drops
// as a same-epoch duplicate of an earlier group's.
type disowner interface {
	disown(dims []uint16)
}

// Evolve implements Evolver by merging the sub-evolvers' verdicts.
func (m Multi) Evolve(t *Template, stats *EpochStats) Evolution {
	var ev Evolution
	seen := map[string]bool{}
	for _, e := range m {
		sub := e.Evolve(t, stats)
		ev.Demote = append(ev.Demote, sub.Demote...)
		for _, p := range sub.Promote {
			if s := sig(p); seen[s] {
				if d, ok := e.(disowner); ok {
					d.disown(p)
				}
				continue
			} else {
				seen[s] = true
			}
			ev.Promote = append(ev.Promote, p)
		}
	}
	return ev
}

// TopSparseConfig parameterizes the unsupervised top-sparse evolver.
type TopSparseConfig struct {
	// Arity is the dimensionality of candidate subspaces (typically
	// above the fixed group's maxDim, so evolution extends coverage
	// rather than duplicating it). Must be in [2, core.MaxSubspaceDims].
	Arity int
	// TopS caps the evolved group: at most TopS subspaces are live at
	// once (the paper's top-s sparsest subspaces).
	TopS int
	// Explore bounds how many candidate subspaces are scored per epoch.
	// When the full C(d, Arity) enumeration fits the bound it is scored
	// exhaustively (deterministic); otherwise Explore candidates are
	// sampled uniformly per epoch, so coverage accumulates across
	// epochs. 0 defaults to 256.
	Explore int
	// SparseRatio classifies a projected cell as sparse when its
	// density is below SparseRatio times the candidate's average
	// populated-cell density. 0 defaults to 0.1.
	SparseRatio float64
	// MinScore is the promotion floor and demotion ceiling: a candidate
	// needs a sparse-cell fraction ≥ MinScore to enter the evolved
	// group, and a member whose swept sparse fraction drops below it is
	// demoted. 0 defaults to 0.02.
	MinScore float64
	// SeedFromBase, when positive, derives up to this many candidate
	// subspaces per epoch from the sparsest base cells of the sweep
	// snapshot before blind sampling spends the Explore budget: for
	// each of the SeedFromBase lowest-density cells, the Arity
	// dimensions in which the cell deviates farthest from the
	// density-weighted mean interval become one candidate. A sparse
	// base cell is sparse *because* of the dimensions in which it sits
	// away from the data mass, so the candidates point at exactly the
	// projections where the paper's sparse-subspace structure lives —
	// at d where C(d, Arity) dwarfs Explore, the guided candidates
	// find planted structure epochs before uniform sampling draws it.
	// 0 disables (blind sampling only). Deterministic: no RNG involved.
	SeedFromBase int
	// Seed fixes the candidate-sampling RNG so runs are reproducible.
	Seed int64
}

// TopSparse is the unsupervised self-evolving group of the paper: each
// epoch it scores candidate subspaces by how much sparse structure
// their projection of the base-cell snapshot exhibits — the fraction of
// populated projected cells whose density falls below SparseRatio times
// the projection's average — promotes the top-scoring candidates into
// the template, and demotes members whose swept statistics show no
// remaining sparse cells (the stream drifted away; their summaries have
// been evicted).
//
// Not safe for concurrent use; the detector calls it from the epoch
// path only.
type TopSparse struct {
	cfg   TopSparseConfig
	src   *countedSource // rng's source, counted so state can checkpoint
	rng   *rand.Rand
	comb  []uint16
	hist  map[uint64]float64
	ids   []uint32
	owned map[string]bool // signatures of this evolver's own promotions
}

// NewTopSparse validates cfg, applies defaults, and returns the
// evolver.
func NewTopSparse(cfg TopSparseConfig) (*TopSparse, error) {
	if cfg.Arity < 2 || cfg.Arity > core.MaxSubspaceDims {
		return nil, fmt.Errorf("sst: evolver arity must be in [2,%d], got %d", core.MaxSubspaceDims, cfg.Arity)
	}
	if cfg.TopS < 1 {
		return nil, fmt.Errorf("sst: TopS must be positive, got %d", cfg.TopS)
	}
	if cfg.Explore == 0 {
		cfg.Explore = 256
	}
	if cfg.Explore < 0 {
		return nil, fmt.Errorf("sst: Explore must be non-negative, got %d", cfg.Explore)
	}
	if cfg.SparseRatio == 0 {
		cfg.SparseRatio = 0.1
	}
	if cfg.SparseRatio < 0 || cfg.SparseRatio >= 1 {
		return nil, fmt.Errorf("sst: SparseRatio must be in (0,1), got %g", cfg.SparseRatio)
	}
	if cfg.MinScore == 0 {
		cfg.MinScore = 0.02
	}
	if cfg.SeedFromBase < 0 {
		return nil, fmt.Errorf("sst: SeedFromBase must be non-negative, got %d", cfg.SeedFromBase)
	}
	src := newCountedSource(cfg.Seed)
	return &TopSparse{
		cfg:   cfg,
		src:   src,
		rng:   rand.New(src),
		comb:  make([]uint16, cfg.Arity),
		hist:  make(map[uint64]float64),
		owned: make(map[string]bool),
	}, nil
}

// Owns reports whether the evolver considers the given dimension set one
// of its own promotions (proposed by it and not since demoted). Foreign
// evolved subspaces — another group's, or promoted directly by the
// caller — are never demoted by this evolver and do not consume its
// TopS budget.
func (e *TopSparse) Owns(dims []uint16) bool { return e.owned[sig(dims)] }

// disown implements the Multi duplicate-resolution hook.
func (e *TopSparse) disown(dims []uint16) { delete(e.owned, sig(dims)) }

// candidate is a scored dimension set.
type candidate struct {
	dims  []uint16
	score float64
}

// Evolve implements Evolver.
func (e *TopSparse) Evolve(t *Template, stats *EpochStats) Evolution {
	var ev Evolution

	// Demote own members whose swept cells no longer show sparse
	// structure: either the subspace went entirely stale (every cell
	// evicted) or its sparse fraction fell below the floor. Evolved
	// subspaces promoted by another group are left alone.
	e.ids = t.EvolvedIDs(e.ids[:0])
	live := 0
	for _, id := range e.ids {
		sg := sig(t.Dims(int(id)))
		if !e.owned[sg] {
			continue
		}
		s := SubspaceStats{}
		if int(id) < len(stats.Subspaces) {
			s = stats.Subspaces[id]
		}
		if s.Populated == 0 || float64(s.Sparse)/float64(s.Populated) < e.cfg.MinScore {
			ev.Demote = append(ev.Demote, id)
			delete(e.owned, sg)
			continue
		}
		live++
	}

	room := e.cfg.TopS - live
	if room <= 0 || len(stats.BaseCells) == 0 {
		return ev
	}

	// Score candidates and keep the best `room` of them.
	var cands []candidate
	consider := func(dims []uint16) {
		if _, ok := t.Contains(dims); ok {
			return
		}
		if score, ok := e.score(dims, stats); ok && score >= e.cfg.MinScore {
			c := candidate{dims: append([]uint16(nil), dims...), score: score}
			cands = append(cands, c)
		}
	}
	d := t.SpaceDims()
	if n, err := binomial(d, e.cfg.Arity); err == nil && n <= e.cfg.Explore {
		// Exhaustive enumeration already scores every candidate a seed
		// could propose, so seeding here would only duplicate work.
		e.enumerate(e.comb, 0, 0, d, consider)
	} else {
		// Guided candidates first: they are deterministic and few, and
		// the promotion loop below takes the highest scores regardless
		// of which pass proposed them, so seeding never crowds out a
		// better blind draw — it only adds informed ones.
		if e.cfg.SeedFromBase > 0 {
			e.seedFromBase(d, stats, consider)
		}
		for i := 0; i < e.cfg.Explore; i++ {
			e.sample(d)
			consider(e.comb)
		}
	}
	// Highest score first; ties break on the lexicographically smaller
	// dimension set so results are deterministic.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return slices.Compare(cands[i].dims, cands[j].dims) < 0
	})
	for _, c := range cands {
		if room == 0 {
			break
		}
		dup := false // random sampling can draw the same set twice
		for _, p := range ev.Promote {
			if slices.Equal(p, c.dims) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		ev.Promote = append(ev.Promote, c.dims)
		e.owned[sig(c.dims)] = true
		room--
	}
	return ev
}

// score projects the base-cell snapshot onto dims and returns the
// sparse-cell fraction of the projection. A projection with fewer than
// two populated cells carries no contrast and scores nothing.
func (e *TopSparse) score(dims []uint16, stats *EpochStats) (float64, bool) {
	clear(e.hist)
	total := 0.0
	for i := range stats.BaseCells {
		bc := &stats.BaseCells[i]
		var key uint64
		for j, dim := range dims {
			key |= uint64(bc.Coords[dim]) << (uint(j) * core.CoordBits)
		}
		e.hist[key] += bc.Dc
		total += bc.Dc
	}
	if len(e.hist) < 2 || total <= 0 {
		return 0, false
	}
	avg := total / float64(len(e.hist))
	sparse := 0
	for _, dc := range e.hist {
		if dc < e.cfg.SparseRatio*avg {
			sparse++
		}
	}
	return float64(sparse) / float64(len(e.hist)), true
}

// seedFromBase hands consider up to SeedFromBase candidate dimension
// sets derived from the sparsest base cells of the snapshot: for each
// such cell, the Arity dimensions in which the cell's interval sits
// farthest from the density-weighted mean interval of the stream. The
// pass is a deterministic function of the snapshot (ties break on
// snapshot order and dimension index), so shard-count invariance of
// evolution is preserved. Runs on the epoch path — the few transient
// slices here never touch ingestion.
func (e *TopSparse) seedFromBase(d int, stats *EpochStats, consider func([]uint16)) {
	cells := stats.BaseCells
	arity := e.cfg.Arity
	if len(cells) == 0 || d < arity {
		return
	}
	// Density-weighted mean interval per dimension — where the data
	// mass sits, the reference a sparse cell deviates from.
	mean := make([]float64, d)
	total := 0.0
	for i := range cells {
		bc := &cells[i]
		for dim := 0; dim < d; dim++ {
			mean[dim] += bc.Dc * float64(bc.Coords[dim])
		}
		total += bc.Dc
	}
	if total <= 0 {
		return
	}
	for dim := range mean {
		mean[dim] /= total
	}
	// The SeedFromBase lowest-density cells, ties on snapshot order
	// (the detector sorts the snapshot by coordinates).
	order := make([]int, len(cells))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return cells[order[a]].Dc < cells[order[b]].Dc
	})
	seeds := e.cfg.SeedFromBase
	if seeds > len(order) {
		seeds = len(order)
	}
	taken := make([]bool, d)
	for _, ci := range order[:seeds] {
		bc := &cells[ci]
		// Top-Arity dimensions by deviation from the mean interval,
		// ties on the lower dimension index.
		for i := range taken {
			taken[i] = false
		}
		comb := e.comb[:0]
		for j := 0; j < arity; j++ {
			best, bestDev := -1, -1.0
			for dim := 0; dim < d; dim++ {
				if taken[dim] {
					continue
				}
				dev := float64(bc.Coords[dim]) - mean[dim]
				if dev < 0 {
					dev = -dev
				}
				if dev > bestDev {
					best, bestDev = dim, dev
				}
			}
			taken[best] = true
			comb = append(comb, uint16(best))
		}
		sort.Slice(comb, func(a, b int) bool { return comb[a] < comb[b] })
		consider(comb)
	}
}

// enumerate walks every sorted Arity-combination of [0,d), handing each
// to consider via the shared scratch slice.
func (e *TopSparse) enumerate(comb []uint16, pos, from, d int, consider func([]uint16)) {
	if pos == len(comb) {
		consider(comb)
		return
	}
	for i := from; i <= d-(len(comb)-pos); i++ {
		comb[pos] = uint16(i)
		e.enumerate(comb, pos+1, i+1, d, consider)
	}
}

// sample draws a random sorted Arity-subset of [0,d) into the scratch
// combination.
func (e *TopSparse) sample(d int) {
	k := e.cfg.Arity
	// Floyd's algorithm: k draws, no rejection loop.
	chosen := e.comb[:0]
	for i := d - k; i < d; i++ {
		v := uint16(e.rng.Intn(i + 1))
		hit := false
		for _, c := range chosen {
			if c == v {
				hit = true
				break
			}
		}
		if hit {
			v = uint16(i)
		}
		chosen = append(chosen, v)
	}
	sort.Slice(chosen, func(i, j int) bool { return chosen[i] < chosen[j] })
}
