package sst

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"spot/internal/core"
)

// State extraction for the snapshot layer. Two kinds of state leave
// this package: the template's evolved slots (EvolvedSlots /
// RestoreEvolved) and the evolvers' internal state (StateMarshaler).
// Both restore to bit-identical continuations: the evolvers' RNGs are
// counted sources whose draw count is saved and replayed by skipping,
// so a restored evolver draws exactly the sequence the uninterrupted
// one would have.

// StateMarshaler is implemented by evolvers whose internal state must
// survive a detector checkpoint for restored verdicts to stay
// bit-identical (TopSparse, MOGA, Multi). MarshalState serializes the
// evolver's mutable state; UnmarshalState resets the evolver to its
// just-constructed state and applies the serialized one on top — the
// evolver must have been built with the same configuration that
// produced the state. Both are deterministic: marshaling the same
// state twice yields the same bytes.
type StateMarshaler interface {
	MarshalState() ([]byte, error)
	UnmarshalState(data []byte) error
}

// maxRestoreDraws bounds the RNG draw count accepted from serialized
// state, so a corrupt count fails fast instead of spinning the
// skip-replay loop for hours. Real runs draw a few thousand times per
// epoch; the bound allows billions.
const maxRestoreDraws = 1 << 32

// countedSource wraps a math/rand source and counts its state
// advances. Both Int63 and Uint64 of the stdlib source advance the
// generator exactly once, so "the state after n draws" is reproduced
// by reseeding and discarding n values — which is how UnmarshalState
// restores an evolver's RNG without access to the generator's
// internal state.
type countedSource struct {
	src   rand.Source
	src64 rand.Source64
	draws uint64
}

// newCountedSource returns a counted source over rand.NewSource(seed).
func newCountedSource(seed int64) *countedSource {
	c := &countedSource{src: rand.NewSource(seed)}
	c.src64, _ = c.src.(rand.Source64)
	return c
}

// Int63 implements rand.Source.
func (c *countedSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

// Uint64 implements rand.Source64. A source without native 64-bit
// output is emulated the way math/rand does, counting both advances.
func (c *countedSource) Uint64() uint64 {
	if c.src64 != nil {
		c.draws++
		return c.src64.Uint64()
	}
	c.draws += 2
	return uint64(c.src.Int63())>>31 | uint64(c.src.Int63())<<32
}

// Seed implements rand.Source, resetting the draw count alongside the
// generator.
func (c *countedSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// skipTo advances the freshly reseeded source until it has performed n
// draws, reproducing the serialized generator state.
func (c *countedSource) skipTo(n uint64) {
	for c.draws < n {
		c.draws++
		c.src.Int63()
	}
}

// stateEnc builds an evolver-state payload: little-endian fixed-width
// appends into one byte slice.
type stateEnc struct{ b []byte }

func (e *stateEnc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *stateEnc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *stateEnc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *stateEnc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }

// dimSet appends a length-prefixed dimension set.
func (e *stateEnc) dimSet(dims []uint16) {
	e.u16(uint16(len(dims)))
	for _, d := range dims {
		e.u16(d)
	}
}

// stateDec consumes an evolver-state payload with a sticky error: the
// first out-of-bounds read arms it and every later read returns zero,
// so decoders validate once at the end.
type stateDec struct {
	b   []byte
	off int
	err error
}

func (d *stateDec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.b) || n < 0 {
		d.err = fmt.Errorf("sst: state payload truncated")
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *stateDec) u8() uint8 {
	if v := d.take(1); v != nil {
		return v[0]
	}
	return 0
}

func (d *stateDec) u16() uint16 {
	if v := d.take(2); v != nil {
		return binary.LittleEndian.Uint16(v)
	}
	return 0
}

func (d *stateDec) u32() uint32 {
	if v := d.take(4); v != nil {
		return binary.LittleEndian.Uint32(v)
	}
	return 0
}

func (d *stateDec) u64() uint64 {
	if v := d.take(8); v != nil {
		return binary.LittleEndian.Uint64(v)
	}
	return 0
}

// dimSet consumes a length-prefixed dimension set, bounding the length
// by the remaining payload.
func (d *stateDec) dimSet() []uint16 {
	n := int(d.u16())
	if d.err != nil {
		return nil
	}
	if 2*n > len(d.b)-d.off {
		d.err = fmt.Errorf("sst: state payload truncated")
		return nil
	}
	dims := make([]uint16, n)
	for i := range dims {
		dims[i] = d.u16()
	}
	return dims
}

// count consumes a uint32 element count validated at minSize bytes per
// element against the remaining payload.
func (d *stateDec) count(minSize int) int {
	n := d.u32()
	if d.err == nil && minSize > 0 && uint64(n)*uint64(minSize) > uint64(len(d.b)-d.off) {
		d.err = fmt.Errorf("sst: state payload truncated")
		return 0
	}
	return int(n)
}

// finish returns the sticky error, or an error if payload bytes remain
// unconsumed (a sign of version or composition skew).
func (d *stateDec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("sst: %d trailing bytes in state payload", len(d.b)-d.off)
	}
	return nil
}

// evolverStateVersion tags the per-evolver payloads; unknown versions
// are rejected.
const evolverStateVersion = 1

// sortedOwned returns the owned signatures in sorted order, so
// marshaling is deterministic under Go's randomized map iteration.
func sortedOwned(owned map[string]bool) []string {
	sigs := make([]string, 0, len(owned))
	for s := range owned {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	return sigs
}

// sigDims decodes a canonical signature back into its dimension set.
func sigDims(s string) []uint16 {
	dims := make([]uint16, len(s)/2)
	for i := range dims {
		dims[i] = uint16(s[2*i]) | uint16(s[2*i+1])<<8
	}
	return dims
}

// validOwnedSet validates a restored ownership dimension set: strictly
// increasing, legal evolved arity.
func validOwnedSet(dims []uint16) error {
	if len(dims) < 1 || len(dims) > core.MaxSubspaceDims {
		return fmt.Errorf("sst: owned set arity %d out of [1,%d]", len(dims), core.MaxSubspaceDims)
	}
	for i := 1; i < len(dims); i++ {
		if dims[i] <= dims[i-1] {
			return fmt.Errorf("sst: owned set %v not strictly increasing", dims)
		}
	}
	return nil
}

// MarshalState implements StateMarshaler: the evolver's RNG draw count
// and the signatures of its owned promotions.
func (e *TopSparse) MarshalState() ([]byte, error) {
	var enc stateEnc
	enc.u8(evolverStateVersion)
	enc.u64(e.src.draws)
	enc.u32(uint32(len(e.owned)))
	for _, s := range sortedOwned(e.owned) {
		enc.dimSet(sigDims(s))
	}
	return enc.b, nil
}

// UnmarshalState implements StateMarshaler: the evolver is reset to
// its seeded construction state, the RNG is replayed to the saved draw
// count, and ownership is rebuilt.
func (e *TopSparse) UnmarshalState(data []byte) error {
	dec := stateDec{b: data}
	if v := dec.u8(); v != evolverStateVersion && dec.err == nil {
		return fmt.Errorf("sst: TopSparse state version %d, this build reads %d", v, evolverStateVersion)
	}
	draws := dec.u64()
	if draws > maxRestoreDraws {
		return fmt.Errorf("sst: TopSparse draw count %d exceeds the restore bound", draws)
	}
	n := dec.count(3)
	owned := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		dims := dec.dimSet()
		if dec.err != nil {
			break
		}
		if err := validOwnedSet(dims); err != nil {
			return err
		}
		owned[sig(dims)] = true
	}
	if err := dec.finish(); err != nil {
		return err
	}
	e.src.Seed(e.cfg.Seed)
	e.src.skipTo(draws)
	e.owned = owned
	return nil
}

// MarshalState implements StateMarshaler: the RNG draw count, the
// lattice geometry fixed at first Evolve, the owned signatures and the
// population's dimension sets in order. Fitness fields are not saved —
// Evolve re-evaluates the whole population against the fresh snapshot
// before using any of them.
func (m *MOGA) MarshalState() ([]byte, error) {
	var enc stateEnc
	enc.u8(evolverStateVersion)
	enc.u64(m.src.draws)
	enc.u32(uint32(m.d))
	enc.u32(uint32(m.maxArity))
	enc.u32(uint32(len(m.owned)))
	for _, s := range sortedOwned(m.owned) {
		enc.dimSet(sigDims(s))
	}
	enc.u32(uint32(len(m.pop)))
	for i := range m.pop {
		enc.dimSet(m.pop[i].dims)
	}
	return enc.b, nil
}

// UnmarshalState implements StateMarshaler; the evolver must have been
// built with the configuration that produced the state (the population
// size is checked against it).
func (m *MOGA) UnmarshalState(data []byte) error {
	dec := stateDec{b: data}
	if v := dec.u8(); v != evolverStateVersion && dec.err == nil {
		return fmt.Errorf("sst: MOGA state version %d, this build reads %d", v, evolverStateVersion)
	}
	draws := dec.u64()
	if draws > maxRestoreDraws {
		return fmt.Errorf("sst: MOGA draw count %d exceeds the restore bound", draws)
	}
	d := int(dec.u32())
	maxArity := int(dec.u32())
	nOwned := dec.count(3)
	owned := make(map[string]bool, nOwned)
	for i := 0; i < nOwned; i++ {
		dims := dec.dimSet()
		if dec.err != nil {
			break
		}
		if err := validOwnedSet(dims); err != nil {
			return err
		}
		owned[sig(dims)] = true
	}
	popLen := dec.count(2)
	popDims := make([][]uint16, popLen)
	for i := range popDims {
		popDims[i] = dec.dimSet()
	}
	if err := dec.finish(); err != nil {
		return err
	}
	if d == 0 {
		if maxArity != 0 || popLen != 0 {
			return fmt.Errorf("sst: MOGA state has a population before initialization")
		}
	} else {
		if d > 65535 {
			return fmt.Errorf("sst: MOGA state dimensionality %d out of range", d)
		}
		if maxArity < m.cfg.MinArity || maxArity > m.cfg.MaxArity || maxArity > d {
			return fmt.Errorf("sst: MOGA state maxArity %d inconsistent with config arity [%d,%d] over %d dims",
				maxArity, m.cfg.MinArity, m.cfg.MaxArity, d)
		}
		if popLen != m.cfg.PopSize {
			return fmt.Errorf("sst: MOGA state population %d, config says %d", popLen, m.cfg.PopSize)
		}
		for _, dims := range popDims {
			if len(dims) < m.cfg.MinArity || len(dims) > maxArity {
				return fmt.Errorf("sst: MOGA genome arity %d out of [%d,%d]", len(dims), m.cfg.MinArity, maxArity)
			}
			for i, dim := range dims {
				if int(dim) >= d || (i > 0 && dims[i] <= dims[i-1]) {
					return fmt.Errorf("sst: MOGA genome %v invalid over %d dims", dims, d)
				}
			}
		}
	}
	m.src.Seed(m.cfg.Seed)
	m.src.skipTo(draws)
	m.owned = owned
	m.d = d
	m.maxArity = maxArity
	m.pop = nil
	m.next = nil
	if d > 0 {
		m.pop = make([]genome, popLen)
		for i := range m.pop {
			g := &m.pop[i]
			m.ensureBits(g)
			for _, dim := range popDims[i] {
				g.bits[dim>>6] |= 1 << (uint(dim) & 63)
			}
			g.dims = append(g.dims[:0], popDims[i]...)
		}
	}
	return nil
}

// MarshalState implements StateMarshaler by concatenating the
// sub-evolvers' states in order; sub-evolvers without state of their
// own are recorded as stateless.
func (m Multi) MarshalState() ([]byte, error) {
	var enc stateEnc
	enc.u8(evolverStateVersion)
	enc.u32(uint32(len(m)))
	for i, sub := range m {
		sm, ok := sub.(StateMarshaler)
		if !ok {
			enc.u8(0)
			continue
		}
		payload, err := sm.MarshalState()
		if err != nil {
			return nil, fmt.Errorf("sst: Multi sub-evolver %d: %w", i, err)
		}
		enc.u8(1)
		enc.u32(uint32(len(payload)))
		enc.b = append(enc.b, payload...)
	}
	return enc.b, nil
}

// UnmarshalState implements StateMarshaler. The Multi must hold the
// same sub-evolver composition that produced the state: the count and
// each position's statefulness must match, or the state would silently
// apply to the wrong group.
func (m Multi) UnmarshalState(data []byte) error {
	dec := stateDec{b: data}
	if v := dec.u8(); v != evolverStateVersion && dec.err == nil {
		return fmt.Errorf("sst: Multi state version %d, this build reads %d", v, evolverStateVersion)
	}
	n := dec.count(1)
	if dec.err == nil && n != len(m) {
		return fmt.Errorf("sst: Multi state holds %d sub-evolvers, this combinator has %d", n, len(m))
	}
	for i := 0; i < n && dec.err == nil; i++ {
		hasState := dec.u8()
		if hasState > 1 {
			return fmt.Errorf("sst: Multi sub-evolver %d: invalid state flag %d", i, hasState)
		}
		sm, ok := m[i].(StateMarshaler)
		if hasState == 0 {
			if ok {
				return fmt.Errorf("sst: Multi sub-evolver %d is stateful but the state has none for it", i)
			}
			continue
		}
		if !ok {
			return fmt.Errorf("sst: Multi sub-evolver %d is stateless but the state carries some", i)
		}
		pl := dec.count(1)
		payload := dec.take(pl)
		if dec.err != nil {
			break
		}
		if err := sm.UnmarshalState(payload); err != nil {
			return fmt.Errorf("sst: Multi sub-evolver %d: %w", i, err)
		}
	}
	return dec.finish()
}

// EvolvedSlot describes one evolved template slot for serialization:
// the live subspace's dimension set, or a tombstone awaiting reuse.
type EvolvedSlot struct {
	// Dims is the slot's dimension set; empty for a tombstoned slot.
	Dims []uint16
	// Active reports whether the slot holds a live subspace.
	Active bool
}

// EvolvedSlots returns the template's evolved slots in ID order
// (IDs FixedCount() + index). Tombstoned slots come back with empty
// dims, so the caller serializes exactly the live state.
func (t *Template) EvolvedSlots() []EvolvedSlot {
	slots := make([]EvolvedSlot, 0, len(t.sizes)-t.fixed)
	for i := t.fixed; i < len(t.sizes); i++ {
		s := EvolvedSlot{Active: t.active[i]}
		if t.active[i] {
			s.Dims = append([]uint16(nil), t.Dims(i)...)
		}
		slots = append(slots, s)
	}
	return slots
}

// FreeSlots returns a copy of the tombstoned-slot reuse list in its
// internal (LIFO) order; restoring it verbatim makes future slot reuse
// identical to the uninterrupted run's.
func (t *Template) FreeSlots() []uint32 {
	return append([]uint32(nil), t.free...)
}

// RestoreEvolved rebuilds the evolved group of a freshly constructed
// template from serialized slots and the free list, in ID order. The
// template must hold only its fixed group; slot contents are validated
// (legal strictly increasing dimension sets, no duplicates, free list
// exactly covering the tombstoned slots) so corrupt snapshots fail
// here with an error instead of corrupting the index.
func (t *Template) RestoreEvolved(slots []EvolvedSlot, free []uint32) error {
	if len(t.sizes) != t.fixed {
		return fmt.Errorf("sst: RestoreEvolved on a template with %d evolved slots", len(t.sizes)-t.fixed)
	}
	if len(slots) > core.MaxSubspaceID+1-t.fixed {
		return fmt.Errorf("sst: %d evolved slots exceed the subspace-ID budget", len(slots))
	}
	inactive := 0
	for _, s := range slots {
		id := uint32(len(t.sizes))
		if !s.Active {
			if len(s.Dims) != 0 {
				return fmt.Errorf("sst: tombstoned slot %d carries dimensions", id)
			}
			t.sizes = append(t.sizes, 0)
			t.active = append(t.active, false)
			t.dims = append(t.dims, make([]uint16, t.stride)...)
			inactive++
			continue
		}
		if len(s.Dims) < 1 || len(s.Dims) > core.MaxSubspaceDims {
			return fmt.Errorf("sst: slot %d arity %d out of [1,%d]", id, len(s.Dims), core.MaxSubspaceDims)
		}
		for i, d := range s.Dims {
			if int(d) >= t.spaceDims {
				return fmt.Errorf("sst: slot %d dimension %d out of range", id, d)
			}
			if i > 0 && s.Dims[i] <= s.Dims[i-1] {
				return fmt.Errorf("sst: slot %d dimension set %v not strictly increasing", id, s.Dims)
			}
		}
		sg := sig(s.Dims)
		if _, dup := t.index[sg]; dup {
			return fmt.Errorf("sst: slot %d duplicates subspace %v", id, s.Dims)
		}
		t.sizes = append(t.sizes, uint8(len(s.Dims)))
		t.active = append(t.active, true)
		start := len(t.dims)
		t.dims = append(t.dims, s.Dims...)
		for len(t.dims) < start+t.stride {
			t.dims = append(t.dims, 0)
		}
		t.index[sg] = id
		if len(s.Dims) > t.maxDim {
			t.maxDim = len(s.Dims)
		}
	}
	if len(free) != inactive {
		return fmt.Errorf("sst: free list has %d entries for %d tombstoned slots", len(free), inactive)
	}
	seen := make(map[uint32]bool, len(free))
	for _, id := range free {
		if int(id) < t.fixed || int(id) >= len(t.sizes) || t.active[id] || seen[id] {
			return fmt.Errorf("sst: free-list entry %d is not a distinct tombstoned evolved slot", id)
		}
		seen[id] = true
	}
	t.free = append([]uint32(nil), free...)
	return nil
}
