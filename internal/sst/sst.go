// Package sst implements the Sparse Subspace Template of SPOT: the set
// of subspaces in which every streaming point is checked for projected
// outlier-ness. The template holds the paper's three groups:
//
//   - The fixed group — every subspace of dimension 1..maxDim of the
//     data space, enumerated once at construction into flat index
//     slices so the ingestion hot path walks subspaces with
//     pointer-free slice arithmetic. Fixed subspaces are never removed.
//
//   - The unsupervised self-evolving group — subspaces promoted at
//     runtime by the TopSparse Evolver from the epoch sweep's summary
//     statistics (the paper's top-sparse group), and demoted again when
//     the stream drifts away from them. Evolved slots are tombstoned on
//     demotion and reused, so subspace IDs of live subspaces stay
//     stable and the cell-key ID budget is not consumed by churn.
//
//   - The supervised example-driven group — subspaces found by the MOGA
//     Evolver's multi-objective genetic search over the subspace
//     lattice, guided by outlier examples the caller confirmed through
//     the detector's feedback API (see moga.go).
//
// Every evolver owns exactly the subspaces it promoted, so the two
// evolving groups coexist in one template behind the Multi combinator.
// Mutation (Promote/Demote) is only legal between stream epochs, while
// no detector worker is reading the template; the stream package calls
// it exclusively from its epoch-sweep path at batch boundaries.
package sst

import (
	"fmt"

	"spot/internal/core"
)

// Template is the enumeration of SST subspaces. Subspace i is
// identified by ID uint32(i); its member dimensions live in the flat
// dims slice at [i*stride, i*stride+Size(i)). IDs are never reassigned:
// the fixed group occupies [0, FixedCount) forever, evolved subspaces
// take IDs at or above FixedCount, and a demoted subspace's slot is
// reused only after its cells have been purged by the owning shard.
//
// The template is safe for concurrent readers as long as no Promote or
// Demote is in flight; the detector guarantees that by mutating only at
// epoch boundaries with its workers idle.
type Template struct {
	spaceDims int
	maxDim    int
	stride    int
	dims      []uint16 // flat, stride entries per subspace
	sizes     []uint8  // arity per subspace
	fixed     int      // subspaces [0,fixed) are the immutable fixed group
	active    []bool   // per subspace; false marks a demoted (tombstoned) slot
	free      []uint32 // demoted evolved IDs available for reuse
	index     map[string]uint32
}

// NewFixed enumerates the fixed SST group: every subspace of dimension
// 1..maxDim over a d-dimensional space, in order of increasing arity
// and lexicographic within an arity. The enumeration is done once; the
// hot path only reads the resulting flat slices.
func NewFixed(d, maxDim int) (*Template, error) {
	if d < 1 {
		return nil, fmt.Errorf("sst: need at least one dimension, got %d", d)
	}
	if d > 65535 {
		return nil, fmt.Errorf("sst: %d dimensions exceed the uint16 index range", d)
	}
	if maxDim < 1 || maxDim > core.MaxSubspaceDims {
		return nil, fmt.Errorf("sst: maxDim must be in [1,%d], got %d", core.MaxSubspaceDims, maxDim)
	}
	if maxDim > d {
		maxDim = d
	}
	n := 0
	for k := 1; k <= maxDim; k++ {
		c, err := binomial(d, k)
		if err != nil {
			return nil, err
		}
		n += c
	}
	if n > core.MaxSubspaceID+1 {
		return nil, fmt.Errorf("sst: %d subspaces exceed the %d addressable by a cell key", n, core.MaxSubspaceID+1)
	}
	t := &Template{
		spaceDims: d,
		maxDim:    maxDim,
		// Stride is the key-layout maximum, not the fixed group's
		// maxDim, so evolved subspaces of any legal arity fit the same
		// flat layout.
		stride: core.MaxSubspaceDims,
		dims:   make([]uint16, 0, n*core.MaxSubspaceDims),
		sizes:  make([]uint8, 0, n),
		index:  make(map[string]uint32, n),
	}
	comb := make([]uint16, maxDim)
	for k := 1; k <= maxDim; k++ {
		t.enumerate(comb[:k], 0, 0)
	}
	t.fixed = len(t.sizes)
	t.active = make([]bool, t.fixed)
	for i := range t.active {
		t.active[i] = true
		t.index[sig(t.Dims(i))] = uint32(i)
	}
	return t, nil
}

// enumerate fills comb with every sorted k-combination of dimensions
// starting from dimension 'from' at position 'pos', appending each
// completed combination to the template.
func (t *Template) enumerate(comb []uint16, pos, from int) {
	if pos == len(comb) {
		t.sizes = append(t.sizes, uint8(len(comb)))
		start := len(t.dims)
		t.dims = append(t.dims, comb...)
		for len(t.dims) < start+t.stride {
			t.dims = append(t.dims, 0) // pad to stride
		}
		return
	}
	for d := from; d <= t.spaceDims-(len(comb)-pos); d++ {
		comb[pos] = uint16(d)
		t.enumerate(comb, pos+1, d+1)
	}
}

// sig returns the canonical map key of a dimension set: its sorted
// members as little-endian byte pairs.
func sig(dims []uint16) string {
	b := make([]byte, 2*len(dims))
	for i, d := range dims {
		b[2*i] = byte(d)
		b[2*i+1] = byte(d >> 8)
	}
	return string(b)
}

// Count returns the number of subspace slots in the template, including
// tombstoned (demoted) slots; use Active to skip those when iterating.
func (t *Template) Count() int { return len(t.sizes) }

// FixedCount returns the size of the immutable fixed group; subspace
// IDs below it are always active.
func (t *Template) FixedCount() int { return t.fixed }

// Active reports whether subspace slot i currently holds a live
// subspace (fixed, or evolved and not demoted).
func (t *Template) Active(i int) bool { return t.active[i] }

// IsFixed reports whether subspace i belongs to the immutable fixed
// group.
func (t *Template) IsFixed(i int) bool { return i < t.fixed }

// EvolvedIDs appends the IDs of all live evolved subspaces to buf and
// returns it; pass nil to allocate.
func (t *Template) EvolvedIDs(buf []uint32) []uint32 {
	for i := t.fixed; i < len(t.sizes); i++ {
		if t.active[i] {
			buf = append(buf, uint32(i))
		}
	}
	return buf
}

// EvolvedCount returns the number of live evolved subspaces.
func (t *Template) EvolvedCount() int {
	n := 0
	for i := t.fixed; i < len(t.sizes); i++ {
		if t.active[i] {
			n++
		}
	}
	return n
}

// Contains reports whether a live subspace with exactly the given
// (strictly increasing) dimension set is in the template, and its ID.
func (t *Template) Contains(dims []uint16) (uint32, bool) {
	id, ok := t.index[sig(dims)]
	return id, ok
}

// Promote adds a live evolved subspace with the given strictly
// increasing dimension set, reusing a tombstoned slot when one is free,
// and returns its ID. It fails if the set is malformed, already in the
// template, or the subspace-ID budget of the cell-key layout is
// exhausted. Callers (the detector's epoch path) must not be processing
// points concurrently.
func (t *Template) Promote(dims []uint16) (uint32, error) {
	if len(dims) < 1 || len(dims) > core.MaxSubspaceDims {
		return 0, fmt.Errorf("sst: evolved arity must be in [1,%d], got %d", core.MaxSubspaceDims, len(dims))
	}
	for i, d := range dims {
		if int(d) >= t.spaceDims {
			return 0, fmt.Errorf("sst: dimension %d out of range for a %d-dimensional space", d, t.spaceDims)
		}
		if i > 0 && dims[i] <= dims[i-1] {
			return 0, fmt.Errorf("sst: dimension set %v not strictly increasing", dims)
		}
	}
	s := sig(dims)
	if id, ok := t.index[s]; ok {
		return id, fmt.Errorf("sst: subspace %v already in the template", dims)
	}
	var id uint32
	if n := len(t.free); n > 0 {
		id = t.free[n-1]
		t.free = t.free[:n-1]
		off := int(id) * t.stride
		copy(t.dims[off:off+t.stride], make([]uint16, t.stride))
		copy(t.dims[off:], dims)
		t.sizes[id] = uint8(len(dims))
		t.active[id] = true
	} else {
		if len(t.sizes) > core.MaxSubspaceID {
			return 0, fmt.Errorf("sst: subspace-ID budget (%d) exhausted", core.MaxSubspaceID+1)
		}
		id = uint32(len(t.sizes))
		t.sizes = append(t.sizes, uint8(len(dims)))
		t.active = append(t.active, true)
		start := len(t.dims)
		t.dims = append(t.dims, dims...)
		for len(t.dims) < start+t.stride {
			t.dims = append(t.dims, 0)
		}
	}
	if len(dims) > t.maxDim {
		t.maxDim = len(dims)
	}
	t.index[s] = id
	return id, nil
}

// Demote tombstones a live evolved subspace so its slot can be reused
// by a later Promote. Fixed-group subspaces cannot be demoted. The
// caller owns purging the subspace's cells before the slot is reused.
func (t *Template) Demote(id uint32) error {
	if int(id) < t.fixed {
		return fmt.Errorf("sst: subspace %d is in the fixed group", id)
	}
	if int(id) >= len(t.sizes) || !t.active[id] {
		return fmt.Errorf("sst: subspace %d is not a live evolved subspace", id)
	}
	delete(t.index, sig(t.Dims(int(id))))
	t.active[id] = false
	t.free = append(t.free, id)
	return nil
}

// SpaceDims returns the dimensionality of the underlying data space.
func (t *Template) SpaceDims() int { return t.spaceDims }

// MaxDim returns the largest subspace arity the template has held.
func (t *Template) MaxDim() int { return t.maxDim }

// Size returns the arity of subspace i.
func (t *Template) Size(i int) int { return int(t.sizes[i]) }

// Dims returns the member dimensions of subspace i as a subslice of the
// template's flat storage — no allocation, must not be mutated.
func (t *Template) Dims(i int) []uint16 {
	off := i * t.stride
	return t.dims[off : off+int(t.sizes[i])]
}

// binomial computes C(n,k), rejecting overflow-scale results long
// before they matter (the cell-key ID budget is checked separately).
func binomial(n, k int) (int, error) {
	if k > n {
		return 0, nil
	}
	r := 1
	for i := 1; i <= k; i++ {
		r = r * (n - k + i) / i
		if r < 0 || r > 1<<31 {
			return 0, fmt.Errorf("sst: C(%d,%d) overflows the subspace budget", n, k)
		}
	}
	return r, nil
}
