// Package sst implements the Sparse Subspace Template of SPOT: the set
// of subspaces in which every streaming point is checked for projected
// outlier-ness. This PR ships the fixed SST group — all subspaces of
// dimension 1..maxDim of the data space — with the enumeration
// precomputed once into flat index slices so the ingestion hot path
// walks subspaces with pointer-free slice arithmetic. The template also
// exposes a pluggable Evolver hook through which later PRs will add the
// paper's self-evolving groups (unsupervised top-sparse subspaces and
// supervised example-driven subspaces).
package sst

import (
	"fmt"

	"spot/internal/core"
)

// Template is an immutable enumeration of subspaces. Subspace i is
// identified by ID uint32(i); its member dimensions live in the flat
// dims slice at [i*stride, i*stride+Size(i)). Immutability after
// construction is what lets every detector shard walk the template
// concurrently without synchronization.
type Template struct {
	spaceDims int
	maxDim    int
	stride    int
	dims      []uint16 // flat, stride entries per subspace
	sizes     []uint8  // arity per subspace
}

// NewFixed enumerates the fixed SST group: every subspace of dimension
// 1..maxDim over a d-dimensional space, in order of increasing arity
// and lexicographic within an arity. The enumeration is done once; the
// hot path only reads the resulting flat slices.
func NewFixed(d, maxDim int) (*Template, error) {
	if d < 1 {
		return nil, fmt.Errorf("sst: need at least one dimension, got %d", d)
	}
	if d > 65535 {
		return nil, fmt.Errorf("sst: %d dimensions exceed the uint16 index range", d)
	}
	if maxDim < 1 || maxDim > core.MaxSubspaceDims {
		return nil, fmt.Errorf("sst: maxDim must be in [1,%d], got %d", core.MaxSubspaceDims, maxDim)
	}
	if maxDim > d {
		maxDim = d
	}
	n := 0
	for k := 1; k <= maxDim; k++ {
		c, err := binomial(d, k)
		if err != nil {
			return nil, err
		}
		n += c
	}
	if n > core.MaxSubspaceID+1 {
		return nil, fmt.Errorf("sst: %d subspaces exceed the %d addressable by a cell key", n, core.MaxSubspaceID+1)
	}
	t := &Template{
		spaceDims: d,
		maxDim:    maxDim,
		stride:    maxDim,
		dims:      make([]uint16, 0, n*maxDim),
		sizes:     make([]uint8, 0, n),
	}
	comb := make([]uint16, maxDim)
	for k := 1; k <= maxDim; k++ {
		t.enumerate(comb[:k], 0, 0)
	}
	return t, nil
}

// enumerate fills comb with every sorted k-combination of dimensions
// starting from dimension 'from' at position 'pos', appending each
// completed combination to the template.
func (t *Template) enumerate(comb []uint16, pos, from int) {
	if pos == len(comb) {
		t.sizes = append(t.sizes, uint8(len(comb)))
		start := len(t.dims)
		t.dims = append(t.dims, comb...)
		for len(t.dims) < start+t.stride {
			t.dims = append(t.dims, 0) // pad to stride
		}
		return
	}
	for d := from; d <= t.spaceDims-(len(comb)-pos); d++ {
		comb[pos] = uint16(d)
		t.enumerate(comb, pos+1, d+1)
	}
}

// Count returns the number of subspaces in the template.
func (t *Template) Count() int { return len(t.sizes) }

// SpaceDims returns the dimensionality of the underlying data space.
func (t *Template) SpaceDims() int { return t.spaceDims }

// MaxDim returns the largest subspace arity in the template.
func (t *Template) MaxDim() int { return t.maxDim }

// Size returns the arity of subspace i.
func (t *Template) Size(i int) int { return int(t.sizes[i]) }

// Dims returns the member dimensions of subspace i as a subslice of the
// template's flat storage — no allocation, must not be mutated.
func (t *Template) Dims(i int) []uint16 {
	off := i * t.stride
	return t.dims[off : off+int(t.sizes[i])]
}

// binomial computes C(n,k), rejecting overflow-scale results long
// before they matter (the cell-key ID budget is checked separately).
func binomial(n, k int) (int, error) {
	if k > n {
		return 0, nil
	}
	r := 1
	for i := 1; i <= k; i++ {
		r = r * (n - k + i) / i
		if r < 0 || r > 1<<31 {
			return 0, fmt.Errorf("sst: C(%d,%d) overflows the subspace budget", n, k)
		}
	}
	return r, nil
}

// Evolver is the hook through which self-evolving SST groups will plug
// in. An implementation inspects the current summaries and proposes
// subspaces to add to (or retire from) the template between stream
// epochs; the fixed group ships with no evolver.
type Evolver interface {
	// Evolve is called by the detector between batches with the
	// current stream tick. Implementations return proposed new
	// subspaces as dimension sets; returning nil leaves the template
	// unchanged. This PR only defines the contract.
	Evolve(tick uint64) [][]uint16
}
