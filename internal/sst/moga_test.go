package sst

import (
	"slices"
	"testing"
)

// mogaStats builds the synthetic epoch snapshot shared by the MOGA
// tests: two dense full-space clusters (interval 1 everywhere and
// interval 6 everywhere over 6 dimensions), one sparse base cell that
// borrows dimension 3 from the other cluster (unsupervised signal), and
// labeled examples that borrow dimension 5 (supervised signal). A pair
// containing dimension 5 projects every example into an empty cell; no
// other pair does.
func mogaStats(tmpl *Template, tick uint64) *EpochStats {
	return &EpochStats{
		Tick:      tick,
		BaseTotal: 101,
		BaseCells: []BaseCell{
			{Coords: []uint8{1, 1, 1, 1, 1, 1}, Dc: 50},
			{Coords: []uint8{6, 6, 6, 6, 6, 6}, Dc: 50},
			{Coords: []uint8{1, 1, 1, 6, 1, 1}, Dc: 1},
		},
		Subspaces: make([]SubspaceStats, tmpl.Count()),
		Examples: []Example{
			{Coords: []uint8{1, 1, 1, 1, 1, 6}, Tick: tick - 1},
			{Coords: []uint8{6, 6, 6, 6, 6, 1}, Tick: tick - 1},
		},
	}
}

func mogaTestConfig() MOGAConfig {
	return MOGAConfig{
		MinArity:    2,
		MaxArity:    2,
		PopSize:     16,
		Generations: 4,
		TopS:        1,
		SparseRatio: 0.1,
		MinCoverage: 0.9,
		MinSparsity: 0.5,
		Seed:        1,
	}
}

// TestMOGAPromotesExampleSubspace: the genetic search must find a pair
// containing the dimension the labeled examples deviate in — and must
// NOT pick the pair the unsupervised sparse structure points at
// (dimension 3), because no example lands in a sparse cell there.
func TestMOGAPromotesExampleSubspace(t *testing.T) {
	tmpl, err := NewFixed(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMOGA(mogaTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := m.Evolve(tmpl, mogaStats(tmpl, 100))
	if len(out.Demote) != 0 {
		t.Fatalf("nothing to demote, got %v", out.Demote)
	}
	if len(out.Promote) != 1 {
		t.Fatalf("promotions = %v, want exactly 1 (TopS)", out.Promote)
	}
	p := out.Promote[0]
	if len(p) != 2 || !slices.Contains(p, uint16(5)) {
		t.Fatalf("promoted %v, want a pair containing the examples' deviating dimension 5", p)
	}
	if slices.Contains(p, uint16(3)) {
		t.Fatalf("promoted %v pairs the unsupervised-only dimension 3 — supervision ignored", p)
	}
	if !m.Owns(p) {
		t.Error("evolver does not own its own promotion")
	}
}

// TestMOGADemotesStaleMember: once the swept statistics show an owned
// subspace without sparse structure, it is demoted and ownership
// released — while a foreign evolved subspace in the same state is left
// alone.
func TestMOGADemotesStaleMember(t *testing.T) {
	tmpl, err := NewFixed(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMOGA(mogaTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := m.Evolve(tmpl, mogaStats(tmpl, 100))
	if len(out.Promote) != 1 {
		t.Fatalf("promotions = %v, want 1", out.Promote)
	}
	own, err := tmpl.Promote(out.Promote[0])
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := tmpl.Promote([]uint16{0, 1})
	if err != nil {
		t.Fatal(err)
	}

	// Next epoch: no examples (supervision went quiet), both evolved
	// subspaces swept with zero sparse cells.
	stats := &EpochStats{
		Tick:      200,
		BaseTotal: 100,
		BaseCells: []BaseCell{
			{Coords: []uint8{1, 1, 1, 1, 1, 1}, Dc: 50},
			{Coords: []uint8{6, 6, 6, 6, 6, 6}, Dc: 50},
		},
		Subspaces: make([]SubspaceStats, tmpl.Count()),
	}
	stats.Subspaces[own] = SubspaceStats{Populated: 2, TotalDc: 100, Sparse: 0}
	stats.Subspaces[foreign] = SubspaceStats{Populated: 2, TotalDc: 100, Sparse: 0}
	out2 := m.Evolve(tmpl, stats)
	if len(out2.Demote) != 1 || out2.Demote[0] != own {
		t.Fatalf("demotions = %v, want exactly [%d] (own member only)", out2.Demote, own)
	}
	if len(out2.Promote) != 0 {
		t.Fatalf("promoted %v with no examples to learn from", out2.Promote)
	}
	if m.Owns(tmpl.Dims(int(own))) {
		t.Error("ownership not released on demotion")
	}
}

// TestMOGADeterminism: two evolvers with the same seed fed the same
// snapshots produce identical verdicts — the property shard-count
// invariance rests on.
func TestMOGADeterminism(t *testing.T) {
	mk := func() ([][]uint16, []uint32) {
		tmpl, err := NewFixed(8, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := mogaTestConfig()
		cfg.MaxArity = 3
		m, err := NewMOGA(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var promos [][]uint16
		var demos []uint32
		for epoch := 0; epoch < 4; epoch++ {
			stats := &EpochStats{
				Tick:      uint64(100 * (epoch + 1)),
				BaseTotal: 101,
				BaseCells: []BaseCell{
					{Coords: []uint8{1, 1, 1, 1, 1, 1, 1, 1}, Dc: 50},
					{Coords: []uint8{6, 6, 6, 6, 6, 6, 6, 6}, Dc: 50},
					{Coords: []uint8{1, 1, 6, 1, 1, 1, 1, 6}, Dc: 1},
				},
				Subspaces: make([]SubspaceStats, tmpl.Count()),
				Examples: []Example{
					{Coords: []uint8{1, 1, 1, 1, 1, 1, 6, 1}, Tick: 50},
				},
			}
			out := m.Evolve(tmpl, stats)
			for _, p := range out.Promote {
				if _, err := tmpl.Promote(p); err == nil {
					promos = append(promos, append([]uint16(nil), p...))
				}
			}
			demos = append(demos, out.Demote...)
		}
		return promos, demos
	}
	p1, d1 := mk()
	p2, d2 := mk()
	if len(p1) != len(p2) || len(d1) != len(d2) {
		t.Fatalf("verdict counts diverged: %v/%v vs %v/%v", p1, d1, p2, d2)
	}
	for i := range p1 {
		if !slices.Equal(p1[i], p2[i]) {
			t.Fatalf("promotion %d diverged: %v vs %v", i, p1[i], p2[i])
		}
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("demotion %d diverged: %d vs %d", i, d1[i], d2[i])
		}
	}
}

// TestMOGANoExamplesNoSearch: without labeled examples the supervised
// group must stay empty regardless of how sparse the stream looks.
func TestMOGANoExamplesNoSearch(t *testing.T) {
	tmpl, err := NewFixed(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMOGA(mogaTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	stats := mogaStats(tmpl, 100)
	stats.Examples = nil
	out := m.Evolve(tmpl, stats)
	if len(out.Promote) != 0 || len(out.Demote) != 0 {
		t.Fatalf("unsupervised snapshot mutated the supervised group: %+v", out)
	}
}

// TestMOGAConfigValidation rejects out-of-range knobs.
func TestMOGAConfigValidation(t *testing.T) {
	bad := []MOGAConfig{
		{MinArity: 1, MaxArity: 2, TopS: 1},           // arity-1 is the fixed group's job
		{MinArity: 3, MaxArity: 2, TopS: 1},           // min > max
		{MinArity: 2, MaxArity: 9, TopS: 1},           // beyond key capacity
		{TopS: 0},                                     // no budget
		{TopS: 1, PopSize: 2},                         // population too small to breed
		{TopS: 1, Generations: -1},                    // negative generations
		{TopS: 1, SparseRatio: 1.5},                   // ratio out of (0,1)
		{TopS: 1, CrossoverP: 1.5},                    // not a probability
		{TopS: 1, MutationP: -0.5},                    // not a probability
		{TopS: 1, MinCoverage: 2},                     // floor out of [0,1]
		{TopS: 1, MinSparsity: -1},                    // floor out of [0,1]
	}
	for i, cfg := range bad {
		if _, err := NewMOGA(cfg); err == nil {
			t.Errorf("config %d accepted, want error: %+v", i, cfg)
		}
	}
	if _, err := NewMOGA(MOGAConfig{TopS: 2}); err != nil {
		t.Errorf("all-defaults config rejected: %v", err)
	}
}

// TestMultiCoexistingGroups drives the unsupervised TopSparse and the
// supervised MOGA through one Multi evolver: each promotes its own kind
// of subspace, owns it exclusively, and neither demotes the other's.
func TestMultiCoexistingGroups(t *testing.T) {
	tmpl, err := NewFixed(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NewTopSparse(TopSparseConfig{Arity: 2, TopS: 1, Explore: 64, SparseRatio: 0.1, MinScore: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := NewMOGA(mogaTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	multi := Multi{ts, mg}

	out := multi.Evolve(tmpl, mogaStats(tmpl, 100))
	if len(out.Promote) != 2 {
		t.Fatalf("promotions = %v, want one per group", out.Promote)
	}
	tsSet, mgSet := out.Promote[0], out.Promote[1]
	if !slices.Contains(tsSet, uint16(3)) {
		t.Fatalf("TopSparse promoted %v, want a pair with the globally sparse dimension 3", tsSet)
	}
	if !slices.Contains(mgSet, uint16(5)) {
		t.Fatalf("MOGA promoted %v, want a pair with the examples' dimension 5", mgSet)
	}
	tsID, err := tmpl.Promote(tsSet)
	if err != nil {
		t.Fatal(err)
	}
	mgID, err := tmpl.Promote(mgSet)
	if err != nil {
		t.Fatal(err)
	}
	if !ts.Owns(tsSet) || ts.Owns(mgSet) || !mg.Owns(mgSet) || mg.Owns(tsSet) {
		t.Fatal("ownership crossed between the groups")
	}

	// Both members go stale; each group demotes exactly its own.
	stats := mogaStats(tmpl, 200)
	stats.Subspaces[tsID] = SubspaceStats{Populated: 2, TotalDc: 100, Sparse: 0}
	stats.Subspaces[mgID] = SubspaceStats{Populated: 2, TotalDc: 100, Sparse: 0}
	out2 := multi.Evolve(tmpl, stats)
	if len(out2.Demote) != 2 {
		t.Fatalf("demotions = %v, want both stale members (one per owner)", out2.Demote)
	}
	seen := map[uint32]bool{out2.Demote[0]: true, out2.Demote[1]: true}
	if !seen[tsID] || !seen[mgID] {
		t.Fatalf("demotions = %v, want {%d, %d}", out2.Demote, tsID, mgID)
	}
}

// TestMOGALowDimensionalSpace: a data space smaller than the configured
// MaxArity must clamp the search instead of hanging — the genome can
// never hold more dimensions than exist. (Regression: mutate/repair
// once looped forever hunting a clear bit in a full bitset.)
func TestMOGALowDimensionalSpace(t *testing.T) {
	tmpl, err := NewFixed(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMOGA(MOGAConfig{TopS: 1, Seed: 3}) // defaults: MinArity 2, MaxArity 3 > d
	if err != nil {
		t.Fatal(err)
	}
	stats := &EpochStats{
		Tick:      100,
		BaseTotal: 100,
		BaseCells: []BaseCell{
			{Coords: []uint8{1, 1}, Dc: 50},
			{Coords: []uint8{6, 6}, Dc: 50},
		},
		Subspaces: make([]SubspaceStats, tmpl.Count()),
		Examples:  []Example{{Coords: []uint8{1, 6}, Tick: 99}},
	}
	out := m.Evolve(tmpl, stats) // must terminate
	if len(out.Promote) != 1 || !slices.Equal(out.Promote[0], []uint16{0, 1}) {
		t.Fatalf("promotions = %v, want the only possible pair [0 1]", out.Promote)
	}
}

// TestMultiDuplicateProposalOwnership: when two groups propose the same
// dimension set in one epoch, the earlier group wins — the merged
// verdict carries the set once and the later group's ownership claim is
// revoked, preserving the one-owner invariant.
func TestMultiDuplicateProposalOwnership(t *testing.T) {
	tmpl, err := NewFixed(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Identical seeds and configs → identical proposals.
	m1, err := NewMOGA(mogaTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMOGA(mogaTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := Multi{m1, m2}.Evolve(tmpl, mogaStats(tmpl, 100))
	if len(out.Promote) != 1 {
		t.Fatalf("promotions = %v, want the duplicate collapsed to 1", out.Promote)
	}
	p := out.Promote[0]
	if !m1.Owns(p) {
		t.Error("earlier evolver lost ownership of its promotion")
	}
	if m2.Owns(p) {
		t.Error("later evolver kept a false ownership claim over the dropped duplicate")
	}
}
