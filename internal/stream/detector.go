// Package stream implements SPOT's streaming detection engine: a
// sharded Detector that ingests high-dimensional points, maintains the
// decayed cell summaries of every Sparse Subspace Template subspace,
// and emits a projected-outlier verdict per point.
//
// Concurrency model: the SST's subspaces are partitioned across N
// shards (round-robin for the fixed group, least-loaded for evolved
// subspaces). Each shard exclusively owns the cell table, totals and
// representative set of its subspaces, so the hot path takes no locks —
// a shard's state is only ever touched by the goroutine processing it.
// Process walks the shards inline on the caller's goroutine
// (deterministic, allocation-free); ProcessBatch hands the whole batch
// to one worker goroutine per shard and synchronizes only at batch
// boundaries via channels. Verdicts are identical regardless of shard
// count.
//
// Epoch engine: when Config.EpochTicks is set, the detector pauses at
// every multiple of it — between points in Process, between internally
// split sub-batches in ProcessBatch, always with the workers idle — and
// sweeps every summary table once: summaries whose decayed density fell
// below Config.EvictEpsilon are evicted (bounding memory on drifting
// streams), per-arity average populated-cell densities are recomputed
// (feeding the arity-aware RD test), and the optional sst.Evolver is
// consulted to promote or demote self-evolving SST subspaces. Because
// sweeps happen at exact ticks in both modes, batch and pointwise
// verdicts stay identical.
package stream

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"

	"spot/internal/core"
	"spot/internal/sst"
)

// Typed errors of the ingestion API, returned by ProcessBatchErr (the
// panicking ProcessBatch wraps them): a caller's malformed batch must
// not take the detector's learned state down with it.
var (
	// ErrBatchLength marks a flat batch whose length is not a multiple
	// of the configured dimensionality.
	ErrBatchLength = errors.New("stream: batch length not a multiple of Dims")
	// ErrVerdictBuffer marks a verdict buffer shorter than the batch.
	ErrVerdictBuffer = errors.New("stream: verdict buffer shorter than batch")
	// ErrScoreBuffer marks a score buffer shorter than the batch in a
	// ProcessBatchScored call.
	ErrScoreBuffer = errors.New("stream: score buffer shorter than batch")
	// ErrScoringDisabled marks a scored-API call (ProcessScored,
	// ProcessBatchScored) on a detector built without Config.Scoring.
	ErrScoringDisabled = errors.New("stream: scoring is not enabled")
	// ErrClosed marks a call on a detector after Close.
	ErrClosed = errors.New("stream: detector is closed")
	// ErrNonFinite marks a point carrying a NaN or ±Inf coordinate.
	// Out-of-range finite values clamp to edge cells (a caller with
	// loose bounds still gets sane geometry), but a non-finite value
	// fails both clamp comparisons and would land in an arbitrary
	// cell, poisoning base-cell centroids and any EVT calibration —
	// so ingestion rejects the batch before touching any state.
	ErrNonFinite = errors.New("stream: non-finite coordinate")
)

// Config parameterizes a Detector.
type Config struct {
	// Dims is the dimensionality d of the data space.
	Dims int
	// Phi is the number of equi-width intervals per dimension.
	Phi int
	// MaxSubspaceDim bounds the arity of fixed-group SST subspaces
	// (paper default 3; capped at the space dimensionality).
	MaxSubspaceDim int
	// Shards is the number of independent workers the SST is
	// partitioned across. 1 disables parallelism.
	Shards int
	// Lambda is the exponential fading factor λ; a point observed Δt
	// ticks ago weighs 2^(-λΔt).
	Lambda float64
	// Decay optionally injects a precomputed decay table to use instead
	// of building a private one. Decay tables are immutable after
	// construction (~32 KiB each), so a process hosting many detectors
	// with the same Lambda — spotd's multi-tenant registry — shares one
	// table across all of them. Must satisfy Decay.Lambda() == Lambda;
	// nil builds a private table. Never serialized: a snapshot records
	// Lambda and a restored detector takes whatever table its restore
	// Config supplies.
	Decay *core.DecayTable
	// Min and Max bound the data space per dimension; nil defaults to
	// the unit box [0,1). Out-of-range values clamp to edge cells.
	Min, Max []float64
	// RDThreshold flags a cell whose Relative Density — decayed cell
	// density over the expected density under uniformity — falls
	// below it. The primary sparsity test for low-arity subspaces.
	// Note the floor: a just-touched cell has Dc ≥ 1 and the decayed
	// stream weight asymptotes at 1/(1-2^-λ), so RD ≥ φ^k·(1-2^-λ);
	// with the defaults (φ=8, λ=0.002) that is ~0.089 for arity-2 and
	// ~0.71 for arity-3 — above the default threshold, meaning the
	// uniform RD test alone cannot flag outliers in multi-dimensional
	// subspaces there. RDPopulatedThreshold closes that gap once epoch
	// sweeps run; IkRD/IRSD are arity-independent throughout.
	RDThreshold float64
	// RDPopulatedThreshold is the arity-aware companion to RDThreshold:
	// it flags a cell whose decayed density falls below this fraction
	// of the average *populated* cell density among same-arity
	// subspaces, as measured by the latest epoch sweep. Comparing
	// against populated cells rather than the φ^k uniform expectation
	// removes the arity floor, so the RD test can fire in 2-D/3-D
	// subspaces. Inactive until the first sweep; requires EpochTicks.
	// ≤0 disables.
	RDPopulatedThreshold float64
	// IRSDThreshold flags a cell whose Inverse Relative Standard
	// Deviation falls below it. IRSD = 1/(1+z) with z the deviation
	// of the cell's mean member magnitude from the subspace mean, in
	// subspace standard deviations: low IRSD means the cell sits far
	// out in the subspace's magnitude distribution. ≤0 disables.
	IRSDThreshold float64
	// IkRDThreshold flags a cell whose Inverse k-Relative Distance
	// falls below it. IkRD = 1 - dist/maxDist where dist is the mean
	// grid (L1) distance from the cell to the subspace's k densest
	// (representative) cells: low IkRD means the cell is far from
	// every dense region of the subspace. ≤0 disables.
	IkRDThreshold float64
	// K is the number of representative cells per subspace for IkRD.
	K int
	// Warmup is the minimum decayed subspace weight before a subspace
	// may contribute verdicts; it suppresses false alarms while the
	// summaries are still forming. The decayed weight of an infinite
	// stream asymptotes at 1/(1-2^-λ), so Warmup must stay below that
	// bound or verdicts would be suppressed forever; New rejects such
	// configurations. Evolved subspaces start empty and warm up the
	// same way after promotion.
	Warmup float64
	// EpochTicks is the epoch length E: every E ticks the detector
	// sweeps all summary tables (eviction, density accounting, SST
	// evolution). 0 disables the epoch engine — summaries then grow
	// with every distinct cell ever touched, which is only safe for
	// stationary streams.
	EpochTicks uint64
	// EvictEpsilon is the eviction floor ε: a summary whose decayed
	// density at sweep time is below it is dropped. An evicted cell
	// that is touched again simply restarts from zero, so ε trades a
	// bounded bias (at most ε of forgotten weight) for bounded memory.
	// A summary of weight w is evicted after ~log2(w/ε)/λ untouched
	// ticks. 0 keeps sweeps but never evicts.
	EvictEpsilon float64
	// Evolver, when set, maintains the SST's self-evolving group: it is
	// consulted at every epoch boundary with the sweep's statistics and
	// may promote new subspaces into the template or demote stale ones.
	// Promoted subspaces are assigned to the least-loaded shard; the
	// hot path never observes a template mutation in flight. Requires
	// EpochTicks.
	Evolver sst.Evolver
	// SweepSparseRatio classifies a swept cell as sparse when its
	// decayed density is below this fraction of its subspace's average
	// populated-cell density; the per-subspace sparse counts feed the
	// Evolver's demotion decisions. 0 defaults to 0.1. Only meaningful
	// with an Evolver set.
	SweepSparseRatio float64
	// MaxExamples caps the labeled-example set retained for supervised
	// evolution (see Detector.MarkExample): when full, marking a new
	// example drops the oldest. 0 defaults to 256.
	MaxExamples int
	// ExampleTTL, when positive, expires examples more than this many
	// ticks old at each epoch sweep, so supervision follows the stream
	// instead of pinning subspaces to anomalies long gone. 0 retains
	// examples until displaced by MaxExamples.
	ExampleTTL uint64
	// SerialSweep forces epoch sweeps to run inline on the dispatcher
	// goroutine even when shard workers are available. By default the
	// per-shard table sweeps fan out to the shard workers (each table
	// is shard-exclusive and each subspace's statistics are written by
	// exactly one shard, so results are identical) while the dispatcher
	// sweeps the base-cell table, shrinking the epoch pause. Sweep
	// results are bit-identical either way; the flag exists to measure
	// the pause difference and to debug with a single-threaded sweep.
	SerialSweep bool
	// Scoring retains per-subspace deviation magnitudes through the
	// verdict pass and folds them into one calibrated ensemble outlier
	// score per flagged point (see ProcessScored, ProcessBatchScored,
	// Explain). Strictly additive: verdict bits are identical with
	// scoring on or off, and the hot path stays allocation-free — the
	// extra cost is recording (subspace, cell, measures, severity)
	// entries for flagged pairs and one merge-sort-fold per batch over
	// them, proportional to the flag rate, not the stream.
	Scoring bool
	// TopK, when positive, maintains a streaming top-K of the
	// highest-scoring points (see Detector.TopK): a bounded min-heap
	// whose entries fade with Lambda and are evicted below
	// EvictEpsilon at epoch sweeps. Requires Scoring. 0 disables.
	TopK int
	// NoCoalesce disables batch cell coalescing: ProcessBatch then
	// always takes the fused one-probe-per-point TouchCols path instead
	// of grouping each (subspace, batch) by cell and probing once per
	// distinct cell. Coalescing is on by default with a per-subspace
	// adaptive gate that already falls back on duplication-free
	// workloads, and both paths fold identical arithmetic in identical
	// per-cell tick order — verdicts are bit-identical — so the flag
	// exists to measure the coalescing win (the bench harness records
	// both) and to debug with the simpler path.
	NoCoalesce bool
	// AutoThreshold, when enabled (Risk > 0), replaces the fixed
	// RD/IRSD/IkRD verdict thresholds with EVT-calibrated ones: the
	// detector samples the per-point measure distribution on a
	// deterministic tick stride, fits a generalized Pareto lower tail
	// per (measure, arity) pair at every epoch sweep (internal/evt),
	// and publishes thresholds targeting the configured per-point
	// risk. The fixed thresholds still apply until the first
	// calibration lands, and RDPopulatedThreshold is subsumed
	// (per-arity RD calibration is the arity-aware test). Requires
	// EpochTicks. See Stats' Calibrations/AutoEffTrials for
	// observability.
	AutoThreshold AutoThreshold
}

// AutoThreshold configures EVT auto-thresholding (Config.AutoThreshold).
type AutoThreshold struct {
	// Risk is the target per-point false-alarm probability q: the
	// steady-state fraction of inlying points the detector should
	// flag. Must be in (0, 0.5); 0 disables auto-thresholding.
	Risk float64
	// Level is the POT anchor quantile of each measure census the
	// generalized Pareto tail is fitted below; 0 selects
	// evt.DefaultLevel (0.1). Must be below 0.5.
	Level float64
}

// DefaultConfig returns a starting configuration for a d-dimensional
// stream over the unit box. The epoch engine is on by default: sweeps
// every 2048 ticks with a conservative eviction floor, and the
// arity-aware RD test enabled.
func DefaultConfig(d int) Config {
	return Config{
		Dims:                 d,
		Phi:                  8,
		MaxSubspaceDim:       3,
		Shards:               1,
		Lambda:               0.002,
		RDThreshold:          0.05,
		RDPopulatedThreshold: 0.05,
		IRSDThreshold:        0.12,
		IkRDThreshold:        0.15,
		K:                    3,
		Warmup:               200,
		EpochTicks:           2048,
		EvictEpsilon:         1e-6,
	}
}

// job is the unit of work handed to shard workers: either a batch of n
// points starting at stream tick t0+1 in dimension-major (transposed)
// layout together with its precomputed discretization plane, or
// (sweep=true) an epoch-sweep order for the shard's cell table at tick
// t0. The transposed layout — column dim occupies [dim*n, (dim+1)*n) —
// lets the shards' subspace-major passes stream each member dimension
// sequentially instead of striding across point rows.
type job struct {
	flatT  []float64 // n×Dims point values, one column per dimension
	planeT []uint8   // n×Dims interval indices, one column per dimension
	n      int
	t0     uint64
	sweep  bool
	eps    float64
}

// Detector is SPOT's streaming engine. It is not safe for concurrent
// use by multiple callers; one goroutine drives Process/ProcessBatch
// and the detector fans work out internally.
type Detector struct {
	cfg    Config
	grid   *core.Grid
	tmpl   *sst.Template
	decay  *core.DecayTable
	shards []*shard
	owner  []int32 // subspace ID -> owning shard index
	tick   uint64

	// Base Cell Summaries over the full d-dimensional space; owned by
	// the dispatcher goroutine, updated while shard workers run.
	bcs      *core.BCSTable
	bscratch []uint8 // 1×Dims discretization plane of the pointwise path

	// Discretization plane of the current batch: the n×Dims interval
	// indices, computed once by the dispatcher and read by every shard
	// — without it each of the Shards workers would re-discretize every
	// point, multiplying that work by the shard count. plane is
	// row-major (per point, for the base-cell table); planeT and flatT
	// are the dimension-major transposes the shards consume.
	plane  []uint8
	planeT []uint8
	flatT  []float64

	// Labeled outlier examples for supervised evolution, newest last;
	// owned by the dispatcher goroutine (MarkExample runs between
	// batches) and handed to the Evolver at epoch boundaries.
	examples []sst.Example

	// Epoch-engine state: the per-arity average populated-cell
	// densities as of the last sweep (read by shards during
	// processing, written only between batches with workers idle),
	// reusable sweep buffers, and lifetime counters.
	popAvg     [core.MaxSubspaceDims + 1]float64
	perSub     []sst.SubspaceStats
	baseCells  []sst.BaseCell
	coordArena []uint8
	counters   epochCounters

	// Scoring state (Config.Scoring): the merged, (point, subspace)-
	// sorted attribution entries of the most recent ingest call (what
	// Explain reads), the preallocated sorter over it, the internal
	// score buffer for unscored ingest calls, and the streaming top-K
	// heap (nil unless Config.TopK > 0).
	attr         attrBuf
	sorter       attrSorter
	scoreScratch []float64
	topk         *topK

	// EVT auto-thresholding state (nil unless Config.AutoThreshold is
	// enabled); owned by the dispatcher, refit at epoch sweeps.
	auto *autoState

	jobs      []chan job
	done      chan struct{}
	workers   sync.WaitGroup
	workersUp bool
	closed    bool
}

// New builds a Detector from cfg.
func New(cfg Config) (*Detector, error) {
	if cfg.Dims < 1 {
		return nil, fmt.Errorf("stream: Dims must be positive, got %d", cfg.Dims)
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("stream: Shards must be positive, got %d", cfg.Shards)
	}
	if cfg.Lambda <= 0 {
		return nil, fmt.Errorf("stream: Lambda must be positive, got %g", cfg.Lambda)
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("stream: K must be positive, got %d", cfg.K)
	}
	if cap := 1 / (1 - math.Exp2(-cfg.Lambda)); cfg.Warmup >= cap {
		return nil, fmt.Errorf("stream: Warmup %g is unreachable: decayed stream weight asymptotes at %.1f for Lambda=%g",
			cfg.Warmup, cap, cfg.Lambda)
	}
	if cfg.Decay != nil && cfg.Decay.Lambda() != cfg.Lambda {
		return nil, fmt.Errorf("stream: shared decay table built for Lambda=%g, config says %g",
			cfg.Decay.Lambda(), cfg.Lambda)
	}
	if cfg.EvictEpsilon < 0 {
		return nil, fmt.Errorf("stream: EvictEpsilon must be non-negative, got %g", cfg.EvictEpsilon)
	}
	if at := cfg.AutoThreshold; at.Risk != 0 || at.Level != 0 {
		if at.Risk == 0 {
			return nil, fmt.Errorf("stream: AutoThreshold.Level is set but Risk is not (Risk enables auto-thresholding)")
		}
		if at.Risk <= 0 || at.Risk >= 0.5 {
			return nil, fmt.Errorf("stream: AutoThreshold.Risk must be in (0, 0.5), got %g", at.Risk)
		}
		if at.Level < 0 || at.Level >= 0.5 {
			return nil, fmt.Errorf("stream: AutoThreshold.Level must be in [0, 0.5), got %g", at.Level)
		}
		if cfg.EpochTicks == 0 {
			return nil, fmt.Errorf("stream: AutoThreshold requires EpochTicks > 0 (calibration runs at epoch sweeps)")
		}
	}
	if cfg.EpochTicks == 0 {
		if cfg.Evolver != nil {
			return nil, fmt.Errorf("stream: an Evolver requires EpochTicks > 0 (it runs at epoch boundaries)")
		}
		if cfg.RDPopulatedThreshold > 0 {
			return nil, fmt.Errorf("stream: RDPopulatedThreshold requires EpochTicks > 0 (its reference densities come from sweeps)")
		}
	}
	if cfg.SweepSparseRatio == 0 {
		cfg.SweepSparseRatio = 0.1
	}
	if cfg.SweepSparseRatio < 0 || cfg.SweepSparseRatio >= 1 {
		return nil, fmt.Errorf("stream: SweepSparseRatio must be in (0,1), got %g", cfg.SweepSparseRatio)
	}
	if cfg.MaxExamples == 0 {
		cfg.MaxExamples = 256
	}
	if cfg.MaxExamples < 0 {
		return nil, fmt.Errorf("stream: MaxExamples must be non-negative, got %d", cfg.MaxExamples)
	}
	if cfg.TopK < 0 {
		return nil, fmt.Errorf("stream: TopK must be non-negative, got %d", cfg.TopK)
	}
	if cfg.TopK > 0 && !cfg.Scoring {
		return nil, fmt.Errorf("stream: TopK requires Scoring (the heap ranks ensemble scores)")
	}
	min, max := cfg.Min, cfg.Max
	if min == nil && max == nil {
		min = make([]float64, cfg.Dims)
		max = make([]float64, cfg.Dims)
		for i := range max {
			max[i] = 1
		}
	}
	grid, err := core.NewGrid(cfg.Phi, min, max)
	if err != nil {
		return nil, err
	}
	if grid.Dims() != cfg.Dims {
		return nil, fmt.Errorf("stream: bounds cover %d dims, config says %d", grid.Dims(), cfg.Dims)
	}
	tmpl, err := sst.NewFixed(cfg.Dims, cfg.MaxSubspaceDim)
	if err != nil {
		return nil, err
	}
	decay := cfg.Decay
	if decay == nil {
		decay = core.NewDecayTable(cfg.Lambda)
	}
	d := &Detector{
		cfg:      cfg,
		grid:     grid,
		tmpl:     tmpl,
		decay:    decay,
		bcs:      core.NewBCSTable(cfg.Dims),
		bscratch: make([]uint8, cfg.Dims),
	}
	if cfg.Scoring {
		d.scoreScratch = make([]float64, 1)
		if cfg.TopK > 0 {
			d.topk = newTopK(cfg.TopK, cfg.Lambda)
		}
	}
	if cfg.AutoThreshold.Risk > 0 {
		d.auto = newAutoState(cfg.AutoThreshold, cfg.EpochTicks)
	}
	// Round-robin partition of subspace IDs. The template enumerates
	// by increasing arity, so round-robin also balances the arity mix
	// (and therefore per-point work) across shards.
	d.shards = make([]*shard, cfg.Shards)
	for i := range d.shards {
		d.shards[i] = newShard(d, i)
	}
	d.owner = make([]int32, tmpl.Count())
	for id := 0; id < tmpl.Count(); id++ {
		sh := id % cfg.Shards
		d.owner[id] = int32(sh)
		d.shards[sh].addSubspace(uint32(id))
	}
	return d, nil
}

// Template exposes the detector's SST. Callers must treat it as
// read-only and must not hold references across Process/ProcessBatch
// calls when an Evolver is configured (the epoch path mutates it).
func (d *Detector) Template() *sst.Template { return d.tmpl }

// Tick returns the number of points ingested so far.
func (d *Detector) Tick() uint64 { return d.tick }

// Process ingests one d-dimensional point and reports whether any SST
// subspace places it in an outlying cell. For points that land in
// already-populated cells it performs zero heap allocations; the
// amortized exception is the epoch sweep, which runs inline every
// Config.EpochTicks points. The point is discretized exactly once —
// the width-1 case of the batch discretization plane — and the same
// interval row feeds the base-cell table and every shard.
//
// Input contract: out-of-range finite coordinates clamp to edge
// cells; a NaN or ±Inf coordinate panics with ErrNonFinite before any
// state is touched (ProcessErr returns it as an error instead).
func (d *Detector) Process(point []float64) bool {
	out, err := d.ProcessErr(point)
	if err != nil {
		panic(err)
	}
	return out
}

// ProcessErr is Process with validation instead of panics: a closed
// detector or a point carrying a non-finite coordinate returns a
// typed error (ErrClosed, ErrNonFinite) before any state is touched.
func (d *Detector) ProcessErr(point []float64) (bool, error) {
	if d.closed {
		return false, ErrClosed
	}
	if err := checkFinite(point, d.cfg.Dims); err != nil {
		return false, err
	}
	return d.process(point), nil
}

func (d *Detector) process(point []float64) bool {
	d.tick++
	t := d.tick
	d.grid.Intervals(point, d.bscratch)
	d.bcs.Touch(d.decay, t, d.bscratch, point)
	if d.cfg.Scoring {
		d.attr.reset()
	}
	out := false
	for _, sh := range d.shards {
		if sh.processPoint(point, d.bscratch, t) {
			out = true
		}
	}
	if d.cfg.Scoring {
		d.mergeScores(1, t-1, 0, d.scoreScratch[:1])
	}
	if d.auto != nil {
		var f uint64
		if out {
			f = 1
		}
		d.auto.countFlags(1, f)
	}
	d.maybeSweep()
	return out
}

// checkFinite rejects NaN and ±Inf coordinates; v-v is 0 for every
// finite v and NaN for the three non-finite values, so the scan is
// one subtract-and-compare per value.
func checkFinite(flat []float64, dims int) error {
	for i, v := range flat {
		if v-v != 0 {
			return fmt.Errorf("%w: value %g at point %d dim %d", ErrNonFinite, v, i/dims, i%dims)
		}
	}
	return nil
}

// ProcessBatch ingests a flat row-major batch (len(flat) = n*Dims) and
// writes one verdict per point into out (len(out) ≥ n), returning n.
// The batch is processed by all shard workers in parallel; a batch that
// crosses an epoch boundary is split internally so sweeps still run at
// exact epoch ticks, making verdicts identical to feeding the points to
// Process one by one.
//
// ProcessBatch panics on a malformed call (batch length not a multiple
// of Dims, verdict buffer shorter than the batch, detector closed);
// callers that prefer an error use ProcessBatchErr, which this is a
// thin wrapper over.
func (d *Detector) ProcessBatch(flat []float64, out []bool) int {
	n, err := d.ProcessBatchErr(flat, out)
	if err != nil {
		panic(err)
	}
	return n
}

// ProcessBatchErr is ProcessBatch with validation instead of panics:
// a malformed call returns a typed error (ErrBatchLength,
// ErrVerdictBuffer, ErrClosed) before any state is touched, so a
// buggy caller cannot corrupt or crash the detector's learned state.
// Note the verdict-buffer contract validates against the point count
// n = len(flat)/Dims, not len(flat): out needs one slot per point.
// Only out[0:n] is written; longer buffers keep their tail.
func (d *Detector) ProcessBatchErr(flat []float64, out []bool) (int, error) {
	if d.closed {
		return 0, ErrClosed
	}
	n, err := d.validateBatch(flat, out)
	if err != nil || n == 0 {
		return n, err
	}
	var scores []float64
	if d.cfg.Scoring {
		// Unscored ingest still maintains attribution and the top-K
		// (scoring is a property of the detector, not of the call);
		// the scores land in the internal scratch.
		if cap(d.scoreScratch) < n {
			d.scoreScratch = make([]float64, n)
		}
		scores = d.scoreScratch[:n]
	}
	d.processBatches(flat, n, out, scores)
	return n, nil
}

// validateBatch applies the shared batch-shape checks and returns the
// point count.
func (d *Detector) validateBatch(flat []float64, out []bool) (int, error) {
	if len(flat)%d.cfg.Dims != 0 {
		return 0, fmt.Errorf("%w: %d values over %d dims", ErrBatchLength, len(flat), d.cfg.Dims)
	}
	n := len(flat) / d.cfg.Dims
	if n == 0 {
		return 0, nil
	}
	if len(out) < n {
		return 0, fmt.Errorf("%w: %d slots for %d points", ErrVerdictBuffer, len(out), n)
	}
	if err := checkFinite(flat, d.cfg.Dims); err != nil {
		return 0, err
	}
	return n, nil
}

// processBatches splits a validated batch at epoch boundaries and runs
// the chunks. scores is nil when scoring is disabled, else exactly n
// slots; attribution point indices are offset by each chunk's base so
// Explain indexes the whole call.
func (d *Detector) processBatches(flat []float64, n int, out []bool, scores []float64) {
	if d.cfg.Scoring {
		d.attr.reset()
	}
	if d.cfg.EpochTicks == 0 {
		d.runBatch(flat, n, out, scores, 0)
		return
	}
	for done := 0; done < n; {
		chunk := n - done
		if rem := int(d.cfg.EpochTicks - d.tick%d.cfg.EpochTicks); chunk > rem {
			chunk = rem
		}
		var sc []float64
		if scores != nil {
			sc = scores[done : done+chunk]
		}
		d.runBatch(flat[done*d.cfg.Dims:(done+chunk)*d.cfg.Dims], chunk, out[done:done+chunk], sc, done)
		done += chunk
		d.maybeSweep()
	}
}

// runBatch dispatches one (sub-)batch of n points to the shard workers
// and merges their verdict bitsets into out. The dispatcher first
// computes the batch's discretization plane — one n×Dims pass instead
// of one per shard — then overlaps the base-cell updates with the
// workers; the shards' verdict bitsets are OR-merged word-wise and
// expanded to out once. With scoring enabled the shards' attribution
// entries are then merged and folded into scores (see mergeScores);
// base is the chunk's offset within the caller's batch.
func (d *Detector) runBatch(flat []float64, n int, out []bool, scores []float64, base int) {
	t0 := d.tick
	d.tick += uint64(n)
	dims := d.cfg.Dims
	if cap(d.plane) < n*dims {
		d.plane = make([]uint8, n*dims)
		d.planeT = make([]uint8, n*dims)
		d.flatT = make([]float64, n*dims)
	}
	plane := d.plane[:n*dims]
	planeT := d.planeT[:n*dims]
	flatT := d.flatT[:n*dims]
	for i := 0; i < n; i++ {
		row := flat[i*dims : (i+1)*dims]
		prow := plane[i*dims : (i+1)*dims]
		d.grid.Intervals(row, prow)
		for j := 0; j < dims; j++ {
			planeT[j*n+i] = prow[j]
			flatT[j*n+i] = row[j]
		}
	}
	if !d.workersUp {
		d.startWorkers()
	}
	for _, ch := range d.jobs {
		ch <- job{flatT: flatT, planeT: planeT, n: n, t0: t0}
	}
	// The dispatcher goroutine owns the base-cell table; updating it
	// here overlaps with the shard workers instead of serializing
	// after them, reusing the plane rows it just computed.
	for i := 0; i < n; i++ {
		d.bcs.Touch(d.decay, t0+uint64(i)+1, plane[i*dims:(i+1)*dims], flat[i*dims:(i+1)*dims])
	}
	for range d.shards {
		<-d.done
	}
	merged := d.shards[0].verdict
	for _, sh := range d.shards[1:] {
		for w, v := range sh.verdict {
			merged[w] |= v
		}
	}
	for i := 0; i < n; i++ {
		out[i] = merged[i>>6]&(1<<(uint(i)&63)) != 0
	}
	if d.auto != nil {
		var flags uint64
		for _, w := range merged {
			flags += uint64(bits.OnesCount64(w))
		}
		d.auto.countFlags(uint64(n), flags)
	}
	if d.cfg.Scoring {
		d.mergeScores(n, t0, base, scores)
	}
}

func (d *Detector) startWorkers() {
	d.jobs = make([]chan job, len(d.shards))
	d.done = make(chan struct{}, len(d.shards))
	d.workers.Add(len(d.shards))
	for i, sh := range d.shards {
		ch := make(chan job, 1)
		d.jobs[i] = ch
		go func(sh *shard) {
			defer d.workers.Done()
			for jb := range ch {
				if jb.sweep {
					sh.sweepEvicted = sh.sweep(jb.t0, jb.eps, d.perSub)
				} else {
					sh.processBatch(jb)
				}
				d.done <- struct{}{}
			}
		}(sh)
	}
	d.workersUp = true
}

// Close stops the shard workers and waits for them to exit: when it
// returns, no detector goroutine remains, so a host tearing a tenant
// down (or swapping in a migrated replacement) can free or reuse its
// resources immediately. Close is idempotent — the second and every
// later call is a no-op — and safe on a detector whose workers never
// started. After Close every ingestion and snapshot entry point fails
// with ErrClosed (the Err variants return it, the panicking wrappers
// panic with it); Close must be called from the goroutine that drives
// Process/ProcessBatch, between calls, like every other non-ingest
// operation.
func (d *Detector) Close() {
	if d.closed {
		return
	}
	d.closed = true
	if d.workersUp {
		for _, ch := range d.jobs {
			close(ch)
		}
		d.workers.Wait()
	}
}

// Closed reports whether Close has been called. Safe from the driving
// goroutine only, like Close itself.
func (d *Detector) Closed() bool { return d.closed }

// MarkExample records the point as a caller-confirmed outlier example —
// the supervised feedback channel of the paper's example-driven SST
// group. The detector keeps the example's full-space interval
// coordinates (not the point itself) and hands the retained set to the
// configured sst.Evolver at the next epoch boundary, where a supervised
// evolver (sst.MOGA) searches for the subspaces in which the examples
// look maximally anomalous. At most Config.MaxExamples are retained
// (oldest dropped first) and Config.ExampleTTL bounds their age.
//
// MarkExample must be called from the goroutine driving Process /
// ProcessBatch, between calls — typically right after a flagged point
// is confirmed by the caller's feedback loop. It never touches the
// ingestion hot path: no shard state is read or written.
func (d *Detector) MarkExample(point []float64) {
	coords := make([]uint8, d.cfg.Dims)
	d.grid.Intervals(point, coords)
	if len(d.examples) >= d.cfg.MaxExamples {
		n := copy(d.examples, d.examples[len(d.examples)-d.cfg.MaxExamples+1:])
		d.examples = d.examples[:n]
	}
	d.examples = append(d.examples, sst.Example{Coords: coords, Tick: d.tick})
}

// ExampleCount returns the number of labeled examples currently
// retained for supervised evolution.
func (d *Detector) ExampleCount() int { return len(d.examples) }

// BaseCells returns the number of populated base cells.
func (d *Detector) BaseCells() int { return d.bcs.Len() }

// ProjectedCells returns the number of populated SST cells across all
// shards.
func (d *Detector) ProjectedCells() int {
	n := 0
	for _, sh := range d.shards {
		n += sh.table.Len()
	}
	return n
}
