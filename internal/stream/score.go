package stream

import (
	"fmt"
	"math"
	"sort"

	"spot/internal/core"
)

// Ensemble scoring and per-verdict attribution. With Config.Scoring
// set, the verdict pass records one attribution entry per flagged
// (subspace, cell) pair — which measures fired and how far below
// threshold they fell (core.Deficit) — instead of collapsing the
// evidence to a verdict bit. After every (sub-)batch the dispatcher
// merges the shards' entries, sorts them by (point, subspace) and
// folds each point's severities into one ensemble score via noisy-OR:
//
//	score = 1 - Π(1 - severity_s)  over the point's fired subspaces
//
// computed as -expm1(Σ log1p(-sev)) for precision. Treating each
// subspace as an independent weak witness — the ensemble view of
// subspace outlier detection — makes the score grow with both the
// depth of individual deviations and the number of agreeing
// subspaces, and keeps it calibrated in (0,1]. Folding in sorted
// subspace order makes the float accumulation — and therefore the
// score bits — independent of the shard layout.
//
// Scoring is additive: the fired-measure semantics mirror the verdict
// gates exactly (a point is flagged iff it has ≥ 1 attribution entry),
// so verdict bits are identical with scoring on or off, and the
// non-scoring hot path is untouched.

// Attribution is one subspace's evidence against a flagged point:
// where it looked anomalous and why. Valid until the next ingest call.
type Attribution struct {
	// Subspace is the SST subspace ID; Detector.Template().Dims
	// resolves its member dimensions.
	Subspace uint32
	// Cell is the packed cell key the point landed in within that
	// subspace (core.CoordAt unpacks per-dimension intervals).
	Cell uint64
	// Measures is the set of outlier-ness measures that fired.
	Measures core.Measure
	// Severity is the maximum normalized deficit across the fired
	// measures, in (0,1]: how decisively the worst measure fell below
	// its threshold.
	Severity float64
}

// attrBuf is a reusable structure-of-arrays attribution buffer. The
// per-shard instances are filled lock-free during the verdict pass
// (relative point indices); the detector-level instance holds the
// merged, (point, subspace)-sorted entries of the most recent ingest
// call, with point indices relative to that call. All arrays grow to
// a steady-state watermark and are reused — zero allocations once the
// stream's flag rate has been seen.
type attrBuf struct {
	point []int32
	sid   []uint32
	cell  []uint64
	meas  []core.Measure
	sev   []float64
}

func (b *attrBuf) reset() {
	b.point = b.point[:0]
	b.sid = b.sid[:0]
	b.cell = b.cell[:0]
	b.meas = b.meas[:0]
	b.sev = b.sev[:0]
}

func (b *attrBuf) add(point int32, sid uint32, cell uint64, meas core.Measure, sev float64) {
	b.point = append(b.point, point)
	b.sid = append(b.sid, sid)
	b.cell = append(b.cell, cell)
	b.meas = append(b.meas, meas)
	b.sev = append(b.sev, sev)
}

// attrSorter sorts an attrBuf's tail [lo:] by (point, subspace). Each
// (point, subspace) pair appears at most once, so the order is total
// and deterministic regardless of how shards interleaved the entries.
// A preallocated pointer receiver keeps sort.Sort allocation-free.
type attrSorter struct {
	b  *attrBuf
	lo int
}

func (s *attrSorter) Len() int { return len(s.b.point) - s.lo }

func (s *attrSorter) Less(i, j int) bool {
	i, j = i+s.lo, j+s.lo
	if s.b.point[i] != s.b.point[j] {
		return s.b.point[i] < s.b.point[j]
	}
	return s.b.sid[i] < s.b.sid[j]
}

func (s *attrSorter) Swap(i, j int) {
	b := s.b
	i, j = i+s.lo, j+s.lo
	b.point[i], b.point[j] = b.point[j], b.point[i]
	b.sid[i], b.sid[j] = b.sid[j], b.sid[i]
	b.cell[i], b.cell[j] = b.cell[j], b.cell[i]
	b.meas[i], b.meas[j] = b.meas[j], b.meas[i]
	b.sev[i], b.sev[j] = b.sev[j], b.sev[i]
}

// mergeScores concatenates the shards' attribution entries for the
// just-processed chunk of n points starting at stream tick t0+1 (point
// indices offset by base within the caller's batch), sorts them by
// (point, subspace), folds per-point ensemble scores into
// scores[0:n], and offers each scored point to the streaming top-K.
// Called on the dispatcher with workers idle.
func (d *Detector) mergeScores(n int, t0 uint64, base int, scores []float64) {
	for i := range scores {
		scores[i] = 0
	}
	lo := len(d.attr.point)
	for _, sh := range d.shards {
		a := &sh.attr
		for j := range a.point {
			d.attr.add(a.point[j]+int32(base), a.sid[j], a.cell[j], a.meas[j], a.sev[j])
		}
	}
	d.sorter.b = &d.attr
	d.sorter.lo = lo
	sort.Sort(&d.sorter)
	pts := d.attr.point
	for i := lo; i < len(pts); {
		p := pts[i]
		sum := 0.0
		for ; i < len(pts) && pts[i] == p; i++ {
			sum += math.Log1p(-d.attr.sev[i])
		}
		score := -math.Expm1(sum)
		rel := int(p) - base
		scores[rel] = score
		if d.topk != nil {
			d.topk.add(t0+uint64(rel)+1, score)
		}
	}
}

// ProcessScored is Process returning the point's ensemble outlier
// score alongside the verdict: 0 when no subspace flagged the point,
// otherwise the noisy-OR combination of the flagged subspaces'
// severities, in (0,1]. Requires Config.Scoring (panics with
// ErrScoringDisabled otherwise). The verdict is identical to what
// Process would have returned.
func (d *Detector) ProcessScored(point []float64) (bool, float64) {
	if d.closed {
		panic(ErrClosed)
	}
	if !d.cfg.Scoring {
		panic(ErrScoringDisabled)
	}
	out := d.Process(point)
	return out, d.scoreScratch[0]
}

// ProcessBatchScored is ProcessBatch writing each point's ensemble
// score into scores (len(scores) ≥ n) alongside its verdict. Verdicts
// are identical to ProcessBatch; scores[i] > 0 iff out[i]. Panics on a
// malformed call; ProcessBatchScoredErr is the error-returning form.
func (d *Detector) ProcessBatchScored(flat []float64, out []bool, scores []float64) int {
	n, err := d.ProcessBatchScoredErr(flat, out, scores)
	if err != nil {
		panic(err)
	}
	return n
}

// ProcessBatchScoredErr is ProcessBatchScored with validation instead
// of panics: ErrScoringDisabled when the detector was built without
// Config.Scoring, ErrScoreBuffer when scores has fewer than n slots,
// plus every error ProcessBatchErr can return — all before any state
// is touched.
func (d *Detector) ProcessBatchScoredErr(flat []float64, out []bool, scores []float64) (int, error) {
	if d.closed {
		return 0, ErrClosed
	}
	if !d.cfg.Scoring {
		return 0, ErrScoringDisabled
	}
	n, err := d.validateBatch(flat, out)
	if err != nil || n == 0 {
		return n, err
	}
	if len(scores) < n {
		return 0, fmt.Errorf("%w: %d slots for %d points", ErrScoreBuffer, len(scores), n)
	}
	d.processBatches(flat, n, out, scores[:n])
	return n, nil
}

// Explain appends the attribution entries of point i of the most
// recent Process/ProcessBatch call (i is the index within that call;
// 0 for the pointwise API) to buf and returns the extended slice,
// ordered by subspace ID. A point that was not flagged — or any i
// when scoring is disabled — appends nothing. The entries are valid
// snapshots (copied, not aliased); passing a reused buf[:0] makes the
// query allocation-free once buf has grown to the working size.
func (d *Detector) Explain(i int, buf []Attribution) []Attribution {
	pts := d.attr.point
	lo := sort.Search(len(pts), func(j int) bool { return pts[j] >= int32(i) })
	for ; lo < len(pts) && pts[lo] == int32(i); lo++ {
		buf = append(buf, Attribution{
			Subspace: d.attr.sid[lo],
			Cell:     d.attr.cell[lo],
			Measures: d.attr.meas[lo],
			Severity: d.attr.sev[lo],
		})
	}
	return buf
}

// TopK appends the current worst offenders — the up-to-Config.TopK
// highest-scoring points of the recent stream, scores decayed to the
// current tick, best first — to buf and returns the extended slice.
// Empty when Config.TopK is 0. Entries below Config.EvictEpsilon are
// dropped at epoch sweeps, so the window tracks the stream the same
// way the summary tables do. Safe to call between ingest calls only;
// passing a reused buf[:0] makes the query allocation-free.
func (d *Detector) TopK(buf []Offender) []Offender {
	if d.topk == nil {
		return buf
	}
	return d.topk.appendTo(d.decay, d.tick, buf)
}
