package stream

import (
	"bytes"
	"errors"
	"testing"

	"spot/internal/snapshot"
)

// FuzzScoreStateRoundTrip drives the top-K heap decoder with arbitrary
// section payloads — seeded with genuine encodings — wrapped in a
// well-formed snapshot framing, so the fuzzer explores the content
// validation rather than the (separately fuzzed) framing layer. The
// invariant: decodeScoreState either rejects with a typed snapshot
// error or accepts, and whatever it accepts re-encodes and re-decodes
// to the identical heap.
func FuzzScoreStateRoundTrip(f *testing.F) {
	encode := func(h *topK) []byte {
		var buf bytes.Buffer
		w, err := snapshot.NewWriter(&buf)
		if err != nil {
			f.Fatal(err)
		}
		w.Begin(secScore)
		encodeScoreState(w, h)
		w.End()
		w.Close()
		return buf.Bytes()
	}
	section := func(payload []byte) []byte {
		var buf bytes.Buffer
		w, err := snapshot.NewWriter(&buf)
		if err != nil {
			f.Fatal(err)
		}
		w.Begin(secScore)
		for _, b := range payload {
			w.U8(b)
		}
		w.End()
		w.Close()
		return buf.Bytes()
	}
	// Genuine heaps, empty through full.
	h := newTopK(4, 0.01)
	f.Add(encode(h), uint64(100), uint8(4))
	h.add(10, 0.5)
	h.add(20, 0.9)
	f.Add(encode(h), uint64(100), uint8(4))
	h.add(30, 0.1)
	h.add(40, 1.0)
	f.Add(encode(h), uint64(100), uint8(4))
	// Adversarial shapes: lying count, short payload, zero capacity.
	f.Add(section([]byte{0xff, 0xff, 0xff, 0xff}), uint64(100), uint8(4))
	f.Add(section([]byte{1, 0, 0, 0, 1, 2, 3}), uint64(100), uint8(4))
	f.Add(encode(h), uint64(0), uint8(0))

	f.Fuzz(func(t *testing.T, data []byte, tick uint64, k uint8) {
		r, err := snapshot.NewReader(bytes.NewReader(data))
		if err != nil {
			return // framing rejected; not this fuzz target's layer
		}
		sec, err := r.Next()
		if err != nil || sec.ID != secScore {
			return
		}
		dst := newTopK(int(k%16), 0.01)
		if err := decodeScoreState(sec, dst, tick); err != nil {
			if !errors.Is(err, snapshot.ErrCorrupt) && !errors.Is(err, snapshot.ErrTruncated) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Accepted state must survive a lossless round trip.
		raw := encode(dst)
		r2, err := snapshot.NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("re-encoded framing rejected: %v", err)
		}
		sec2, err := r2.Next()
		if err != nil {
			t.Fatalf("re-encoded section rejected: %v", err)
		}
		dst2 := newTopK(int(k%16), 0.01)
		if err := decodeScoreState(sec2, dst2, tick); err != nil {
			t.Fatalf("re-encoded state rejected: %v", err)
		}
		if len(dst2.ticks) != len(dst.ticks) {
			t.Fatalf("round trip changed entry count: %d vs %d", len(dst2.ticks), len(dst.ticks))
		}
		for i := range dst.ticks {
			if dst2.ticks[i] != dst.ticks[i] || dst2.scores[i] != dst.scores[i] || dst2.keys[i] != dst.keys[i] {
				t.Fatalf("round trip changed entry %d: (%d, %g, %g) vs (%d, %g, %g)",
					i, dst2.ticks[i], dst2.scores[i], dst2.keys[i],
					dst.ticks[i], dst.scores[i], dst.keys[i])
			}
		}
	})
}
