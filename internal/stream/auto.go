package stream

import (
	"math"
	"slices"

	"spot/internal/core"
	"spot/internal/evt"
)

// EVT auto-thresholding (Config.AutoThreshold): instead of three
// hand-tuned verdict floors, the caller states a per-point risk q and
// the detector calibrates every (measure, arity) threshold from the
// stream itself.
//
// What gets calibrated matters: a sweep-time census of the live cells
// describes the table, not the stream — per-point measure values dip
// far below any snapshot's minimum (a point landing in a long-idle or
// freshly-created cell produces transients no sweep ever observes), so
// thresholds fitted to a cell census cannot track a per-point risk.
// The calibrators therefore fit the per-POINT distribution: on a
// deterministic tick stride each shard evaluates, for every warm owned
// subspace, exactly the measure values a verdict compares — post-touch
// RD, and behind the same rd < 1 gate the hot path uses, IRSD and
// IkRD — and folds the per-arity minimum across its subspaces into a
// per-slot buffer. At each epoch sweep the dispatcher takes the
// cross-shard minimum per slot (the global per-point minimum over all
// subspaces of that arity — precisely the statistic whose lower tail
// the verdict OR exposes), pushes the finite minima into a rolling
// per-(measure, arity) sample window, and refits one evt.Calibrator
// per pair. Calibrated thresholds are published into the per-subspace
// states exactly like the populated-RD floors, so the hot path still
// reads one cached float per measure.
//
// Per-pair risk is not per-point risk: a point flags if any of the
// 3 × MaxSubspaceDim (measure, arity) pairs fires, and the pairs are
// correlated. The controller below closes that gap empirically: it
// tracks the realized flagged rate over a decayed window of epochs and
// scales an effective-trials divisor so the per-calibrator risk
// qEff = Risk/effTrials converges the realized per-point rate onto
// Risk, whatever the correlation structure happens to be.
//
// Shard invariance: per-slot minima are folded per shard and min-merged
// by the dispatcher — a min over any partition of the subspaces equals
// the min over all of them — and the calibrators run on the dispatcher,
// so calibrated thresholds, like fixed ones, do not depend on the shard
// count. Sampling slots are a pure function of the tick, so batch and
// pointwise ingestion collect identical samples.
const (
	autoRD       = 0
	autoIRSD     = 1
	autoIkRD     = 2
	autoMeasures = 3
)

// Controller constants: the EMA retention per epoch, the floor on the
// realized rate (so a flagless epoch shrinks effTrials gently instead
// of collapsing it), the per-epoch adjustment clamp, and the absolute
// effTrials bounds.
const (
	autoEMARetain    = 0.8
	autoRateFloorDiv = 8
	autoAdjMin       = 0.75
	autoAdjMax       = 1.3
	autoTrialsMax    = 4096
	autoQEffMax      = 0.49
)

// Sampling constants: the per-epoch sample target (setting the tick
// stride, so the hot-path overhead is bounded regardless of epoch
// length) and the rolling window capacity per (measure, arity) — at
// 128 samples per epoch the window spans the last ~8 epochs, which is
// what bounds the calibrators' adaptation lag under drift.
const (
	autoSamplesPerEpoch = 128
	autoWindowCap       = 1024
)

// autoState is the dispatcher-owned calibration state of an
// auto-thresholding detector: one calibrator and one rolling sample
// window per (measure, arity), the effective-trials controller, and
// the lifetime counters Stats reports. Everything here serializes
// through snapshot section secAuto so a restored detector continues
// bit-identically.
type autoState struct {
	risk  float64
	level float64

	// Sampling geometry, derived from Config.EpochTicks: every
	// stride-th tick is a sample slot; nSlots slots fill per epoch.
	stride uint64
	nSlots int

	cals [autoMeasures][core.MaxSubspaceDims + 1]*evt.Calibrator

	// Rolling per-point sample windows, one ring per (measure, arity):
	// win is the fixed-capacity backing array, winLen the live count,
	// winPos the next write index (oldest sample when the ring is
	// full).
	win    [autoMeasures][core.MaxSubspaceDims + 1][]float64
	winLen [autoMeasures][core.MaxSubspaceDims + 1]int
	winPos [autoMeasures][core.MaxSubspaceDims + 1]int

	// sortBuf is the refit scratch the window is copied into and
	// sorted, reused across sweeps.
	sortBuf []float64

	// Effective-trials controller: emaFlags/emaPoints is the decayed
	// flagged rate across epochs, effTrials the divisor mapping the
	// per-point Risk onto the per-calibrator risk.
	effTrials float64
	emaFlags  float64
	emaPoints float64

	// Current-epoch flag accounting, reset at every refit.
	epochFlags  uint64
	epochPoints uint64

	// Lifetime counters.
	calibrations uint64
	samples      uint64
}

func newAutoState(cfg AutoThreshold, epochTicks uint64) *autoState {
	stride := epochTicks / autoSamplesPerEpoch
	if stride == 0 {
		stride = 1
	}
	a := &autoState{
		risk:      cfg.Risk,
		level:     cfg.Level,
		stride:    stride,
		nSlots:    int((epochTicks + stride - 1) / stride),
		effTrials: 1,
	}
	for m := 0; m < autoMeasures; m++ {
		for ar := 1; ar <= core.MaxSubspaceDims; ar++ {
			a.cals[m][ar] = evt.NewCalibrator(cfg.Level)
			a.win[m][ar] = make([]float64, autoWindowCap)
		}
	}
	return a
}

// sampleSlot returns the slot index of a stream tick, or -1 when the
// tick is not sampled. Slots are a pure function of the tick and the
// epoch length, so batch and pointwise ingestion sample identically.
func (a *autoState) sampleSlot(tick, epochTicks uint64) int {
	off := (tick - 1) % epochTicks
	if off%a.stride != 0 {
		return -1
	}
	return int(off / a.stride)
}

// pushSample appends one per-point minimum to the (m, ar) rolling
// window, displacing the oldest sample once the ring is full.
func (a *autoState) pushSample(m, ar int, v float64) {
	w := a.win[m][ar]
	w[a.winPos[m][ar]] = v
	a.winPos[m][ar] = (a.winPos[m][ar] + 1) % len(w)
	if a.winLen[m][ar] < len(w) {
		a.winLen[m][ar]++
	}
	a.samples++
}

// calibrated reports whether any calibrator holds a fitted threshold —
// the gate for the effective-trials controller, so warm-start epochs
// flagged under the fixed thresholds never steer it.
func (a *autoState) calibrated() bool {
	for m := 0; m < autoMeasures; m++ {
		for ar := 1; ar <= core.MaxSubspaceDims; ar++ {
			if a.cals[m][ar].Calibrated() {
				return true
			}
		}
	}
	return false
}

// countFlags folds one epoch chunk's verdict accounting into the
// controller window.
func (a *autoState) countFlags(points, flags uint64) {
	a.epochPoints += points
	a.epochFlags += flags
}

// autoRefit is the dispatcher's per-sweep calibration pass: update the
// effective-trials controller from the epoch's realized flagged rate,
// min-merge the shards' per-slot sample buffers into the rolling
// windows, and refit every calibrator at the controlled risk. Runs
// with shard workers idle.
func (d *Detector) autoRefit() {
	a := d.auto
	if a.calibrated() && a.epochPoints > 0 {
		a.emaFlags = autoEMARetain*a.emaFlags + float64(a.epochFlags)
		a.emaPoints = autoEMARetain*a.emaPoints + float64(a.epochPoints)
		realized := a.emaFlags / a.emaPoints
		if floor := a.risk / autoRateFloorDiv; realized < floor {
			realized = floor
		}
		adj := math.Sqrt(realized / a.risk)
		if adj < autoAdjMin {
			adj = autoAdjMin
		} else if adj > autoAdjMax {
			adj = autoAdjMax
		}
		a.effTrials *= adj
		if a.effTrials < 1 {
			a.effTrials = 1
		} else if a.effTrials > autoTrialsMax {
			a.effTrials = autoTrialsMax
		}
	}
	a.epochFlags, a.epochPoints = 0, 0
	qEff := a.risk / a.effTrials
	if qEff > autoQEffMax {
		qEff = autoQEffMax
	}
	for m := 0; m < autoMeasures; m++ {
		for ar := 1; ar <= core.MaxSubspaceDims; ar++ {
			for slot := 0; slot < a.nSlots; slot++ {
				v := math.Inf(1)
				for _, sh := range d.shards {
					if s := sh.autoSamp[m][ar][slot]; s < v {
						v = s
					}
				}
				if !math.IsInf(v, 1) {
					a.pushSample(m, ar, v)
				}
			}
			n := a.winLen[m][ar]
			a.sortBuf = append(a.sortBuf[:0], a.win[m][ar][:n]...)
			slices.Sort(a.sortBuf)
			if a.cals[m][ar].Refit(a.sortBuf, qEff) {
				a.calibrations++
			}
		}
	}
	for _, sh := range d.shards {
		sh.resetAutoSamples()
	}
}

// resetAutoSamples clears the shard's per-slot sample minima for the
// next epoch.
func (s *shard) resetAutoSamples() {
	inf := math.Inf(1)
	for m := range s.autoSamp {
		for ar := range s.autoSamp[m] {
			for i := range s.autoSamp[m][ar] {
				s.autoSamp[m][ar][i] = inf
			}
		}
	}
}

// foldAutoSample folds one (subspace, point) observation into the
// shard's per-slot measure minima: the post-touch RD always, and —
// behind the identical rd < 1 gate the verdict pass uses, so the
// calibrated tail matches the tested population — IRSD and IkRD.
// The inputs are the same tick-time scalars the verdict compares
// (post-touch cell density and magnitude sum, the subspace totals
// snapshotted at the point's tick), so the sampled distribution is
// exactly the one the thresholds cut.
func (s *shard) foldAutoSample(st *subspaceState, li int, key uint64, lhs, dc, cellS, tdc, ts, tq float64, slot int) {
	ar := int(st.size)
	rd := lhs / tdc
	if rd < s.autoSamp[autoRD][ar][slot] {
		s.autoSamp[autoRD][ar][slot] = rd
	}
	if rd >= 1 {
		return
	}
	mu := ts / tdc
	if v := tq/tdc - mu*mu; v > 0 {
		z := math.Abs(cellS/dc-mu) / math.Sqrt(v)
		if irsd := 1 / (1 + z); irsd < s.autoSamp[autoIRSD][ar][slot] {
			s.autoSamp[autoIRSD][ar][slot] = irsd
		}
	}
	if st.invMaxDist > 0 {
		k := s.det.cfg.K
		repKey := s.repKeys[li*k : li*k+k]
		repDc := s.repDcs[li*k : li*k+k]
		sum, cnt := 0.0, 0
		for i, rk := range repKey {
			if repDc[i] <= 0 || rk == key {
				continue
			}
			dist := 0
			for j := 0; j < ar; j++ {
				dj := int(core.CoordAt(key, j)) - int(core.CoordAt(rk, j))
				if dj < 0 {
					dj = -dj
				}
				dist += dj
			}
			sum += float64(dist)
			cnt++
		}
		if cnt > 0 {
			if ikrd := 1 - (sum/float64(cnt))*st.invMaxDist; ikrd < s.autoSamp[autoIkRD][ar][slot] {
				s.autoSamp[autoIkRD][ar][slot] = ikrd
			}
		}
	}
}

// refreshAutoThresholds publishes the calibrated thresholds into the
// shard's per-subspace states — the auto-mode counterpart of
// refreshPopFloors. Arities whose calibrators have not fitted yet keep
// the configured fixed thresholds, so warm-start behavior matches a
// fixed-threshold detector until the first window fills. The
// populated-RD floor is cleared: per-arity calibration of RD itself
// subsumes the arity-aware companion test.
func (s *shard) refreshAutoThresholds() {
	a := s.det.auto
	cfg := &s.det.cfg
	for li := range s.states {
		st := &s.states[li]
		st.popFloor = 0
		if c := a.cals[autoRD][st.size]; c.Calibrated() {
			st.rdThr = c.Threshold()
		} else {
			st.rdThr = cfg.RDThreshold
		}
		if c := a.cals[autoIRSD][st.size]; c.Calibrated() {
			st.irsdThr = c.Threshold()
		} else {
			st.irsdThr = cfg.IRSDThreshold
		}
		if c := a.cals[autoIkRD][st.size]; c.Calibrated() {
			st.ikrdThr = c.Threshold()
		} else {
			st.ikrdThr = cfg.IkRDThreshold
		}
	}
}

// refreshThresholds publishes per-subspace verdict thresholds on every
// shard after a sweep (or a restore): calibrated EVT thresholds in
// auto mode, the arity-aware populated-RD floors otherwise.
func (d *Detector) refreshThresholds() {
	for _, sh := range d.shards {
		if d.auto != nil {
			sh.refreshAutoThresholds()
		} else {
			sh.refreshPopFloors()
		}
	}
}
