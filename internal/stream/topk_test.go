package stream

import (
	"math"
	"math/rand"
	"testing"

	"spot/internal/core"
)

// topkOracle is the naive reference the streaming heap is checked
// against: it retains EVERY insert, removes decayed-below-eps entries
// on the same schedule the heap does, and answers queries by fully
// sorting. The heap must agree exactly: because ranking keys are
// time-invariant and decay-eviction always removes a down-set of the
// key order, the bounded heap loses nothing the oracle would keep in
// its top K.
type topkOracle struct {
	ticks  []uint64
	scores []float64
	lambda float64
}

func (o *topkOracle) add(tick uint64, score float64) {
	if score <= 0 {
		return
	}
	o.ticks = append(o.ticks, tick)
	o.scores = append(o.scores, score)
}

func (o *topkOracle) key(i int) float64 {
	return math.Log2(o.scores[i]) + o.lambda*float64(o.ticks[i])
}

func (o *topkOracle) decayEvict(decay *core.DecayTable, tick uint64, eps float64) {
	if eps <= 0 {
		return
	}
	w := 0
	for i := range o.ticks {
		if o.scores[i]*decay.At(tick-o.ticks[i]) >= eps {
			o.ticks[w], o.scores[w] = o.ticks[i], o.scores[i]
			w++
		}
	}
	o.ticks, o.scores = o.ticks[:w], o.scores[:w]
}

// top returns the k best entries by (key desc, tick asc) with scores
// decayed to tick — the sort-based reference for appendTo.
func (o *topkOracle) top(decay *core.DecayTable, tick uint64, k int) []Offender {
	idx := make([]int, len(o.ticks))
	for i := range idx {
		idx[i] = i
	}
	// Selection order by ranking key (the membership criterion), ties
	// by earlier tick.
	for i := 0; i < len(idx); i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			ki, kj := o.key(idx[best]), o.key(idx[j])
			if kj > ki || (kj == ki && o.ticks[idx[j]] < o.ticks[idx[best]]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	if len(idx) > k {
		idx = idx[:k]
	}
	out := make([]Offender, len(idx))
	for i, j := range idx {
		out[i] = Offender{Tick: o.ticks[j], Score: o.scores[j] * decay.At(tick-o.ticks[j])}
	}
	// appendTo orders by (decayed score desc, tick asc); at a fixed
	// query tick that equals key order except when distinct keys round
	// to the same decayed float, so re-sort the selected window the
	// way the query sorts.
	for i := 0; i < len(out); i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if out[j].Score > out[best].Score ||
				(out[j].Score == out[best].Score && out[j].Tick < out[best].Tick) {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	return out
}

// TestTopKOracleProperty drives random insert/decay/query schedules —
// including score ties (λ=0 trials make equal scores exact key ties),
// K greater than the population, and K=0 — through the heap and the
// retain-everything sort oracle and requires exact agreement after
// every operation.
func TestTopKOracleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 80; trial++ {
		k := rng.Intn(7) // 0..6, often larger than the population below
		lambda := 0.0
		if rng.Intn(3) > 0 {
			lambda = 0.001 + rng.Float64()*0.05
		}
		decay := core.NewDecayTable(lambda)
		h := newTopK(k, lambda)
		o := &topkOracle{lambda: lambda}
		tick := uint64(0)
		// A small score palette so λ=0 trials produce exact ties.
		palette := []float64{0.1, 0.25, 0.25, 0.5, 0.9, 1.0}
		ops := 40 + rng.Intn(120)
		for op := 0; op < ops; op++ {
			switch rng.Intn(10) {
			case 0: // epoch-style decay eviction
				eps := []float64{0, 1e-6, 1e-2, 0.2}[rng.Intn(4)]
				h.decayEvict(decay, tick, eps)
				o.decayEvict(decay, tick, eps)
			default: // insert at a fresh tick
				tick += 1 + uint64(rng.Intn(50))
				s := palette[rng.Intn(len(palette))]
				if rng.Intn(4) == 0 {
					s = rng.Float64() // occasionally arbitrary
				}
				h.add(tick, s)
				o.add(tick, s)
			}
			got := h.appendTo(decay, tick, nil)
			want := o.top(decay, tick, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d op %d: heap has %d entries, oracle top-%d has %d",
					trial, op, len(got), k, len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d op %d entry %d: heap %+v oracle %+v (k=%d λ=%g)",
						trial, op, i, got[i], want[i], k, lambda)
				}
			}
		}
	}
}

// TestTopKZeroAndRejects pins the cheap edges: K=0 accepts nothing,
// non-positive scores are ignored, and a full heap rejects entries
// that do not outrank its minimum without mutating state.
func TestTopKZeroAndRejects(t *testing.T) {
	decay := core.NewDecayTable(0.01)
	h0 := newTopK(0, 0.01)
	h0.add(1, 0.9)
	if got := h0.appendTo(decay, 1, nil); len(got) != 0 {
		t.Fatalf("K=0 heap returned %d entries", len(got))
	}

	h := newTopK(2, 0.01)
	h.add(1, 0)    // no evidence
	h.add(2, -0.5) // nonsensical, ignored
	if got := h.appendTo(decay, 2, nil); len(got) != 0 {
		t.Fatalf("non-positive scores entered the heap: %v", got)
	}
	h.add(3, 0.9)
	h.add(4, 0.8)
	h.add(5, 1e-9) // far below both decayed incumbents: rejected
	got := h.appendTo(decay, 5, nil)
	if len(got) != 2 || got[0].Tick != 3 || got[1].Tick != 4 {
		t.Fatalf("unexpected heap content: %v", got)
	}
}

// TestTopKLargeTickResolution is the precision regression pin for the
// base-anchored ranking keys. Deep into a stream (tick ~2^40, λ=0.002)
// the unanchored key log2(s) + λ·t carries a tick term near 2.2e9,
// where a float64 ulp is ~5e-7 — coarser than nano-scale score gaps,
// so every key collapses to the same value and a full heap churns on
// "ties", keeping the last K inserts instead of the best K. With the
// epoch rebase the tick offset is near zero and the key resolves the
// gaps exactly.
func TestTopKLargeTickResolution(t *testing.T) {
	const lambda = 0.002
	const bigTick = uint64(1) << 40 // λ·t ≈ 2.2e9
	const k = 8
	decay := core.NewDecayTable(lambda)
	h := newTopK(k, lambda)
	// The epoch sweep preceding the inserts: eps ≤ 0 evicts nothing but
	// MUST still rebase — that is the bug this test pins.
	h.decayEvict(decay, bigTick, 0)
	if h.base != bigTick {
		t.Fatalf("decayEvict(eps=0) did not rebase: base %d, want %d", h.base, bigTick)
	}
	// Best scores first, all at one tick, gapped by 1e-9 — far below
	// the unanchored key's ulp. Without the rebase each later (worse)
	// candidate's collapsed key equals the root's and replaces it.
	for j := 0; j < 64; j++ {
		h.add(bigTick+1, 2-float64(j)*1e-9)
	}
	got := h.appendTo(decay, bigTick+1, nil)
	if len(got) != k {
		t.Fatalf("heap holds %d entries, want %d", len(got), k)
	}
	for i, o := range got {
		if want := 2 - float64(i)*1e-9; o.Score != want {
			t.Fatalf("entry %d score %.12g, want %.12g — large-tick keys lost score resolution", i, o.Score, want)
		}
	}
	// Survive another sweep at the next epoch: the rebase recomputes
	// keys from raw (tick, score) pairs, so the order is unchanged and
	// nothing above eps is lost.
	h.decayEvict(decay, bigTick+513, 1e-6)
	again := h.appendTo(decay, bigTick+513, nil)
	if len(again) != k {
		t.Fatalf("post-sweep heap holds %d entries, want %d", len(again), k)
	}
	for i, o := range again {
		if want := (2 - float64(i)*1e-9) * decay.At(512); o.Score != want {
			t.Fatalf("post-sweep entry %d score %.12g, want %.12g", i, o.Score, want)
		}
	}
}

// TestTopKDecayEvict checks the epoch-eviction boundary arithmetic
// directly: an entry sits exactly at eps stays, just below goes.
func TestTopKDecayEvict(t *testing.T) {
	lambda := 0.01
	decay := core.NewDecayTable(lambda)
	h := newTopK(4, lambda)
	h.add(1, 0.5)
	h.add(100, 0.5)
	// At tick 1000 the first entry decays by 2^(-0.01*999), the second
	// by 2^(-0.01*900).
	first := 0.5 * decay.At(999)
	h.decayEvict(decay, 1000, first) // >= eps keeps: both entries survive
	if got := h.appendTo(decay, 1000, nil); len(got) != 2 {
		t.Fatalf("eps at the boundary evicted a surviving entry: %v", got)
	}
	h.decayEvict(decay, 1000, math.Nextafter(first, 1))
	got := h.appendTo(decay, 1000, nil)
	if len(got) != 1 || got[0].Tick != 100 {
		t.Fatalf("eviction kept the wrong entries: %v", got)
	}
}
