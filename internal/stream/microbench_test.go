package stream

import (
	"testing"

	"spot/internal/bench"
)

// microbenchDetector builds a d=20 detector with populated tables and
// sweeps pushed beyond the horizon, so the benchmarks and alloc gates
// time the steady-state ingestion path alone. With scoring on, the
// warm-up ingests run scored so the attribution buffers and score
// scratch reach their watermarks too.
func microbenchDetector(tb testing.TB, shards int, noCoalesce, scoring bool) (*Detector, []float64, []bool, []float64) {
	const d, batch = 20, 512
	cfg := DefaultConfig(d)
	cfg.Shards = shards
	cfg.EpochTicks = 1 << 40 // no sweep inside the measured window
	cfg.NoCoalesce = noCoalesce
	cfg.Scoring = scoring
	if scoring {
		cfg.TopK = 16
	}
	det, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	gen := bench.NewGenerator(bench.DefaultGenConfig(d))
	flat := make([]float64, batch*d)
	labels := make([]bool, batch)
	out := make([]bool, batch)
	var scores []float64
	if scoring {
		scores = make([]float64, batch)
	}
	gen.Fill(flat, labels, batch)
	for i := 0; i < 4; i++ { // populate every cell the batch touches
		if scoring {
			det.ProcessBatchScored(flat, out, scores)
		} else {
			det.ProcessBatch(flat, out)
		}
	}
	return det, flat, out, scores
}

// BenchmarkProcessPoint measures the pointwise hot path: one point
// through every SST subspace, reported with allocations (steady state
// must be zero — TestProcessZeroAllocs is the hard gate).
func BenchmarkProcessPoint(b *testing.B) {
	det, flat, _, _ := microbenchDetector(b, 1, false, false)
	defer det.Close()
	d := 20
	points := len(flat) / d
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Process(flat[(i%points)*d : (i%points+1)*d])
	}
}

// BenchmarkProcessBatch measures the batch hot path (subspace-major
// tiling, discretization plane, word-wise verdict merge) at 1 and 4
// shards with cell coalescing on (the default), plus the shards=1 grid
// point with Config.NoCoalesce forcing the fused per-point path — the
// coalescing win on a clustered stream is the ratio of the two — and a
// scored shards=1 point isolating the ensemble-scoring overhead.
func BenchmarkProcessBatch(b *testing.B) {
	for _, v := range []struct {
		name       string
		shards     int
		noCoalesce bool
		scoring    bool
	}{
		{"shards=1", 1, false, false},
		{"shards=4", 4, false, false},
		{"shards=1/nocoalesce", 1, true, false},
		{"shards=1/scored", 1, false, true},
	} {
		b.Run(v.name, func(b *testing.B) {
			det, flat, out, scores := microbenchDetector(b, v.shards, v.noCoalesce, v.scoring)
			defer det.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if v.scoring {
					det.ProcessBatchScored(flat, out, scores)
				} else {
					det.ProcessBatch(flat, out)
				}
			}
			b.StopTimer()
			pts := float64(b.N * len(out))
			b.ReportMetric(pts/b.Elapsed().Seconds(), "points/sec")
		})
	}
}

// TestProcessBatchZeroAllocs pins the steady-state contract of the
// batch path in both flavors: re-ingesting a batch whose cells all
// exist performs zero heap allocations — scratch planes, verdict
// bitsets, the grouping scratch and table probes all reuse their
// buffers. make microbench runs this gate alongside the benchmarks.
func TestProcessBatchZeroAllocs(t *testing.T) {
	for _, v := range []struct {
		name       string
		noCoalesce bool
	}{{"coalesce", false}, {"nocoalesce", true}} {
		t.Run(v.name, func(t *testing.T) {
			det, flat, out, _ := microbenchDetector(t, 2, v.noCoalesce, false)
			defer det.Close()
			allocs := testing.AllocsPerRun(20, func() {
				det.ProcessBatch(flat, out)
			})
			if allocs != 0 {
				t.Fatalf("steady-state ProcessBatch (%s) allocates %.1f times per batch, want 0", v.name, allocs)
			}
		})
	}
}

// TestProcessBatchScoredZeroAllocs extends the zero-alloc gate to the
// scoring layer: once the attribution buffers have grown to the
// stream's flag-rate watermark, a scored batch — verdicts, per-point
// ensemble scores, attribution merge-sort, top-K maintenance and the
// Explain/TopK queries against it — allocates nothing.
func TestProcessBatchScoredZeroAllocs(t *testing.T) {
	det, flat, out, scores := microbenchDetector(t, 2, false, true)
	defer det.Close()
	attrs := make([]Attribution, 0, 256)
	offs := make([]Offender, 0, 16)
	allocs := testing.AllocsPerRun(20, func() {
		det.ProcessBatchScored(flat, out, scores)
		for i := range out {
			if out[i] {
				attrs = det.Explain(i, attrs[:0])
			}
		}
		offs = det.TopK(offs[:0])
	})
	if allocs != 0 {
		t.Fatalf("steady-state ProcessBatchScored allocates %.1f times per batch, want 0", allocs)
	}
}

// TestProcessScoredZeroAllocs is the pointwise equivalent: scored
// single-point ingestion stays allocation-free in steady state.
func TestProcessScoredZeroAllocs(t *testing.T) {
	det, flat, _, _ := microbenchDetector(t, 1, false, true)
	defer det.Close()
	const d = 20
	points := len(flat) / d
	i := 0
	allocs := testing.AllocsPerRun(512, func() {
		det.ProcessScored(flat[(i%points)*d : (i%points+1)*d])
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state ProcessScored allocates %.3f times per point, want 0", allocs)
	}
}
