package stream

import (
	"testing"

	"spot/internal/bench"
)

// microbenchDetector builds a d=20 detector with populated tables and
// sweeps pushed beyond the horizon, so the benchmarks and alloc gates
// time the steady-state ingestion path alone.
func microbenchDetector(tb testing.TB, shards int, noCoalesce bool) (*Detector, []float64, []bool) {
	const d, batch = 20, 512
	cfg := DefaultConfig(d)
	cfg.Shards = shards
	cfg.EpochTicks = 1 << 40 // no sweep inside the measured window
	cfg.NoCoalesce = noCoalesce
	det, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	gen := bench.NewGenerator(bench.DefaultGenConfig(d))
	flat := make([]float64, batch*d)
	labels := make([]bool, batch)
	out := make([]bool, batch)
	gen.Fill(flat, labels, batch)
	for i := 0; i < 4; i++ { // populate every cell the batch touches
		det.ProcessBatch(flat, out)
	}
	return det, flat, out
}

// BenchmarkProcessPoint measures the pointwise hot path: one point
// through every SST subspace, reported with allocations (steady state
// must be zero — TestProcessZeroAllocs is the hard gate).
func BenchmarkProcessPoint(b *testing.B) {
	det, flat, _ := microbenchDetector(b, 1, false)
	defer det.Close()
	d := 20
	points := len(flat) / d
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Process(flat[(i%points)*d : (i%points+1)*d])
	}
}

// BenchmarkProcessBatch measures the batch hot path (subspace-major
// tiling, discretization plane, word-wise verdict merge) at 1 and 4
// shards with cell coalescing on (the default), plus the shards=1 grid
// point with Config.NoCoalesce forcing the fused per-point path — the
// coalescing win on a clustered stream is the ratio of the two.
func BenchmarkProcessBatch(b *testing.B) {
	for _, v := range []struct {
		name       string
		shards     int
		noCoalesce bool
	}{
		{"shards=1", 1, false},
		{"shards=4", 4, false},
		{"shards=1/nocoalesce", 1, true},
	} {
		b.Run(v.name, func(b *testing.B) {
			det, flat, out := microbenchDetector(b, v.shards, v.noCoalesce)
			defer det.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det.ProcessBatch(flat, out)
			}
			b.StopTimer()
			pts := float64(b.N * len(out))
			b.ReportMetric(pts/b.Elapsed().Seconds(), "points/sec")
		})
	}
}

// TestProcessBatchZeroAllocs pins the steady-state contract of the
// batch path in both flavors: re-ingesting a batch whose cells all
// exist performs zero heap allocations — scratch planes, verdict
// bitsets, the grouping scratch and table probes all reuse their
// buffers. make microbench runs this gate alongside the benchmarks.
func TestProcessBatchZeroAllocs(t *testing.T) {
	for _, v := range []struct {
		name       string
		noCoalesce bool
	}{{"coalesce", false}, {"nocoalesce", true}} {
		t.Run(v.name, func(t *testing.T) {
			det, flat, out := microbenchDetector(t, 2, v.noCoalesce)
			defer det.Close()
			allocs := testing.AllocsPerRun(20, func() {
				det.ProcessBatch(flat, out)
			})
			if allocs != 0 {
				t.Fatalf("steady-state ProcessBatch (%s) allocates %.1f times per batch, want 0", v.name, allocs)
			}
		})
	}
}
