package stream

import (
	"fmt"
	"testing"

	"spot/internal/bench"
)

// BenchmarkDetector measures streaming throughput (points/sec) of the
// sharded detector across dimensionalities and shard counts. Batches
// are pre-generated so the benchmark times the detector, not the
// generator.
func BenchmarkDetector(b *testing.B) {
	const batch = 512
	for _, d := range []int{20, 50, 100} {
		for _, shards := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("d=%d/shards=%d", d, shards), func(b *testing.B) {
				cfg := DefaultConfig(d)
				cfg.MaxSubspaceDim = bench.MaxDimFor(d)
				cfg.Shards = shards
				det, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer det.Close()
				gen := bench.NewGenerator(bench.DefaultGenConfig(d))
				const pool = 4
				flats := make([][]float64, pool)
				labels := make([]bool, batch)
				out := make([]bool, batch)
				for i := range flats {
					flats[i] = make([]float64, batch*d)
					gen.Fill(flats[i], labels, batch)
				}
				// Populate the cell tables before timing.
				for i := range flats {
					det.ProcessBatch(flats[i], out)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					det.ProcessBatch(flats[i%pool], out)
				}
				b.StopTimer()
				pts := float64(b.N * batch)
				b.ReportMetric(pts/b.Elapsed().Seconds(), "points/sec")
			})
		}
	}
}
