package stream

import (
	"testing"

	"spot/internal/bench"
	"spot/internal/sst"
)

// supervisedTestConfig mirrors evolveTestConfig but drives the
// supervised MOGA group instead of the unsupervised TopSparse: the same
// 6-D two-cluster stream with "mix" outliers that borrow dimension 4
// from the other cluster, invisible to the arity-1 fixed group. Here
// the evolver gets no unsupervised signal at all — it only learns from
// the examples the test feeds back via MarkExample.
func supervisedTestConfig(t *testing.T, shards int) (Config, bench.GenConfig) {
	t.Helper()
	ev, err := sst.NewMOGA(sst.MOGAConfig{
		MinArity:    2,
		MaxArity:    2,
		PopSize:     16,
		Generations: 4,
		TopS:        2,
		SparseRatio: 0.1,
		MinCoverage: 0.6,
		MinSparsity: 0.5,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(6)
	cfg.MaxSubspaceDim = 1
	cfg.Shards = shards
	cfg.Lambda = 0.02
	cfg.Warmup = 30
	cfg.EpochTicks = 400
	cfg.EvictEpsilon = 1e-4
	cfg.RDPopulatedThreshold = 0.2
	cfg.Evolver = ev

	gcfg := bench.GenConfig{
		Dims:        6,
		Centers:     [][]float64{{0.19, 0.19, 0.19, 0.19, 0.19, 0.19}, {0.81, 0.81, 0.81, 0.81, 0.81, 0.81}},
		Sigma:       0.005,
		OutlierRate: 0.02,
		Mode:        bench.OutlierMix,
		MixDim:      4,
		Seed:        11,
	}
	return cfg, gcfg
}

// TestSupervisedEvolutionLearnsFromExamples is the supervised
// counterpart of TestEvolutionPromotesAndDetects: mix outliers are
// invisible to the arity-1 fixed group, and the MOGA evolver — fed the
// planted outliers back as confirmed examples — must promote subspaces
// pairing the mixed dimension and catch subsequent outliers.
func TestSupervisedEvolutionLearnsFromExamples(t *testing.T) {
	cfg, gcfg := supervisedTestConfig(t, 2)
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	gen := bench.NewGenerator(gcfg)
	buf := make([]float64, cfg.Dims)

	// Phase A — before the first epoch the template is fixed-only; mark
	// every planted outlier as a confirmed example (the analyst's
	// feedback loop).
	marked := 0
	for i := 0; i < int(cfg.EpochTicks); i++ {
		isOut := gen.Next(buf)
		det.Process(buf)
		if isOut {
			det.MarkExample(buf)
			marked++
		}
	}
	if marked < 3 {
		t.Fatalf("only %d examples marked before the first sweep — stream misconfigured", marked)
	}
	if got := det.Stats().Examples; got != marked {
		t.Fatalf("Stats().Examples = %d, want %d", got, marked)
	}
	if got := det.Stats().EvolvedActive; got < 1 {
		t.Fatalf("EvolvedActive = %d after first sweep, want ≥ 1 supervised promotion", got)
	}
	for _, id := range det.Template().EvolvedIDs(nil) {
		dims := det.Template().Dims(int(id))
		hasMix := false
		for _, dim := range dims {
			if dim == uint16(gcfg.MixDim) {
				hasMix = true
			}
		}
		if len(dims) != 2 || !hasMix {
			t.Fatalf("promoted subspace %d = %v, want a pair containing dimension %d", id, dims, gcfg.MixDim)
		}
	}

	// Phase B — keep the feedback loop running; after warmup and the
	// second sweep, mix outliers must be caught.
	var planted, caught int
	for tick := int(cfg.EpochTicks); tick < 3000; tick++ {
		isOut := gen.Next(buf)
		flag := det.Process(buf)
		if isOut {
			det.MarkExample(buf)
		}
		if tick < 2*int(cfg.EpochTicks)+100 {
			continue // promoted subspaces still warming up / unreferenced
		}
		if isOut {
			planted++
			if flag {
				caught++
			}
		}
	}
	if planted < 10 {
		t.Fatalf("only %d mix outliers planted in phase B — stream misconfigured", planted)
	}
	if recall := float64(caught) / float64(planted); recall < 0.9 {
		t.Errorf("supervised recall = %.3f (%d/%d), want ≥ 0.9", recall, caught, planted)
	}
	t.Logf("planted=%d caught=%d evolved=%d examples=%d",
		planted, caught, det.Stats().EvolvedActive, det.Stats().Examples)
}

// TestMarkExampleRetention pins the bounded-retention contract: the
// example set caps at MaxExamples (oldest dropped first) and the epoch
// sweep expires examples older than ExampleTTL.
func TestMarkExampleRetention(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.MaxSubspaceDim = 1
	cfg.EpochTicks = 100
	cfg.MaxExamples = 4
	cfg.ExampleTTL = 150
	ev, err := sst.NewMOGA(sst.MOGAConfig{TopS: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Evolver = ev
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()

	point := []float64{0.5, 0.5, 0.5, 0.5}
	for i := 0; i < 6; i++ {
		det.MarkExample(point)
	}
	if got := det.ExampleCount(); got != cfg.MaxExamples {
		t.Fatalf("ExampleCount = %d after 6 marks, want cap %d", got, cfg.MaxExamples)
	}

	// Advance past the TTL: the epoch sweep at tick 200 must expire the
	// tick-0 examples (age 200 > 150).
	for i := 0; i < 200; i++ {
		det.Process(point)
	}
	if got := det.ExampleCount(); got != 0 {
		t.Fatalf("ExampleCount = %d after TTL expiry, want 0", got)
	}

	// Fresh examples survive the next sweep (age below TTL).
	det.MarkExample(point)
	for i := 0; i < 100; i++ {
		det.Process(point)
	}
	if got := det.ExampleCount(); got != 1 {
		t.Fatalf("ExampleCount = %d, want 1 fresh example retained", got)
	}
}
