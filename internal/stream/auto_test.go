package stream

import (
	"math/rand"
	"testing"
)

// autoTestConfig is the shared fixture of the auto-thresholding tests:
// a uniform unit-box stream (every point an inlier) over a template
// small enough that a few epochs produce healthy measure censuses.
func autoTestConfig(risk float64) Config {
	cfg := DefaultConfig(6)
	cfg.MaxSubspaceDim = 2
	cfg.Lambda = 0.01
	cfg.Warmup = 50
	cfg.EpochTicks = 512
	cfg.AutoThreshold = AutoThreshold{Risk: risk}
	return cfg
}

func uniformStream(seed int64, d int) func(buf []float64) {
	rng := rand.New(rand.NewSource(seed))
	return func(buf []float64) {
		for i := range buf {
			buf[i] = rng.Float64()
		}
	}
}

func TestAutoThresholdValidation(t *testing.T) {
	base := func() Config { return autoTestConfig(0.01) }
	bad := []func(*Config){
		func(c *Config) { c.AutoThreshold.Risk = -0.01 },                 // negative risk
		func(c *Config) { c.AutoThreshold.Risk = 0.5 },                   // risk at bulk boundary
		func(c *Config) { c.AutoThreshold.Risk = 0.7 },                   // risk above bulk
		func(c *Config) { c.AutoThreshold = AutoThreshold{Level: 0.1} },  // level without risk
		func(c *Config) { c.AutoThreshold.Level = 0.5 },                  // level at bulk boundary
		func(c *Config) { c.AutoThreshold.Level = -0.1 },                 // negative level
		func(c *Config) { c.EpochTicks = 0; c.RDPopulatedThreshold = 0 }, // no epoch engine to calibrate in
	}
	for i, mutate := range bad {
		cfg := base()
		mutate(&cfg)
		if det, err := New(cfg); err == nil {
			det.Close()
			t.Errorf("bad auto config %d accepted, want error", i)
		}
	}
	good := base()
	good.AutoThreshold.Level = 0.2
	det, err := New(good)
	if err != nil {
		t.Fatalf("valid auto config rejected: %v", err)
	}
	det.Close()
}

// TestAutoThresholdCalibrates: after a few epochs of a warm uniform
// stream, the sweep census has fitted calibrators and Stats exposes the
// calibration counters.
func TestAutoThresholdCalibrates(t *testing.T) {
	cfg := autoTestConfig(0.01)
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	next := uniformStream(11, cfg.Dims)
	buf := make([]float64, cfg.Dims)
	for i := 0; i < 4*int(cfg.EpochTicks); i++ {
		next(buf)
		det.Process(buf)
	}
	st := det.Stats()
	if st.Calibrations == 0 {
		t.Error("no calibrations after 4 epochs of a warm stream")
	}
	if st.CalibrationSamples == 0 {
		t.Error("calibration consumed no census samples")
	}
	if st.CalibratedThresholds == 0 {
		t.Error("no calibrator holds a fitted threshold")
	}
	if st.AutoEffTrials < 1 || st.AutoEffTrials > 4096 {
		t.Errorf("AutoEffTrials %g outside controller bounds [1, 4096]", st.AutoEffTrials)
	}
}

// TestAutoThresholdOffStatsZero: with auto-thresholding disabled the
// calibration counters stay zero — the observability fields can't lie
// about a mode that isn't running.
func TestAutoThresholdOffStatsZero(t *testing.T) {
	cfg := autoTestConfig(0.01)
	cfg.AutoThreshold = AutoThreshold{}
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	next := uniformStream(11, cfg.Dims)
	buf := make([]float64, cfg.Dims)
	for i := 0; i < 2*int(cfg.EpochTicks); i++ {
		next(buf)
		det.Process(buf)
	}
	st := det.Stats()
	if st.Calibrations != 0 || st.CalibrationSamples != 0 || st.CalibratedThresholds != 0 || st.AutoEffTrials != 0 {
		t.Errorf("auto-off stats not zero: %+v", st)
	}
}

// TestAutoThresholdFlaggedRateBand is the headline property of the
// feature: on a pure-inlier uniform stream, asking for per-point risk q
// yields a steady-state flagged rate within a small factor of q —
// without any hand-tuned thresholds. The stream and detector are fully
// deterministic, so this is a regression pin, not a statistical gamble.
func TestAutoThresholdFlaggedRateBand(t *testing.T) {
	const risk = 0.01
	cfg := autoTestConfig(risk)
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	next := uniformStream(17, cfg.Dims)
	buf := make([]float64, cfg.Dims)
	// Warm phase: summaries form, the sample windows flush their
	// warm-up contamination, and the controller converges its
	// effective-trials divisor.
	for i := 0; i < 40*int(cfg.EpochTicks); i++ {
		next(buf)
		det.Process(buf)
	}
	// Measure phase.
	const measure = 30720
	flags := 0
	for i := 0; i < measure; i++ {
		next(buf)
		if det.Process(buf) {
			flags++
		}
	}
	rate := float64(flags) / measure
	if rate < risk/3 || rate > risk*3 {
		t.Errorf("steady flagged rate %.4f outside [q/3, 3q] for q=%g (%d flags / %d points)",
			rate, risk, flags, measure)
	}
}

// TestAutoThresholdRefitsUnderDrift: an abrupt distribution shift (the
// uniform box collapses onto one half of every axis) must not wedge the
// calibrators — refits keep landing after the shift and the flagged
// rate over the post-shift steady window stays within the band.
func TestAutoThresholdRefitsUnderDrift(t *testing.T) {
	const risk = 0.01
	cfg := autoTestConfig(risk)
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	rng := rand.New(rand.NewSource(23))
	buf := make([]float64, cfg.Dims)
	for i := 0; i < 40*int(cfg.EpochTicks); i++ {
		for j := range buf {
			buf[j] = rng.Float64()
		}
		det.Process(buf)
	}
	calsBefore := det.Stats().Calibrations
	// Shift: all mass moves to [0, 0.5) on every axis. Let the
	// detector re-learn — the sample windows turn over in ~8 epochs
	// and the controller re-converges — then measure.
	for i := 0; i < 40*int(cfg.EpochTicks); i++ {
		for j := range buf {
			buf[j] = rng.Float64() * 0.5
		}
		det.Process(buf)
	}
	if calsAfter := det.Stats().Calibrations; calsAfter <= calsBefore {
		t.Errorf("no calibrations after drift: %d before, %d after", calsBefore, calsAfter)
	}
	const measure = 30720
	flags := 0
	for i := 0; i < measure; i++ {
		for j := range buf {
			buf[j] = rng.Float64() * 0.5
		}
		if det.Process(buf) {
			flags++
		}
	}
	rate := float64(flags) / measure
	if rate < risk/3 || rate > risk*3 {
		t.Errorf("post-drift flagged rate %.4f outside [q/3, 3q] for q=%g (%d flags / %d points)",
			rate, risk, flags, measure)
	}
}

// TestAutoThresholdShardAndBatchInvariance extends the engine's core
// invariant to auto mode: calibrated thresholds are fitted from a
// merged, sorted census on the dispatcher, so verdicts are identical
// across shard counts, batch vs pointwise ingestion, and both
// coalescing modes.
func TestAutoThresholdShardAndBatchInvariance(t *testing.T) {
	const n = 3 * 512
	d := 5
	flat := make([]float64, n*d)
	uniformStream(31, d)(flat)

	runPointwise := func(shards int) []bool {
		cfg := autoTestConfig(0.01)
		cfg.Dims = d
		cfg.Shards = shards
		det, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer det.Close()
		out := make([]bool, n)
		for i := 0; i < n; i++ {
			out[i] = det.Process(flat[i*d : (i+1)*d])
		}
		return out
	}
	runBatch := func(shards int, noCoalesce bool) []bool {
		cfg := autoTestConfig(0.01)
		cfg.Dims = d
		cfg.Shards = shards
		cfg.NoCoalesce = noCoalesce
		det, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer det.Close()
		out := make([]bool, n)
		for done := 0; done < n; {
			chunk := 300
			if done+chunk > n {
				chunk = n - done
			}
			det.ProcessBatch(flat[done*d:(done+chunk)*d], out[done:done+chunk])
			done += chunk
		}
		return out
	}

	ref := runPointwise(1)
	variants := map[string][]bool{
		"pointwise/shards=3":         runPointwise(3),
		"batch/shards=1":             runBatch(1, false),
		"batch/shards=4":             runBatch(4, false),
		"batch/shards=4/no-coalesce": runBatch(4, true),
	}
	for name, got := range variants {
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s: verdict %d = %v, pointwise/shards=1 = %v", name, i, got[i], ref[i])
			}
		}
	}
}
