package stream

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"spot/internal/core"
)

// closedConfig builds a small scoring detector so every entry point —
// including the scored variants — is exercisable.
func closedConfig(shards int) Config {
	cfg := DefaultConfig(4)
	cfg.Shards = shards
	cfg.Scoring = true
	cfg.TopK = 4
	cfg.Warmup = 0
	return cfg
}

// TestCloseIdempotent pins the double-Close contract: the second and
// every later Close is a no-op, with and without started workers.
func TestCloseIdempotent(t *testing.T) {
	for _, workers := range []bool{false, true} {
		d, err := New(closedConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		if workers {
			flat := make([]float64, 8*4)
			out := make([]bool, 8)
			d.ProcessBatch(flat, out)
		}
		if d.Closed() {
			t.Fatalf("workers=%v: Closed() true before Close", workers)
		}
		d.Close()
		if !d.Closed() {
			t.Fatalf("workers=%v: Closed() false after Close", workers)
		}
		d.Close() // must not panic (double close of worker channels)
		d.Close()
	}
}

// TestClosedEntryPoints drives every ingestion and snapshot entry
// point against a closed detector: the Err variants must return typed
// ErrClosed, the panicking wrappers must panic with it — and in
// either case before any state is touched.
func TestClosedEntryPoints(t *testing.T) {
	point := []float64{0.1, 0.2, 0.3, 0.4}
	flat := append(append([]float64{}, point...), point...)
	out := make([]bool, 2)
	scores := make([]float64, 2)

	errCases := []struct {
		name string
		call func(d *Detector) error
	}{
		{"ProcessErr", func(d *Detector) error {
			_, err := d.ProcessErr(point)
			return err
		}},
		{"ProcessBatchErr", func(d *Detector) error {
			_, err := d.ProcessBatchErr(flat, out)
			return err
		}},
		{"ProcessBatchScoredErr", func(d *Detector) error {
			_, err := d.ProcessBatchScoredErr(flat, out, scores)
			return err
		}},
		{"Snapshot", func(d *Detector) error {
			return d.Snapshot(io.Discard)
		}},
	}
	panicCases := []struct {
		name string
		call func(d *Detector)
	}{
		{"Process", func(d *Detector) { d.Process(point) }},
		{"ProcessBatch", func(d *Detector) { d.ProcessBatch(flat, out) }},
		{"ProcessScored", func(d *Detector) { d.ProcessScored(point) }},
		{"ProcessBatchScored", func(d *Detector) { d.ProcessBatchScored(flat, out, scores) }},
	}

	for _, shards := range []int{1, 2} {
		d, err := New(closedConfig(shards))
		if err != nil {
			t.Fatal(err)
		}
		// Ingest a little so the closed detector holds real state the
		// rejected calls must not have mutated.
		d.ProcessBatch(flat, out)
		before := d.Stats()
		d.Close()

		for _, tc := range errCases {
			if err := tc.call(d); !errors.Is(err, ErrClosed) {
				t.Errorf("shards=%d: %s on closed detector: got %v, want ErrClosed", shards, tc.name, err)
			}
		}
		for _, tc := range panicCases {
			func() {
				defer func() {
					r := recover()
					err, ok := r.(error)
					if !ok || !errors.Is(err, ErrClosed) {
						t.Errorf("shards=%d: %s on closed detector: panic %v, want ErrClosed", shards, tc.name, r)
					}
				}()
				tc.call(d)
			}()
		}
		if after := d.Stats(); after != before {
			t.Errorf("shards=%d: rejected calls mutated state: before %+v, after %+v", shards, before, after)
		}
	}
}

// TestClosedScoringDisabledOrder pins the error precedence on a
// closed non-scoring detector: ErrClosed wins over ErrScoringDisabled
// in both the panicking and Err-returning scored variants.
func TestClosedScoringDisabledOrder(t *testing.T) {
	cfg := DefaultConfig(4)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	point := []float64{0.1, 0.2, 0.3, 0.4}
	func() {
		defer func() {
			err, ok := recover().(error)
			if !ok || !errors.Is(err, ErrClosed) {
				t.Errorf("ProcessScored on closed non-scoring detector: want ErrClosed, got %v", err)
			}
		}()
		d.ProcessScored(point)
	}()
	if _, err := d.ProcessBatchScoredErr(point, make([]bool, 1), make([]float64, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("ProcessBatchScoredErr on closed non-scoring detector: want ErrClosed, got %v", err)
	}
}

// TestSharedDecayTable pins the Config.Decay injection contract: a
// shared table with matching Lambda yields verdicts bit-identical to a
// private-table detector, and a mismatched table is rejected at New.
func TestSharedDecayTable(t *testing.T) {
	cfg := closedConfig(1)
	shared := core.NewDecayTable(cfg.Lambda)

	cfgShared := cfg
	cfgShared.Decay = shared
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfgShared)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	rng := uint64(1)
	next := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float64(rng%1000) / 1000
	}
	const n, dims = 512, 4
	flat := make([]float64, n*dims)
	for i := range flat {
		flat[i] = next()
	}
	outA := make([]bool, n)
	outB := make([]bool, n)
	a.ProcessBatch(flat, outA)
	b.ProcessBatch(flat, outB)
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatalf("verdict %d diverges between private and shared decay table", i)
		}
	}

	// Snapshot/restore with a shared-table config continues identically.
	var buf bytes.Buffer
	if err := b.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	c, err := Restore(&buf, cfgShared)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a.ProcessBatch(flat, outA)
	c.ProcessBatch(flat, outB)
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatalf("post-restore verdict %d diverges with shared decay table", i)
		}
	}

	bad := cfg
	bad.Decay = core.NewDecayTable(cfg.Lambda * 2)
	if _, err := New(bad); err == nil {
		t.Fatal("New accepted a decay table built for a different Lambda")
	}
}
