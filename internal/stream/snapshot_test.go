package stream

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"testing"

	"spot/internal/bench"
	"spot/internal/snapshot"
	"spot/internal/sst"
)

// snapTrial is one randomized checkpoint/restore scenario: a data
// stream, a batch plan, a kill point at a batch boundary, and the
// detector configuration knobs the restore must reproduce.
type snapTrial struct {
	scenario   string
	d, n       int
	epoch      uint64
	supervised bool
	noCoalesce bool
	maxDim     int
	lambda     float64
	evSeed     int64
	flat       []float64
	labels     []bool
	batches    []int
	killAfter  int // snapshot after this many batches
}

func makeSnapTrial(t *testing.T, trial int, meta *rand.Rand) snapTrial {
	d := 5 + meta.Intn(4)
	epoch := uint64(64 + meta.Intn(300))
	n := 1000 + meta.Intn(600)
	mode := trial % 3
	gcfg := bench.DefaultGenConfig(d)
	gcfg.Seed = meta.Int63()
	switch mode {
	case 1:
		centerA := make([]float64, d)
		centerB := make([]float64, d)
		for i := range centerA {
			centerA[i] = 0.19
			centerB[i] = 0.81
		}
		gcfg.Centers = [][]float64{centerA, centerB}
		gcfg.Sigma = 0.005
		gcfg.OutlierRate = 0.03
		gcfg.Mode = bench.OutlierMix
		gcfg.MixDim = meta.Intn(d)
	case 2:
		gcfg.DriftPeriod = 300 + meta.Intn(300)
	}
	tr := snapTrial{
		d: d, n: n, epoch: epoch,
		supervised: trial%2 == 0,
		noCoalesce: trial%4 >= 2,
		maxDim:     1 + meta.Intn(2),
		lambda:     []float64{0.005, 0.01, 0.02}[meta.Intn(3)],
		evSeed:     meta.Int63(),
	}
	tr.flat = make([]float64, n*d)
	tr.labels = make([]bool, n)
	bench.NewGenerator(gcfg).Fill(tr.flat, tr.labels, n)
	for rem := n; rem > 0; {
		b := 1 + meta.Intn(250)
		if b > rem {
			b = rem
		}
		tr.batches = append(tr.batches, b)
		rem -= b
	}
	// Kill somewhere in the middle of the run, never at the very end,
	// so both halves exercise real work.
	tr.killAfter = 1 + meta.Intn(len(tr.batches)-1)
	tr.scenario = fmt.Sprintf("trial=%d d=%d epoch=%d n=%d mode=%d supervised=%v noCoalesce=%v maxDim=%d lambda=%g evSeed=%d batches=%d killAfter=%d",
		trial, d, epoch, n, mode, tr.supervised, tr.noCoalesce, tr.maxDim, tr.lambda, tr.evSeed, len(tr.batches), tr.killAfter)
	return tr
}

func (tr *snapTrial) evolver(t *testing.T) sst.Evolver {
	ts, err := sst.NewTopSparse(sst.TopSparseConfig{
		Arity: 2, TopS: 2, Explore: 32, SparseRatio: 0.1, MinScore: 0.05, Seed: tr.evSeed,
	})
	if err != nil {
		t.Fatalf("%s: %v", tr.scenario, err)
	}
	if !tr.supervised {
		return ts
	}
	mg, err := sst.NewMOGA(sst.MOGAConfig{
		MinArity: 2, MaxArity: 2, PopSize: 8, Generations: 2, TopS: 2,
		SparseRatio: 0.1, MinCoverage: 0.6, MinSparsity: 0.4, Seed: tr.evSeed,
	})
	if err != nil {
		t.Fatalf("%s: %v", tr.scenario, err)
	}
	return sst.Multi{ts, mg}
}

func (tr *snapTrial) config(t *testing.T, shards int) Config {
	cfg := DefaultConfig(tr.d)
	cfg.MaxSubspaceDim = tr.maxDim
	cfg.Shards = shards
	cfg.Lambda = tr.lambda
	cfg.Warmup = 30
	cfg.EpochTicks = tr.epoch
	cfg.EvictEpsilon = 1e-4
	cfg.RDPopulatedThreshold = 0.2
	cfg.NoCoalesce = tr.noCoalesce
	cfg.Evolver = tr.evolver(t)
	return cfg
}

// feed runs batches [from, to) of the trial's plan through det,
// writing verdicts into place and replaying the supervised feedback.
func (tr *snapTrial) feed(det *Detector, verdicts []bool, from, to int) {
	off := 0
	for i := 0; i < from; i++ {
		off += tr.batches[i]
	}
	for bi := from; bi < to; bi++ {
		b := tr.batches[bi]
		det.ProcessBatch(tr.flat[off*tr.d:(off+b)*tr.d], verdicts[off:off+b])
		if tr.supervised {
			for i := off; i < off+b; i++ {
				if tr.labels[i] {
					det.MarkExample(tr.flat[i*tr.d : (i+1)*tr.d])
				}
			}
		}
		off += b
	}
}

// oracle runs the trial uninterrupted and returns its verdicts, final
// stats and evolved-group dims.
func (tr *snapTrial) oracle(t *testing.T, shards int) ([]bool, Stats, []uint16) {
	det, err := New(tr.config(t, shards))
	if err != nil {
		t.Fatalf("%s: %v", tr.scenario, err)
	}
	defer det.Close()
	verdicts := make([]bool, tr.n)
	tr.feed(det, verdicts, 0, len(tr.batches))
	return verdicts, det.Stats(), evolvedDims(det)
}

func evolvedDims(det *Detector) []uint16 {
	var out []uint16
	for _, id := range det.Template().EvolvedIDs(nil) {
		out = append(out, det.Template().Dims(int(id))...)
	}
	return out
}

// sameEpochStats compares the deterministic Stats fields — everything
// except wall-clock times and the process-local checkpoint telemetry.
func sameEpochStats(a, b Stats) bool {
	return a.Tick == b.Tick &&
		a.BaseCells == b.BaseCells &&
		a.ProjectedCells == b.ProjectedCells &&
		a.Sweeps == b.Sweeps &&
		a.EvictedProjected == b.EvictedProjected &&
		a.EvictedBase == b.EvictedBase &&
		a.EvolvedActive == b.EvolvedActive &&
		a.Promoted == b.Promoted &&
		a.Demoted == b.Demoted &&
		a.EvolverPanics == b.EvolverPanics &&
		a.Examples == b.Examples &&
		a.CoalescedPoints == b.CoalescedPoints &&
		a.CoalescedDistinct == b.CoalescedDistinct &&
		a.CoalesceGroupings == b.CoalesceGroupings
}

// TestRestoreEquivalenceProperty is the crash-safety property at the
// heart of the checkpoint work: kill a detector at a random batch
// boundary mid-stream, restore it from the snapshot bytes, and the
// continuation must be verdict-bit-identical to the uninterrupted
// oracle — across shard counts, coalescing on and off, and with the
// supervised MOGA evolver (RNG state and all) in the loop on half the
// trials. Final epoch statistics and evolved subspaces must match too.
func TestRestoreEquivalenceProperty(t *testing.T) {
	meta := rand.New(rand.NewSource(77))
	const trials = 6
	for trial := 0; trial < trials; trial++ {
		tr := makeSnapTrial(t, trial, meta)
		for _, shards := range []int{1, 4} {
			oracleV, oracleS, oracleE := tr.oracle(t, shards)

			det, err := New(tr.config(t, shards))
			if err != nil {
				t.Fatalf("%s: %v", tr.scenario, err)
			}
			verdicts := make([]bool, tr.n)
			tr.feed(det, verdicts, 0, tr.killAfter)
			var buf bytes.Buffer
			if err := det.Snapshot(&buf); err != nil {
				t.Fatalf("%s: snapshot: %v", tr.scenario, err)
			}
			det.Close() // the "crash"

			restored, err := Restore(bytes.NewReader(buf.Bytes()), tr.config(t, shards))
			if err != nil {
				t.Fatalf("%s: restore: %v", tr.scenario, err)
			}
			tr.feed(restored, verdicts, tr.killAfter, len(tr.batches))
			for i := range oracleV {
				if verdicts[i] != oracleV[i] {
					t.Fatalf("%s shards=%d: verdict for point %d differs after restore", tr.scenario, shards, i)
				}
			}
			if s := restored.Stats(); !sameEpochStats(s, oracleS) {
				t.Fatalf("%s shards=%d: stats diverged after restore:\n restored %+v\n oracle   %+v", tr.scenario, shards, s, oracleS)
			}
			e := evolvedDims(restored)
			if fmt.Sprint(e) != fmt.Sprint(oracleE) {
				t.Fatalf("%s shards=%d: evolved groups diverged: %v vs %v", tr.scenario, shards, e, oracleE)
			}
			restored.Close()
		}
	}
}

// TestRestoreAcrossShardCounts checks the re-deal path: a snapshot
// taken at S shards restored into a detector with a different count
// must continue with the same verdicts the oracle at the new count
// produces — the same contract live shard-count invariance gives.
func TestRestoreAcrossShardCounts(t *testing.T) {
	meta := rand.New(rand.NewSource(101))
	for trial := 0; trial < 3; trial++ {
		tr := makeSnapTrial(t, trial, meta)
		for _, counts := range [][2]int{{1, 4}, {4, 1}, {4, 8}} {
			from, to := counts[0], counts[1]
			oracleV, oracleS, _ := tr.oracle(t, to)

			det, err := New(tr.config(t, from))
			if err != nil {
				t.Fatalf("%s: %v", tr.scenario, err)
			}
			verdicts := make([]bool, tr.n)
			tr.feed(det, verdicts, 0, tr.killAfter)
			var buf bytes.Buffer
			if err := det.Snapshot(&buf); err != nil {
				t.Fatalf("%s: snapshot: %v", tr.scenario, err)
			}
			det.Close()

			restored, err := Restore(bytes.NewReader(buf.Bytes()), tr.config(t, to))
			if err != nil {
				t.Fatalf("%s %d->%d shards: restore: %v", tr.scenario, from, to, err)
			}
			tr.feed(restored, verdicts, tr.killAfter, len(tr.batches))
			for i := range oracleV {
				if verdicts[i] != oracleV[i] {
					t.Fatalf("%s %d->%d shards: verdict for point %d differs after re-dealt restore", tr.scenario, from, to, i)
				}
			}
			if s := restored.Stats(); !sameEpochStats(s, oracleS) {
				t.Fatalf("%s %d->%d shards: stats diverged:\n restored %+v\n oracle   %+v", tr.scenario, from, to, s, oracleS)
			}
			restored.Close()
		}
	}
}

// TestSnapshotRestoreByteStable: snapshotting a restored detector must
// reproduce the original snapshot byte for byte — the state round trip
// is lossless and canonical (sorted base cells, dense cell order,
// process-local telemetry excluded).
func TestSnapshotRestoreByteStable(t *testing.T) {
	meta := rand.New(rand.NewSource(7))
	tr := makeSnapTrial(t, 0, meta)
	det, err := New(tr.config(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	tr.feed(det, make([]bool, tr.n), 0, tr.killAfter)
	var first bytes.Buffer
	if err := det.Snapshot(&first); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(bytes.NewReader(first.Bytes()), tr.config(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	var second bytes.Buffer
	if err := restored.Snapshot(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("re-snapshot differs: %d vs %d bytes", first.Len(), second.Len())
	}
	if s := det.Stats(); s.Checkpoints != 1 || s.CheckpointBytes != uint64(first.Len()) || s.CheckpointNanos == 0 {
		t.Fatalf("checkpoint telemetry not tracked: %+v", s)
	}
}

// TestRestoreConfigMismatch: every state-shaping parameter the restore
// config may not silently change must be rejected with
// ErrConfigMismatch.
func TestRestoreConfigMismatch(t *testing.T) {
	meta := rand.New(rand.NewSource(9))
	tr := makeSnapTrial(t, 0, meta)
	det, err := New(tr.config(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	tr.feed(det, make([]bool, tr.n), 0, tr.killAfter)
	var buf bytes.Buffer
	if err := det.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	mutations := map[string]func(*Config){
		"dims":        func(c *Config) { c.Dims++ },
		"phi":         func(c *Config) { c.Phi++ },
		"maxSubDim":   func(c *Config) { c.MaxSubspaceDim = 3 - c.MaxSubspaceDim%2 },
		"k":           func(c *Config) { c.K++ },
		"lambda":      func(c *Config) { c.Lambda *= 2 },
		"no evolver":  func(c *Config) { c.Evolver = nil },
		"non-marshal": func(c *Config) { c.Evolver = plainEvolver{} },
	}
	for name, mutate := range mutations {
		cfg := tr.config(t, 2)
		mutate(&cfg)
		if cfg.Dims != tr.d {
			// Dimension changes need a fresh grid; rebuild the base
			// config from scratch at the new dimensionality.
			cfg = DefaultConfig(tr.d + 1)
			cfg.MaxSubspaceDim = tr.maxDim
			cfg.Evolver = tr.evolver(t)
		}
		if _, err := Restore(bytes.NewReader(buf.Bytes()), cfg); !errors.Is(err, ErrConfigMismatch) {
			t.Errorf("%s: got %v, want ErrConfigMismatch", name, err)
		}
	}
}

// plainEvolver implements sst.Evolver but not sst.StateMarshaler, so a
// snapshot carrying evolver state cannot restore into it.
type plainEvolver struct{}

func (plainEvolver) Observe(sub uint32, outlier bool)                       {}
func (plainEvolver) Evolve(tmpl *sst.Template, st *sst.EpochStats) sst.Evolution { return sst.Evolution{} }

// TestRestoreFaultInjection sweeps injected faults over real snapshot
// bytes: truncation at every section boundary and mid-payload, bit
// flips from the magic through the payloads, and garbage tails. Every
// case must fail with a typed snapshot error — never a panic, never a
// silently wrong detector.
func TestRestoreFaultInjection(t *testing.T) {
	meta := rand.New(rand.NewSource(11))
	tr := makeSnapTrial(t, 0, meta)
	det, err := New(tr.config(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	tr.feed(det, make([]bool, tr.n), 0, tr.killAfter)
	var buf bytes.Buffer
	if err := det.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	typed := func(err error) bool {
		return errors.Is(err, snapshot.ErrBadMagic) ||
			errors.Is(err, snapshot.ErrVersion) ||
			errors.Is(err, snapshot.ErrChecksum) ||
			errors.Is(err, snapshot.ErrTruncated) ||
			errors.Is(err, snapshot.ErrCorrupt) ||
			errors.Is(err, snapshot.ErrInjected) ||
			errors.Is(err, ErrConfigMismatch)
	}

	// Truncation at a spread of offsets, including 0 and just short of
	// the end marker.
	for _, cut := range []int{0, 3, 8, 11, 12, 40, len(raw) / 3, len(raw) / 2, len(raw) - 5, len(raw) - 1} {
		if cut > len(raw) {
			continue
		}
		_, err := Restore(snapshot.NewTruncatedReader(bytes.NewReader(raw), int64(cut)), tr.config(t, 2))
		if err == nil || !typed(err) {
			t.Errorf("truncate@%d: got %v, want a typed snapshot error", cut, err)
		}
	}
	// Bit flips across the whole file, deterministic spread.
	for off := 0; off < len(raw); off += 1 + len(raw)/97 {
		mask := byte(1 << uint(off%8))
		_, err := Restore(snapshot.NewBitFlipReader(bytes.NewReader(raw), int64(off), mask), tr.config(t, 2))
		if err == nil || !typed(err) {
			t.Errorf("bitflip@%d: got %v, want a typed snapshot error", off, err)
		}
	}
	// Trailing garbage after a complete snapshot.
	tail := append(append([]byte(nil), raw...), 0xde, 0xad, 0xbe, 0xef)
	if _, err := Restore(bytes.NewReader(tail), tr.config(t, 2)); err != nil {
		// A reader that stops at the end marker tolerates a tail; a
		// typed error is equally acceptable. A panic is not (implicit).
		if !typed(err) {
			t.Errorf("trailing garbage: got untyped error %v", err)
		}
	}
}

// TestRestoreScoringEquivalence extends the crash-safety property to
// the scoring layer: killing and restoring a scoring detector
// mid-stream must reproduce the uninterrupted run's scores bit for
// bit and the exact top-K window, the round trip must be byte-stable,
// and the new meta fields must be config-matched. Corrupting the
// scored snapshot anywhere must still fail typed.
func TestRestoreScoringEquivalence(t *testing.T) {
	meta := rand.New(rand.NewSource(55))
	for trial := 0; trial < 3; trial++ {
		tr := makeSnapTrial(t, trial, meta)
		cfgOf := func(shards int) Config {
			cfg := tr.config(t, shards)
			cfg.Scoring = true
			cfg.TopK = 8
			return cfg
		}
		feedScored := func(det *Detector, verdicts []bool, scores []float64, from, to int) {
			off := 0
			for i := 0; i < from; i++ {
				off += tr.batches[i]
			}
			for bi := from; bi < to; bi++ {
				b := tr.batches[bi]
				det.ProcessBatchScored(tr.flat[off*tr.d:(off+b)*tr.d], verdicts[off:off+b], scores[off:off+b])
				if tr.supervised {
					for i := off; i < off+b; i++ {
						if tr.labels[i] {
							det.MarkExample(tr.flat[i*tr.d : (i+1)*tr.d])
						}
					}
				}
				off += b
			}
		}

		for _, shards := range []int{1, 4} {
			oracle, err := New(cfgOf(shards))
			if err != nil {
				t.Fatalf("%s: %v", tr.scenario, err)
			}
			oracleV := make([]bool, tr.n)
			oracleScores := make([]float64, tr.n)
			feedScored(oracle, oracleV, oracleScores, 0, len(tr.batches))
			oracleTop := oracle.TopK(nil)
			oracle.Close()

			det, err := New(cfgOf(shards))
			if err != nil {
				t.Fatalf("%s: %v", tr.scenario, err)
			}
			verdicts := make([]bool, tr.n)
			scores := make([]float64, tr.n)
			feedScored(det, verdicts, scores, 0, tr.killAfter)
			var buf bytes.Buffer
			if err := det.Snapshot(&buf); err != nil {
				t.Fatalf("%s: snapshot: %v", tr.scenario, err)
			}
			det.Close() // the crash

			restored, err := Restore(bytes.NewReader(buf.Bytes()), cfgOf(shards))
			if err != nil {
				t.Fatalf("%s: restore: %v", tr.scenario, err)
			}
			feedScored(restored, verdicts, scores, tr.killAfter, len(tr.batches))
			for i := range oracleV {
				if verdicts[i] != oracleV[i] {
					t.Fatalf("%s shards=%d: verdict for point %d differs after restore", tr.scenario, shards, i)
				}
				if scores[i] != oracleScores[i] {
					t.Fatalf("%s shards=%d: score for point %d differs after restore: %g vs %g",
						tr.scenario, shards, i, scores[i], oracleScores[i])
				}
			}
			top := restored.TopK(nil)
			if len(top) != len(oracleTop) {
				t.Fatalf("%s shards=%d: top-K has %d entries after restore, oracle %d",
					tr.scenario, shards, len(top), len(oracleTop))
			}
			for i := range top {
				if top[i] != oracleTop[i] {
					t.Fatalf("%s shards=%d: top-K entry %d differs: %+v vs %+v",
						tr.scenario, shards, i, top[i], oracleTop[i])
				}
			}
			// Byte stability: a re-snapshot of the restored detector at
			// the kill point reproduces the original bytes (take it
			// before feeding the continuation).
			restored.Close()

			restored2, err := Restore(bytes.NewReader(buf.Bytes()), cfgOf(shards))
			if err != nil {
				t.Fatalf("%s: second restore: %v", tr.scenario, err)
			}
			var again bytes.Buffer
			if err := restored2.Snapshot(&again); err != nil {
				t.Fatalf("%s: re-snapshot: %v", tr.scenario, err)
			}
			restored2.Close()
			if !bytes.Equal(buf.Bytes(), again.Bytes()) {
				t.Fatalf("%s shards=%d: scored snapshot not byte-stable: %d vs %d bytes",
					tr.scenario, shards, buf.Len(), again.Len())
			}

			if trial == 0 && shards == 1 {
				// Scoring and TopK are state-shaping: restoring into a
				// detector with either changed must be rejected.
				off := cfgOf(1)
				off.Scoring = false
				off.TopK = 0
				if _, err := Restore(bytes.NewReader(buf.Bytes()), off); !errors.Is(err, ErrConfigMismatch) {
					t.Errorf("scoring off: got %v, want ErrConfigMismatch", err)
				}
				k2 := cfgOf(1)
				k2.TopK = 16
				if _, err := Restore(bytes.NewReader(buf.Bytes()), k2); !errors.Is(err, ErrConfigMismatch) {
					t.Errorf("TopK changed: got %v, want ErrConfigMismatch", err)
				}
				plain, err := New(tr.config(t, 1))
				if err != nil {
					t.Fatal(err)
				}
				var plainBuf bytes.Buffer
				if err := plain.Snapshot(&plainBuf); err != nil {
					t.Fatal(err)
				}
				plain.Close()
				if _, err := Restore(bytes.NewReader(plainBuf.Bytes()), cfgOf(1)); !errors.Is(err, ErrConfigMismatch) {
					t.Errorf("scoring on over unscored snapshot: got %v, want ErrConfigMismatch", err)
				}

				// Fault injection over the scored bytes: bit flips across
				// the file (covering the new meta fields and the top-K
				// section) must surface typed errors, never panics.
				raw := buf.Bytes()
				typed := func(err error) bool {
					return errors.Is(err, snapshot.ErrBadMagic) ||
						errors.Is(err, snapshot.ErrVersion) ||
						errors.Is(err, snapshot.ErrChecksum) ||
						errors.Is(err, snapshot.ErrTruncated) ||
						errors.Is(err, snapshot.ErrCorrupt) ||
						errors.Is(err, snapshot.ErrInjected) ||
						errors.Is(err, ErrConfigMismatch)
				}
				for off := 0; off < len(raw); off += 1 + len(raw)/61 {
					mask := byte(1 << uint(off%8))
					_, err := Restore(snapshot.NewBitFlipReader(bytes.NewReader(raw), int64(off), mask), cfgOf(1))
					if err == nil || !typed(err) {
						t.Errorf("scored bitflip@%d: got %v, want a typed snapshot error", off, err)
					}
				}
			}
		}
	}
}

// TestKeeperRecoveryEndToEnd wires the real pieces together: periodic
// detector checkpoints through a snapshot.Keeper, newest generation
// corrupted on disk (the torn-overwrite shape), recovery from the last
// good generation, and continuation that matches the oracle from that
// batch boundary on.
func TestKeeperRecoveryEndToEnd(t *testing.T) {
	meta := rand.New(rand.NewSource(23))
	tr := makeSnapTrial(t, 0, meta)
	oracleV, _, _ := tr.oracle(t, 2)

	keeper, err := snapshot.NewKeeper(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	det, err := New(tr.config(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	verdicts := make([]bool, tr.n)
	// Checkpoint after every batch up to the kill point; remember which
	// batch each generation covers.
	genBatches := make(map[string]int)
	for bi := 0; bi < tr.killAfter; bi++ {
		tr.feed(det, verdicts, bi, bi+1)
		p, _, err := keeper.Save(det.Snapshot)
		if err != nil {
			t.Fatalf("checkpoint after batch %d: %v", bi, err)
		}
		genBatches[p] = bi + 1
	}
	det.Close() // the crash

	// Corrupt the newest generation the way a torn overwrite would.
	gens, err := keeper.Generations()
	if err != nil || gens != 2 {
		t.Fatalf("generations = %d, %v — want 2 retained", gens, err)
	}
	newest := ""
	for p := range genBatches {
		if genBatches[p] > genBatches[newest] || newest == "" {
			newest = p
		}
	}
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x08
	if err := os.WriteFile(newest, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var restored *Detector
	loadedFrom, err := keeper.Load(func(r io.Reader) error {
		var rerr error
		restored, rerr = Restore(r, tr.config(t, 2))
		return rerr
	})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if loadedFrom == newest {
		t.Fatal("recovered from the corrupted generation")
	}
	defer restored.Close()
	resume := genBatches[loadedFrom]
	if resume != tr.killAfter-1 {
		t.Fatalf("recovered generation covers %d batches, want the previous one (%d)", resume, tr.killAfter-1)
	}
	tr.feed(restored, verdicts, resume, len(tr.batches))
	// Verdicts before the recovered boundary were emitted pre-crash;
	// everything from the resume point must match the oracle.
	off := 0
	for i := 0; i < resume; i++ {
		off += tr.batches[i]
	}
	for i := off; i < tr.n; i++ {
		if verdicts[i] != oracleV[i] {
			t.Fatalf("%s: verdict for point %d differs after keeper recovery", tr.scenario, i)
		}
	}
}

// TestSnapshotAfterClose: a closed detector refuses to snapshot.
func TestSnapshotAfterClose(t *testing.T) {
	cfg := DefaultConfig(4)
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	det.Close()
	if err := det.Snapshot(&bytes.Buffer{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

// TestProcessBatchErrValidation covers the typed-error batch entry
// point: ragged input, short verdict buffers, empty batches, and use
// after Close all surface as errors instead of panics, and the
// panicking wrapper still panics for legacy callers.
func TestProcessBatchErrValidation(t *testing.T) {
	cfg := DefaultConfig(4)
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]bool, 8)
	if _, err := det.ProcessBatchErr(make([]float64, 6), out); !errors.Is(err, ErrBatchLength) {
		t.Fatalf("ragged batch: got %v, want ErrBatchLength", err)
	}
	if _, err := det.ProcessBatchErr(make([]float64, 4*8), make([]bool, 2)); !errors.Is(err, ErrVerdictBuffer) {
		t.Fatalf("short buffer: got %v, want ErrVerdictBuffer", err)
	}
	if n, err := det.ProcessBatchErr(nil, nil); n != 0 || err != nil {
		t.Fatalf("empty batch: got (%d, %v), want (0, nil)", n, err)
	}
	if n, err := det.ProcessBatchErr(make([]float64, 4*3), out); n != 3 || err != nil {
		t.Fatalf("valid batch: got (%d, %v)", n, err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ProcessBatch did not panic on ragged input")
			}
		}()
		det.ProcessBatch(make([]float64, 6), out)
	}()
	det.Close()
	if _, err := det.ProcessBatchErr(make([]float64, 4), out); !errors.Is(err, ErrClosed) {
		t.Fatalf("after close: got %v, want ErrClosed", err)
	}
}
