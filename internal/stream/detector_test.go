package stream

import (
	"testing"

	"spot/internal/bench"
)

// TestDetectorFindsPlantedOutliers streams Gaussian clusters with
// planted projected outliers through the detector and checks that,
// after warmup, planted outliers are flagged and the false-positive
// rate on cluster points stays low.
func TestDetectorFindsPlantedOutliers(t *testing.T) {
	const (
		d      = 10
		n      = 6000
		warmup = 2000
	)
	cfg := DefaultConfig(d)
	cfg.MaxSubspaceDim = 2
	cfg.Shards = 2
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()

	gcfg := bench.DefaultGenConfig(d)
	gen := bench.NewGenerator(gcfg)
	buf := make([]float64, d)

	var planted, caught, inliers, falsePos int
	for i := 0; i < n; i++ {
		isOut := gen.Next(buf)
		flag := det.Process(buf)
		if i < warmup {
			continue
		}
		if isOut {
			planted++
			if flag {
				caught++
			}
		} else {
			inliers++
			if flag {
				falsePos++
			}
		}
	}
	if planted < 10 {
		t.Fatalf("generator planted only %d outliers, stream misconfigured", planted)
	}
	recall := float64(caught) / float64(planted)
	fpRate := float64(falsePos) / float64(inliers)
	t.Logf("planted=%d caught=%d recall=%.3f inliers=%d falsePos=%d fpRate=%.4f",
		planted, caught, recall, inliers, falsePos, fpRate)
	if recall < 0.9 {
		t.Errorf("recall = %.3f, want ≥ 0.9", recall)
	}
	if fpRate > 0.10 {
		t.Errorf("false-positive rate = %.4f, want ≤ 0.10", fpRate)
	}
}

// TestShardInvariance checks that verdicts do not depend on the shard
// count: the SST partition changes, the math does not.
func TestShardInvariance(t *testing.T) {
	const d, n = 8, 1500
	verdicts := make([][]bool, 0, 3)
	for _, shards := range []int{1, 3, 8} {
		cfg := DefaultConfig(d)
		cfg.MaxSubspaceDim = 2
		cfg.Shards = shards
		cfg.Warmup = 100
		det, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gen := bench.NewGenerator(bench.DefaultGenConfig(d))
		buf := make([]float64, d)
		v := make([]bool, n)
		for i := 0; i < n; i++ {
			gen.Next(buf)
			v[i] = det.Process(buf)
		}
		det.Close()
		verdicts = append(verdicts, v)
	}
	for s := 1; s < len(verdicts); s++ {
		for i := range verdicts[0] {
			if verdicts[s][i] != verdicts[0][i] {
				t.Fatalf("verdict for point %d differs between shard configs", i)
			}
		}
	}
}

// TestBatchMatchesPointwise checks ProcessBatch produces exactly the
// verdicts of point-by-point Process on the same stream — with batch
// cell coalescing on (the default) and with the Config.NoCoalesce
// escape hatch forcing the fused per-point path, pinning the three-way
// equivalence the coalesced fold argues for.
func TestBatchMatchesPointwise(t *testing.T) {
	const d, n, batch = 8, 2048, 256
	mk := func(noCoalesce bool) *Detector {
		cfg := DefaultConfig(d)
		cfg.MaxSubspaceDim = 2
		cfg.Shards = 4
		cfg.Warmup = 100
		cfg.NoCoalesce = noCoalesce
		det, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return det
	}
	gen := bench.NewGenerator(bench.DefaultGenConfig(d))
	flat := make([]float64, n*d)
	labels := make([]bool, n)
	gen.Fill(flat, labels, n)

	pointwise := mk(false)
	defer pointwise.Close()
	want := make([]bool, n)
	for i := 0; i < n; i++ {
		want[i] = pointwise.Process(flat[i*d : (i+1)*d])
	}

	for _, noCoalesce := range []bool{false, true} {
		batched := mk(noCoalesce)
		defer batched.Close()
		got := make([]bool, n)
		for off := 0; off < n; off += batch {
			batched.ProcessBatch(flat[off*d:(off+batch)*d], got[off:off+batch])
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("verdict for point %d (NoCoalesce=%v): batch=%v pointwise=%v", i, noCoalesce, got[i], want[i])
			}
		}
		if pointwise.Tick() != batched.Tick() {
			t.Fatalf("tick mismatch (NoCoalesce=%v): %d vs %d", noCoalesce, pointwise.Tick(), batched.Tick())
		}
		s := batched.Stats()
		if noCoalesce && s.CoalesceGroupings != 0 {
			t.Fatalf("NoCoalesce detector recorded %d grouping passes, want 0", s.CoalesceGroupings)
		}
		if !noCoalesce && s.CoalesceGroupings == 0 {
			t.Fatal("coalescing detector recorded no grouping passes on a clustered stream")
		}
	}
}

// TestProcessZeroAllocs verifies the acceptance criterion: Process
// performs zero heap allocations per point once the point's cells
// exist.
func TestProcessZeroAllocs(t *testing.T) {
	const d = 12
	cfg := DefaultConfig(d)
	cfg.MaxSubspaceDim = 3
	cfg.Shards = 2
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	gen := bench.NewGenerator(bench.DefaultGenConfig(d))
	buf := make([]float64, d)
	for i := 0; i < 500; i++ {
		gen.Next(buf)
		det.Process(buf)
	}
	point := make([]float64, d)
	copy(point, buf)
	det.Process(point) // ensure every cell this point touches exists
	allocs := testing.AllocsPerRun(200, func() {
		det.Process(point)
	})
	if allocs != 0 {
		t.Errorf("Process allocates %.1f objects/point on the hot path, want 0", allocs)
	}
}

// TestWarmupSuppression: before the subspace summaries carry Warmup
// worth of decayed weight, nothing is flagged — not even blatant
// outliers.
func TestWarmupSuppression(t *testing.T) {
	const d = 5
	cfg := DefaultConfig(d)
	cfg.MaxSubspaceDim = 2
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	gen := bench.NewGenerator(bench.DefaultGenConfig(d))
	buf := make([]float64, d)
	for i := 0; i < 50; i++ {
		gen.Next(buf)
		if det.Process(buf) {
			t.Fatalf("point %d flagged during warmup", i)
		}
	}
	outlier := []float64{0.99, 0.99, 0.99, 0.99, 0.99}
	if det.Process(outlier) {
		t.Fatal("outlier flagged during warmup")
	}
}

// TestIRSDFlagsDisplacedCell isolates the IRSD measure: with RD and
// IkRD disabled, a sparse cell whose magnitude sits far out in the
// subspace's distribution is still flagged.
func TestIRSDFlagsDisplacedCell(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MaxSubspaceDim = 1
	cfg.RDThreshold = 0 // disable: RD is never negative
	cfg.IkRDThreshold = 0
	cfg.IRSDThreshold = 0.12
	cfg.Warmup = 100
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	// A tight cluster near 0.5...
	for i := 0; i < 400; i++ {
		det.Process([]float64{0.5 + 0.01*float64(i%5-2)})
	}
	// ...then a point in a far, empty interval: z ≈ |0.95-0.5|/σ is
	// huge, IRSD ≈ 0.
	if !det.Process([]float64{0.95}) {
		t.Error("far displaced point not flagged by IRSD")
	}
	if det.Process([]float64{0.5}) {
		t.Error("cluster-center point flagged by IRSD")
	}
}

// TestIkRDFlagsFarCell isolates the IkRD measure: with RD and IRSD
// disabled, a cell at maximum grid distance from the representative
// (densest) cells is flagged, a neighbouring cell is not.
func TestIkRDFlagsFarCell(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MaxSubspaceDim = 1
	cfg.RDThreshold = 0
	cfg.IRSDThreshold = 0
	cfg.IkRDThreshold = 0.15
	cfg.Warmup = 100
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	// Dense mass in interval 0 (phi=8 over [0,1): x < 0.125).
	for i := 0; i < 400; i++ {
		det.Process([]float64{0.06})
	}
	// Interval 7: grid distance 7 of max 7 -> IkRD = 0 -> flagged.
	if !det.Process([]float64{0.99}) {
		t.Error("far cell not flagged by IkRD")
	}
	// Interval 1: distance 1 -> IkRD ≈ 0.857 -> not flagged.
	if det.Process([]float64{0.2}) {
		t.Error("adjacent cell flagged by IkRD")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Dims: 5, Phi: 8, MaxSubspaceDim: 2, Shards: 0, Lambda: 0.01, K: 3},
		{Dims: 5, Phi: 8, MaxSubspaceDim: 2, Shards: 1, Lambda: 0, K: 3},
		{Dims: 5, Phi: 0, MaxSubspaceDim: 2, Shards: 1, Lambda: 0.01, K: 3},
		{Dims: 5, Phi: 8, MaxSubspaceDim: 2, Shards: 1, Lambda: 0.01, K: 0},
		{Dims: 5, Phi: 8, MaxSubspaceDim: 2, Shards: 1, Lambda: 0.01, K: 3,
			Min: []float64{0}, Max: []float64{1}}, // bounds don't cover Dims
		{Dims: 5, Phi: 8, MaxSubspaceDim: 2, Shards: 1, Lambda: 0.01, K: 3,
			Warmup: 200}, // unreachable: weight asymptotes at ~144.8 for this Lambda
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}
