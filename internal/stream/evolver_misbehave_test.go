package stream

import (
	"testing"

	"spot/internal/sst"
)

// scriptedEvolver replays a fixed sequence of Evolutions, one per epoch
// boundary, regardless of the sweep statistics — a stand-in for a buggy
// or adversarial Evolver implementation.
type scriptedEvolver struct {
	steps []sst.Evolution
	at    int
}

// Evolve implements sst.Evolver.
func (s *scriptedEvolver) Evolve(*sst.Template, *sst.EpochStats) sst.Evolution {
	if s.at >= len(s.steps) {
		return sst.Evolution{}
	}
	ev := s.steps[s.at]
	s.at++
	return ev
}

// panickyEvolver blows up on a scripted subset of its Evolve calls and
// behaves on the rest.
type panickyEvolver struct {
	calls   int
	panicOn map[int]bool
}

// Evolve implements sst.Evolver.
func (p *panickyEvolver) Evolve(*sst.Template, *sst.EpochStats) sst.Evolution {
	p.calls++
	if p.panicOn[p.calls] {
		panic("evolver bug")
	}
	return sst.Evolution{Promote: [][]uint16{{uint16(p.calls), uint16(p.calls + 1)}}}
}

// TestPanickingEvolverIsContained: an Evolver that panics mid-sweep
// must not take the detector down. The sweep applies no evolution that
// epoch, counts the incident in Stats.EvolverPanics, demotes nothing,
// and later well-behaved epochs evolve normally.
func TestPanickingEvolverIsContained(t *testing.T) {
	const d = 6
	ev := &panickyEvolver{panicOn: map[int]bool{1: true, 3: true}}
	cfg := DefaultConfig(d)
	cfg.MaxSubspaceDim = 1
	cfg.Shards = 2
	cfg.Warmup = 30
	cfg.EpochTicks = 64
	cfg.EvictEpsilon = 1e-6
	cfg.Evolver = ev
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()

	point := []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	run := func(epochs int) Stats {
		for i := 0; i < 64*epochs; i++ {
			det.Process(point)
		}
		return det.Stats()
	}

	// Epoch 1 panics: no evolution, one contained incident, fixed
	// group untouched.
	s := run(1)
	if s.Sweeps != 1 || s.EvolverPanics != 1 {
		t.Fatalf("after epoch 1: Sweeps=%d EvolverPanics=%d, want 1/1", s.Sweeps, s.EvolverPanics)
	}
	if s.Promoted != 0 || s.Demoted != 0 || s.EvolvedActive != 0 {
		t.Fatalf("panicking epoch mutated the template: %+v", s)
	}
	if det.Template().FixedCount() != d || !det.Template().Active(0) {
		t.Fatal("fixed group mutated by panicking evolver")
	}

	// Epoch 2 behaves: its promotion lands.
	if s = run(1); s.EvolverPanics != 1 || s.Promoted != 1 || s.EvolvedActive != 1 {
		t.Fatalf("after epoch 2: %+v, want one promotion and no new panic", s)
	}
	// Epoch 3 panics again: counted, nothing demoted, epoch 4 evolves.
	if s = run(2); s.Sweeps != 4 || s.EvolverPanics != 2 || s.Promoted != 2 || s.Demoted != 0 {
		t.Fatalf("after epoch 4: %+v, want 4 sweeps, 2 contained panics, 2 promotions", s)
	}
}

// TestMisbehavingEvolverIsContained: the detector must survive an
// evolver that proposes duplicates of fixed-group members, malformed
// dimension sets, demotions of fixed or dead IDs, and the same set
// twice in one epoch — applying only the legal mutations and counting
// only those in its lifetime stats, with the hot path unaffected.
func TestMisbehavingEvolverIsContained(t *testing.T) {
	const d = 5
	ev := &scriptedEvolver{steps: []sst.Evolution{
		{
			Promote: [][]uint16{
				{2},          // duplicates a fixed arity-1 subspace
				{3, 1},       // not strictly increasing
				{1, 9},       // dimension out of range
				{1, 3},       // legal
				{1, 3},       // duplicate of the same epoch's promotion
			},
			Demote: []uint32{0, 99}, // fixed-group ID; unknown ID
		},
		{
			Demote: []uint32{5, 5}, // legal demote of {1,3}; then double demote
		},
	}}
	cfg := DefaultConfig(d)
	cfg.MaxSubspaceDim = 1
	cfg.Shards = 2
	cfg.Warmup = 30
	cfg.EpochTicks = 64
	cfg.EvictEpsilon = 1e-6
	cfg.Evolver = ev
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()

	point := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	for i := 0; i < 64; i++ {
		det.Process(point)
	}
	s := det.Stats()
	if s.Sweeps != 1 {
		t.Fatalf("Sweeps = %d, want 1", s.Sweeps)
	}
	if s.Promoted != 1 || s.Demoted != 0 {
		t.Fatalf("promoted/demoted = %d/%d after epoch 1, want 1/0 — illegal proposals must not count", s.Promoted, s.Demoted)
	}
	if got := det.Stats().EvolvedActive; got != 1 {
		t.Fatalf("EvolvedActive = %d, want 1", got)
	}
	tmpl := det.Template()
	id, ok := tmpl.Contains([]uint16{1, 3})
	if !ok || id != uint32(d) {
		t.Fatalf("Contains([1 3]) = %d,%v, want %d,true", id, ok, d)
	}
	if tmpl.FixedCount() != d || !tmpl.Active(0) {
		t.Fatal("fixed group mutated by misbehaving evolver")
	}

	// Second epoch: the legal demote lands once, the double demote is
	// dropped, and the detector keeps processing normally.
	for i := 0; i < 64; i++ {
		det.Process(point)
	}
	s = det.Stats()
	if s.Promoted != 1 || s.Demoted != 1 {
		t.Fatalf("promoted/demoted = %d/%d after epoch 2, want 1/1", s.Promoted, s.Demoted)
	}
	if got := s.EvolvedActive; got != 0 {
		t.Fatalf("EvolvedActive = %d after demotion, want 0", got)
	}
	if _, still := tmpl.Contains([]uint16{1, 3}); still {
		t.Fatal("demoted subspace still in the template index")
	}
	// The purge left no ghost cells for the demoted subspace.
	for i := 0; i < 64; i++ {
		det.Process(point)
	}
	if s := det.Stats(); s.Sweeps != 3 {
		t.Fatalf("Sweeps = %d, want 3 — detector stalled after misbehaving evolver", s.Sweeps)
	}
}
