package stream

import (
	"testing"

	"spot/internal/sst"
)

// scriptedEvolver replays a fixed sequence of Evolutions, one per epoch
// boundary, regardless of the sweep statistics — a stand-in for a buggy
// or adversarial Evolver implementation.
type scriptedEvolver struct {
	steps []sst.Evolution
	at    int
}

// Evolve implements sst.Evolver.
func (s *scriptedEvolver) Evolve(*sst.Template, *sst.EpochStats) sst.Evolution {
	if s.at >= len(s.steps) {
		return sst.Evolution{}
	}
	ev := s.steps[s.at]
	s.at++
	return ev
}

// TestMisbehavingEvolverIsContained: the detector must survive an
// evolver that proposes duplicates of fixed-group members, malformed
// dimension sets, demotions of fixed or dead IDs, and the same set
// twice in one epoch — applying only the legal mutations and counting
// only those in its lifetime stats, with the hot path unaffected.
func TestMisbehavingEvolverIsContained(t *testing.T) {
	const d = 5
	ev := &scriptedEvolver{steps: []sst.Evolution{
		{
			Promote: [][]uint16{
				{2},          // duplicates a fixed arity-1 subspace
				{3, 1},       // not strictly increasing
				{1, 9},       // dimension out of range
				{1, 3},       // legal
				{1, 3},       // duplicate of the same epoch's promotion
			},
			Demote: []uint32{0, 99}, // fixed-group ID; unknown ID
		},
		{
			Demote: []uint32{5, 5}, // legal demote of {1,3}; then double demote
		},
	}}
	cfg := DefaultConfig(d)
	cfg.MaxSubspaceDim = 1
	cfg.Shards = 2
	cfg.Warmup = 30
	cfg.EpochTicks = 64
	cfg.EvictEpsilon = 1e-6
	cfg.Evolver = ev
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()

	point := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	for i := 0; i < 64; i++ {
		det.Process(point)
	}
	s := det.Stats()
	if s.Sweeps != 1 {
		t.Fatalf("Sweeps = %d, want 1", s.Sweeps)
	}
	if s.Promoted != 1 || s.Demoted != 0 {
		t.Fatalf("promoted/demoted = %d/%d after epoch 1, want 1/0 — illegal proposals must not count", s.Promoted, s.Demoted)
	}
	if got := det.Stats().EvolvedActive; got != 1 {
		t.Fatalf("EvolvedActive = %d, want 1", got)
	}
	tmpl := det.Template()
	id, ok := tmpl.Contains([]uint16{1, 3})
	if !ok || id != uint32(d) {
		t.Fatalf("Contains([1 3]) = %d,%v, want %d,true", id, ok, d)
	}
	if tmpl.FixedCount() != d || !tmpl.Active(0) {
		t.Fatal("fixed group mutated by misbehaving evolver")
	}

	// Second epoch: the legal demote lands once, the double demote is
	// dropped, and the detector keeps processing normally.
	for i := 0; i < 64; i++ {
		det.Process(point)
	}
	s = det.Stats()
	if s.Promoted != 1 || s.Demoted != 1 {
		t.Fatalf("promoted/demoted = %d/%d after epoch 2, want 1/1", s.Promoted, s.Demoted)
	}
	if got := s.EvolvedActive; got != 0 {
		t.Fatalf("EvolvedActive = %d after demotion, want 0", got)
	}
	if _, still := tmpl.Contains([]uint16{1, 3}); still {
		t.Fatal("demoted subspace still in the template index")
	}
	// The purge left no ghost cells for the demoted subspace.
	for i := 0; i < 64; i++ {
		det.Process(point)
	}
	if s := det.Stats(); s.Sweeps != 3 {
		t.Fatalf("Sweeps = %d, want 3 — detector stalled after misbehaving evolver", s.Sweeps)
	}
}
