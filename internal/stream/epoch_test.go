package stream

import (
	"testing"

	"spot/internal/bench"
	"spot/internal/sst"
)

// TestEvictionBoundsMemoryUnderDrift is the memory-bound regression
// test: on a jump-drifting stream (cluster centers relocate every 1000
// points, abandoning their old cells forever) the summary tables of an
// epoch-sweeping detector plateau, while a sweep-free detector grows
// without bound.
func TestEvictionBoundsMemoryUnderDrift(t *testing.T) {
	const (
		d     = 8
		n     = 24000
		mid   = 12000
		drift = 1000
	)
	mkCfg := func(epoch uint64) Config {
		cfg := DefaultConfig(d)
		cfg.MaxSubspaceDim = 2
		cfg.Shards = 2
		cfg.Lambda = 0.01
		cfg.Warmup = 50
		cfg.EpochTicks = epoch
		cfg.EvictEpsilon = 1e-4
		if epoch == 0 {
			cfg.RDPopulatedThreshold = 0 // requires sweeps
		}
		return cfg
	}
	gcfg := bench.DefaultGenConfig(d)
	gcfg.DriftPeriod = drift

	run := func(cfg Config) (midEntries, endEntries int, s Stats) {
		det, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer det.Close()
		gen := bench.NewGenerator(gcfg)
		buf := make([]float64, d)
		for i := 0; i < n; i++ {
			gen.Next(buf)
			det.Process(buf)
			if i+1 == mid {
				midEntries = det.Stats().SummaryEntries
			}
		}
		s = det.Stats()
		return midEntries, s.SummaryEntries, s
	}

	evictMid, evictEnd, evictStats := run(mkCfg(500))
	_, growEnd, _ := run(mkCfg(0))
	t.Logf("evicting: mid=%d end=%d (evicted %d projected + %d base over %d sweeps); no sweeps: end=%d",
		evictMid, evictEnd, evictStats.EvictedProjected, evictStats.EvictedBase, evictStats.Sweeps, growEnd)

	if evictStats.Sweeps == 0 || evictStats.EvictedProjected == 0 {
		t.Fatal("epoch engine never swept or never evicted — test exercises nothing")
	}
	// Plateau: the second half of the stream must not meaningfully grow
	// the table (steady state is reached once eviction latency <
	// stream age, a few drift generations in).
	if float64(evictEnd) > 1.25*float64(evictMid) {
		t.Errorf("summary entries still growing under eviction: mid=%d end=%d", evictMid, evictEnd)
	}
	// Contrast: without sweeps the same stream accumulates every cell
	// ever touched.
	if growEnd < 2*evictEnd {
		t.Errorf("sweep-free detector ended with %d entries, expected ≥ 2× the evicting detector's %d — drift too weak to matter", growEnd, evictEnd)
	}
}

// evolveTestConfig is the shared setup of the SST-evolution tests: a
// 6-D stream with two tight clusters pinned to grid cells and "mix"
// outliers that borrow dimension 4 from the other cluster — dense in
// every 1-D marginal, anomalous only jointly, so a fixed group capped
// at arity 1 cannot see them until the evolver promotes a pair
// containing dimension 4.
func evolveTestConfig(t *testing.T, shards int) (Config, bench.GenConfig) {
	t.Helper()
	ev, err := sst.NewTopSparse(sst.TopSparseConfig{
		Arity:       2,
		TopS:        2,
		Explore:     64, // C(6,2)=15 → exhaustive, deterministic
		SparseRatio: 0.1,
		MinScore:    0.05,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(6)
	cfg.MaxSubspaceDim = 1
	cfg.Shards = shards
	cfg.Lambda = 0.02
	cfg.Warmup = 30
	cfg.EpochTicks = 400
	cfg.EvictEpsilon = 1e-4
	cfg.RDPopulatedThreshold = 0.2
	cfg.Evolver = ev

	centerA := []float64{0.19, 0.19, 0.19, 0.19, 0.19, 0.19} // interval 1 at φ=8
	centerB := []float64{0.81, 0.81, 0.81, 0.81, 0.81, 0.81} // interval 6
	gcfg := bench.GenConfig{
		Dims:        6,
		Centers:     [][]float64{centerA, centerB},
		Sigma:       0.005,
		OutlierRate: 0.02,
		Mode:        bench.OutlierMix,
		MixDim:      4,
		Seed:        11,
	}
	return cfg, gcfg
}

// TestEvolutionPromotesAndDetects is the acceptance-criterion test:
// planted projected outliers living outside the fixed group are
// invisible at first, the first epoch sweep promotes subspaces pairing
// the mixed dimension, and from then on the outliers are caught — via
// the arity-aware RD test, since the uniform RD floor (φ²·(1-2^-λ) ≈
// 0.88 here) makes the classic test unusable at arity 2. A final
// outlier-free phase then starves the promoted subspaces until their
// sparse cells are evicted and the evolver demotes them.
func TestEvolutionPromotesAndDetects(t *testing.T) {
	cfg, gcfg := evolveTestConfig(t, 2)
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	gen := bench.NewGenerator(gcfg)
	buf := make([]float64, cfg.Dims)

	// Phase A — before the first epoch: no arity-2 subspace exists, so
	// mix outliers pass undetected.
	for i := 0; i < int(cfg.EpochTicks); i++ {
		isOut := gen.Next(buf)
		if det.Process(buf) && isOut {
			t.Fatalf("tick %d: mix outlier flagged before any evolution", i+1)
		}
	}
	if got := det.Stats().EvolvedActive; got != 2 {
		t.Fatalf("EvolvedActive = %d after first sweep, want 2", got)
	}
	evolved := det.Template().EvolvedIDs(nil)
	for _, id := range evolved {
		dims := det.Template().Dims(int(id))
		hasMix := false
		for _, dim := range dims {
			if dim == uint16(gcfg.MixDim) {
				hasMix = true
			}
		}
		if len(dims) != 2 || !hasMix {
			t.Fatalf("promoted subspace %d = %v, want a pair containing dimension %d", id, dims, gcfg.MixDim)
		}
	}

	// Phase B — after promotion, warmup (~60 ticks at λ=0.02) and the
	// second sweep (which first records arity-2 populated densities),
	// mix outliers must be caught.
	var planted, caught int
	for tick := int(cfg.EpochTicks); tick < 3000; tick++ {
		isOut := gen.Next(buf)
		flag := det.Process(buf)
		if tick < 2*int(cfg.EpochTicks)+100 {
			continue // promoted subspaces still warming up / unreferenced
		}
		if isOut {
			planted++
			if flag {
				caught++
			}
		}
	}
	if planted < 10 {
		t.Fatalf("only %d mix outliers planted in phase B — stream misconfigured", planted)
	}
	if recall := float64(caught) / float64(planted); recall < 0.9 {
		t.Errorf("post-evolution recall = %.3f (%d/%d), want ≥ 0.9", recall, caught, planted)
	}

	// Phase C — outliers stop; the mix cells decay below ε, get
	// evicted, and the evolver demotes the now-healthy subspaces.
	gcfg.OutlierRate = 0
	gcfg.Seed = 12
	quiet := bench.NewGenerator(gcfg)
	for i := 0; i < 2400; i++ {
		quiet.Next(buf)
		det.Process(buf)
	}
	s := det.Stats()
	if s.EvolvedActive != 0 {
		t.Errorf("EvolvedActive = %d after outlier-free phase, want 0 (stale subspaces demoted)", s.EvolvedActive)
	}
	if s.Promoted != 2 || s.Demoted != 2 {
		t.Errorf("lifetime promoted/demoted = %d/%d, want 2/2", s.Promoted, s.Demoted)
	}
	t.Logf("planted=%d caught=%d promoted=%d demoted=%d evictedProjected=%d",
		planted, caught, s.Promoted, s.Demoted, s.EvictedProjected)
}

// TestEvolutionShardInvariance: evolution decisions derive from
// globally merged sweep statistics, so verdicts — including which
// subspaces get promoted and when — must not depend on the shard
// count.
func TestEvolutionShardInvariance(t *testing.T) {
	const n = 1600
	var verdicts [][]bool
	var evolved [][]uint16
	for _, shards := range []int{1, 3} {
		cfg, gcfg := evolveTestConfig(t, shards)
		det, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gen := bench.NewGenerator(gcfg)
		buf := make([]float64, cfg.Dims)
		v := make([]bool, n)
		for i := 0; i < n; i++ {
			gen.Next(buf)
			v[i] = det.Process(buf)
		}
		verdicts = append(verdicts, v)
		var dims []uint16
		for _, id := range det.Template().EvolvedIDs(nil) {
			dims = append(dims, det.Template().Dims(int(id))...)
		}
		evolved = append(evolved, dims)
		det.Close()
	}
	for i := range verdicts[0] {
		if verdicts[0][i] != verdicts[1][i] {
			t.Fatalf("verdict for point %d differs between shard counts", i)
		}
	}
	if len(evolved[0]) != len(evolved[1]) {
		t.Fatalf("evolved groups differ: %v vs %v", evolved[0], evolved[1])
	}
	for i := range evolved[0] {
		if evolved[0][i] != evolved[1][i] {
			t.Fatalf("evolved groups differ: %v vs %v", evolved[0], evolved[1])
		}
	}
}

// TestEpochBatchMatchesPointwise: a batch crossing several epoch
// boundaries is split internally so sweeps (and evolution) run at the
// same exact ticks as in pointwise mode; verdicts must be identical.
func TestEpochBatchMatchesPointwise(t *testing.T) {
	const n = 1500
	mk := func() (*Detector, bench.GenConfig) {
		cfg, gcfg := evolveTestConfig(t, 2)
		det, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return det, gcfg
	}
	det1, gcfg := mk()
	defer det1.Close()
	flat := make([]float64, n*6)
	labels := make([]bool, n)
	bench.NewGenerator(gcfg).Fill(flat, labels, n)

	want := make([]bool, n)
	for i := 0; i < n; i++ {
		want[i] = det1.Process(flat[i*6 : (i+1)*6])
	}

	det2, _ := mk()
	defer det2.Close()
	got := make([]bool, n)
	// 700-point batches straddle the 400-tick epoch boundary twice.
	for off := 0; off < n; {
		b := 700
		if off+b > n {
			b = n - off
		}
		det2.ProcessBatch(flat[off*6:(off+b)*6], got[off:off+b])
		off += b
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("verdict for point %d: batch=%v pointwise=%v", i, got[i], want[i])
		}
	}
	if s1, s2 := det1.Stats(), det2.Stats(); s1.Sweeps != s2.Sweeps || s1.Promoted != s2.Promoted {
		t.Fatalf("epoch engine diverged: %+v vs %+v", s1, s2)
	}
}
