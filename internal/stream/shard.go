package stream

import (
	"math"

	"spot/internal/core"
)

// repEmpty marks an unused representative slot; no real cell key uses
// subspace ID 2^24-1 together with all-ones coordinates.
const repEmpty = ^uint64(0)

// repDecayStride is how many ticks of fading may accumulate on the
// representative densities before they are brought current. Kept below
// the decay table size so the refresh stays a table lookup.
const repDecayStride = 32

// subspaceState is the per-subspace state a shard owns exclusively: the
// decayed subspace totals (density plus magnitude moments, reusing PCS),
// the greedily-maintained representative (densest-cell) set for IkRD,
// and constants precomputed from the subspace's arity.
type subspaceState struct {
	total core.PCS // subspace-wide decayed totals
	// Representatives: the k densest cells seen, maintained greedily
	// in O(k) per touch, never a table scan. repDc fades with the
	// stream so a once-dense cell whose cluster drifts away is
	// eventually evicted instead of lingering as a ghost
	// representative. All slots decay by the same factor, so one
	// shared repsLast tick covers the set, and because decay factors
	// compose the refresh is batched every repDecayStride ticks —
	// densities are stale by at most one stride, which biases no
	// comparison meaningfully but cuts the hot-path multiplies 32×.
	repKey   []uint64
	repDc    []float64
	repsLast uint64

	size       uint8   // subspace arity
	phiPow     float64 // φ^arity, the cell count under uniformity
	invMaxDist float64 // 1/((φ-1)*arity); 0 when φ==1
}

// shard owns an exclusive partition of the SST: the cell table, totals
// and representatives of its subspaces. Only one goroutine ever touches
// a shard's state, so the hot path is lock-free.
type shard struct {
	det  *Detector
	id   int
	subs []uint32 // subspace IDs owned by this shard

	states []subspaceState
	cells  map[uint64]uint32 // cell key -> index into pcs
	pcs    []core.PCS

	scratch []uint8  // per-dimension interval indices of the current point
	verdict []uint64 // per-batch verdict bitset (batch mode only)
}

func newShard(d *Detector, id int) *shard {
	return &shard{
		det:     d,
		id:      id,
		cells:   make(map[uint64]uint32),
		scratch: make([]uint8, d.cfg.Dims),
	}
}

func (s *shard) addSubspace(id uint32) {
	s.subs = append(s.subs, id)
	phi := s.det.grid.Phi()
	size := s.det.tmpl.Size(int(id))
	st := subspaceState{
		repKey: make([]uint64, s.det.cfg.K),
		repDc:  make([]float64, s.det.cfg.K),
		size:   uint8(size),
		phiPow: math.Pow(float64(phi), float64(size)),
	}
	for i := range st.repKey {
		st.repKey[i] = repEmpty
	}
	if phi > 1 {
		st.invMaxDist = 1 / float64((phi-1)*size)
	}
	s.states = append(s.states, st)
}

// processPoint folds one point observed at tick into every subspace the
// shard owns and reports whether any of them finds it outlying. Zero
// heap allocations when the point's cells already exist.
func (s *shard) processPoint(point []float64, tick uint64) bool {
	s.det.grid.Intervals(point, s.scratch)
	decay := s.det.decay
	cfg := &s.det.cfg
	out := false
	for li, sid := range s.subs {
		st := &s.states[li]
		dims := s.det.tmpl.Dims(int(sid))
		// Assemble the packed cell key and the projected magnitude in
		// one pass over the subspace's dimensions.
		key := uint64(sid) << core.SubspaceShift
		m := 0.0
		for j, dim := range dims {
			key |= uint64(s.scratch[dim]) << (uint(j) * core.CoordBits)
			m += point[dim]
		}
		st.total.Touch(decay, tick, m)
		idx, ok := s.cells[key]
		if !ok {
			idx = uint32(len(s.pcs))
			s.pcs = append(s.pcs, core.PCS{Last: tick})
			s.cells[key] = idx
		}
		p := &s.pcs[idx]
		p.Touch(decay, tick, m)
		s.maintainReps(st, key, p.Dc, tick)
		if st.total.Dc >= cfg.Warmup && s.outlying(st, key, p) {
			out = true
		}
	}
	return out
}

// processBatch runs a whole batch through the shard, recording verdicts
// in the shard-local bitset (merged by the dispatcher).
func (s *shard) processBatch(jb job) {
	words := (jb.n + 63) >> 6
	if cap(s.verdict) < words {
		s.verdict = make([]uint64, words)
	} else {
		s.verdict = s.verdict[:words]
		for i := range s.verdict {
			s.verdict[i] = 0
		}
	}
	d := s.det.cfg.Dims
	for i := 0; i < jb.n; i++ {
		if s.processPoint(jb.flat[i*d:(i+1)*d], jb.t0+uint64(i)+1) {
			s.verdict[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}

// maintainReps keeps the k densest cells of the subspace as IkRD
// representatives: an O(k) update per touch, never a table scan. Each
// slot's density is faded to the current tick before comparison so
// representatives of vanished clusters decay and get evicted.
func (s *shard) maintainReps(st *subspaceState, key uint64, dc float64, tick uint64) {
	if dt := tick - st.repsLast; dt >= repDecayStride {
		f := s.det.decay.At(dt)
		for i := range st.repDc {
			st.repDc[i] *= f
		}
		st.repsLast = tick
	}
	minI := 0
	for i := range st.repKey {
		if st.repKey[i] == key {
			st.repDc[i] = dc
			return
		}
		if st.repDc[i] < st.repDc[minI] {
			minI = i
		}
	}
	if dc > st.repDc[minI] {
		st.repKey[minI] = key
		st.repDc[minI] = dc
	}
}

// outlying evaluates the three PCS-derived measures for the cell the
// current point landed in. The point is an outlier in this subspace if
// any enabled measure falls below its threshold. Cells at or above the
// subspace's average density can never be outlying, so the costlier
// IRSD/IkRD evaluations are gated behind RD < 1.
func (s *shard) outlying(st *subspaceState, key uint64, p *core.PCS) bool {
	cfg := &s.det.cfg
	// Relative Density: cell density over the expected density if the
	// subspace's decayed weight were spread uniformly over its φ^k
	// cells. Effective for low arities; see Config.RDThreshold for
	// the arity-dependent floor that makes IkRD/IRSD carry detection
	// in higher-arity subspaces.
	rd := p.Dc * st.phiPow / st.total.Dc
	if rd < cfg.RDThreshold {
		return true
	}
	if rd >= 1 {
		return false
	}
	if cfg.IRSDThreshold > 0 {
		// Inverse Relative Standard Deviation: how far the cell's
		// mean member magnitude sits from the subspace mean, in
		// subspace standard deviations, mapped to (0,1] by 1/(1+z).
		sigma := st.total.Sigma()
		if sigma > 0 {
			z := math.Abs(p.Mean()-st.total.Mean()) / sigma
			if 1/(1+z) < cfg.IRSDThreshold {
				return true
			}
		}
	}
	if cfg.IkRDThreshold > 0 && st.invMaxDist > 0 {
		// Inverse k-Relative Distance: mean grid (L1) distance from
		// the cell to the subspace's k densest cells, normalized by
		// the subspace's diameter and inverted so that far-from-
		// everything cells score low.
		sum, cnt := 0.0, 0
		for i, rk := range st.repKey {
			if st.repDc[i] <= 0 || rk == key {
				continue
			}
			dist := 0
			for j := 0; j < int(st.size); j++ {
				dj := int(core.CoordAt(key, j)) - int(core.CoordAt(rk, j))
				if dj < 0 {
					dj = -dj
				}
				dist += dj
			}
			sum += float64(dist)
			cnt++
		}
		if cnt > 0 {
			ikrd := 1 - (sum/float64(cnt))*st.invMaxDist
			if ikrd < cfg.IkRDThreshold {
				return true
			}
		}
	}
	return false
}
