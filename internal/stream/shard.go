package stream

import (
	"math"

	"spot/internal/core"
	"spot/internal/sst"
)

// repEmpty marks an unused representative slot; no real cell key uses
// subspace ID 2^24-1 together with all-ones coordinates.
const repEmpty = ^uint64(0)

// repDecayStride is how many ticks of fading may accumulate on the
// representative densities before they are brought current. Kept below
// the decay table size so the refresh stays a table lookup.
const repDecayStride = 32

// subspaceState is the per-subspace state a shard owns exclusively,
// laid out so one sequential walk over the states slice brings
// everything processPoint needs into cache: the subspace's member
// dimensions and packed-key base (copied out of the shared template at
// addSubspace time, so the hot loop never chases the template), the
// arity-derived constants, the decayed subspace totals (density plus
// magnitude moments, reusing PCS), and the greedily-maintained
// representative (densest-cell) set for IkRD.
type subspaceState struct {
	// Flattened subspace layout: member dimensions inline (first size
	// entries used) and the subspace ID pre-shifted into key position.
	dims    [core.MaxSubspaceDims]uint16
	keyBase uint64 // uint64(sid) << core.SubspaceShift

	total core.PCS // subspace-wide decayed totals

	// repsLast is the tick the subspace's representative densities
	// (kept in the shard's contiguous repKeys/repDcs arrays) were last
	// faded to. repMin/repMinI cache the sparsest representative so the
	// hot path can reject most touches with one compare: a cell's
	// stored representative density never exceeds the cell's current
	// density, so dc ≤ repMin means the touch can neither displace the
	// minimum nor meaningfully refresh a slot.
	repsLast uint64
	repMin   float64
	repMinI  int32

	// popFloor is the precomputed arity-aware RD flag threshold:
	// Config.RDPopulatedThreshold times the latest sweep's average
	// populated-cell density of this arity, zero while disabled or
	// before the first sweep. Refreshing it per sweep turns the hot
	// path's test into one compare against a cache-resident field.
	popFloor float64

	// rdThr/irsdThr/ikrdThr are the subspace's verdict thresholds for
	// the three measures. Without auto-thresholding they are exact
	// copies of the Config values (set once at addSubspace, so the hot
	// path reads the same cache line as the rest of the state instead
	// of the shared config); with Config.AutoThreshold they are
	// overwritten at every sweep with the calibrated per-arity
	// thresholds (refreshAutoThresholds).
	rdThr   float64
	irsdThr float64
	ikrdThr float64

	size       uint8   // subspace arity
	phiPow     float64 // φ^arity, the cell count under uniformity
	invMaxDist float64 // 1/((φ-1)*arity); 0 when φ==1

	// skipCoalesce is the adaptive gate of the coalesced batch path:
	// when a grouping pass finds almost no duplication (distinct cells
	// above the coalesceDupNum/coalesceDupDen fraction of the batch),
	// the next skipCoalesce batches of this subspace take the fused
	// pointwise TouchCols instead, then one batch re-groups to
	// re-measure. Duplication is a property of the
	// subspace's projection (low-arity subspaces have few cells, high-
	// arity ones many), so the gate is per subspace; it depends only on
	// the subspace's own stream, never on shard layout, and both paths
	// produce bit-identical summaries, so verdicts are unaffected.
	skipCoalesce uint8
}

// shard owns an exclusive partition of the SST: the cell table, totals
// and representatives of its subspaces. Only one goroutine ever touches
// a shard's state while points flow, so the hot path is lock-free.
// Epoch sweeps run either inline on the dispatcher goroutine or — in
// batch mode — fanned out to the shard workers themselves (each shard's
// table is exclusive either way); evolved-subspace add/remove always
// runs on the dispatcher with workers idle.
type shard struct {
	det  *Detector
	id   int
	subs []uint32 // subspace IDs owned by this shard

	states []subspaceState
	table  *core.PCSTable // cell key -> PCS, sweepable

	// Per-point pass scratch, one entry per owned subspace: cell keys,
	// projected magnitudes, resolved dense slots and post-touch cell
	// densities. Splitting the point's update into array passes makes
	// the random table accesses of neighboring subspaces independent,
	// so the CPU overlaps their cache misses instead of serializing
	// each subspace's full chain.
	keyScratch  []uint64
	magScratch  []float64
	slotScratch []uint32
	dcScratch   []float64

	// Batch-mode scratch, one entry per point of the current batch
	// (the subspace-major tiling of processBatch transposes the pass
	// structure: the arrays then span the batch's points for one
	// subspace at a time), plus the column headers handed to
	// core.TouchCols.
	bKeys []uint64
	bMags []float64
	bSS   []float64
	bDcs  []float64
	colC  [][]uint8
	colV  [][]float64

	// Representatives: the k densest cells of every owned subspace,
	// maintained greedily in O(k) per touch, never a table scan.
	// Subspace li owns entries [li*K, (li+1)*K). One contiguous
	// backing per shard keeps the per-touch rep scan on the same
	// cache-resident stride as the states walk instead of chasing
	// per-subspace heap slices. repDcs fades with the stream so a
	// once-dense cell whose cluster drifts away is eventually evicted
	// instead of lingering as a ghost representative; all of a
	// subspace's slots decay by the same factor, so one shared
	// repsLast tick covers its set, and because decay factors compose
	// the refresh is batched every repDecayStride ticks — densities
	// are stale by at most one stride, which biases no comparison
	// meaningfully but cuts the hot-path multiplies 32×.
	repKeys []uint64
	repDcs  []float64

	verdict []uint64 // per-batch verdict bitset (batch mode only)

	// grouper is the batch-coalescing scratch, shared across the
	// shard's subspaces: one subspace groups, folds and finishes its
	// verdict pass before the next subspace regroups, so a single
	// grouper per shard keeps the whole coalesced path at zero
	// steady-state allocations. coalPoints/coalDistinct/coalGroupings
	// count the points, distinct cells and passes of every grouping —
	// the duplication statistics Stats and the bench harness report.
	grouper       core.Grouper
	coalPoints    uint64
	coalDistinct  uint64
	coalGroupings uint64

	sweepEvicted int           // eviction count of the last sweep (read after workers sync)
	sweepEvolved []evolvedCell // per-sweep scratch: surviving evolved-subspace cells

	// Auto-threshold sample buffers (Config.AutoThreshold): the
	// shard's per-(measure, arity) minima of the per-point measure
	// values at each sampled tick slot of the current epoch (+Inf when
	// no warm owned subspace contributed). Min-merged across shards by
	// the dispatcher's autoRefit after the sweep joins, then reset.
	autoSamp [autoMeasures][core.MaxSubspaceDims + 1][]float64

	// attr collects this shard's attribution entries for the current
	// point/batch when Config.Scoring is set: one entry per flagged
	// (subspace, cell) pair, point indices relative to the chunk. The
	// shard writes it lock-free during its verdict pass; the
	// dispatcher reads it after the batch joins, merges across shards
	// and sorts, so scores never depend on the shard layout.
	attr attrBuf
}

// Adaptive-gate constants of the coalesced batch path: a grouping pass
// that finds more than (coalesceDupNum/coalesceDupDen)·n distinct
// cells — i.e. almost every point in its own cell, so
// one-probe-per-cell saves nothing over one-probe-per-point — sends
// the subspace to the fused TouchCols for coalesceBackoff batches
// before re-measuring. Sub-batches under coalesceMinBatch points (an
// epoch split can cut a batch to a handful) take the fused path
// outright, without touching the gate: their distinct ratio is high by
// construction and grouping them would pay the scratch-index clear for
// nothing.
const (
	coalesceBackoff  = 31
	coalesceMinBatch = 64
	coalesceDupNum   = 7
	coalesceDupDen   = 8
)

// evolvedCell is a surviving evolved-subspace cell recorded during a
// sweep, revisited for sparse classification once its subspace's
// average is known.
type evolvedCell struct {
	sid uint32
	dc  float64
}

func newShard(d *Detector, id int) *shard {
	s := &shard{
		det:   d,
		id:    id,
		table: core.NewPCSTable(),
		colC:  make([][]uint8, 0, core.MaxSubspaceDims),
		colV:  make([][]float64, 0, core.MaxSubspaceDims),
	}
	if d.auto != nil {
		for m := range s.autoSamp {
			for ar := 1; ar <= core.MaxSubspaceDims; ar++ {
				s.autoSamp[m][ar] = make([]float64, d.auto.nSlots)
			}
		}
		s.resetAutoSamples()
	}
	return s
}

// addSubspace hands the shard ownership of subspace id, flattening the
// subspace's dimensions and constants into the shard-local state so the
// hot path never reads the shared template. Called at construction for
// the fixed group and from the epoch path for promoted evolved
// subspaces; never while workers are processing.
func (s *shard) addSubspace(id uint32) {
	s.subs = append(s.subs, id)
	phi := s.det.grid.Phi()
	size := s.det.tmpl.Size(int(id))
	st := subspaceState{
		keyBase: uint64(id) << core.SubspaceShift,
		size:    uint8(size),
		phiPow:  math.Pow(float64(phi), float64(size)),
		rdThr:   s.det.cfg.RDThreshold,
		irsdThr: s.det.cfg.IRSDThreshold,
		ikrdThr: s.det.cfg.IkRDThreshold,
	}
	copy(st.dims[:], s.det.tmpl.Dims(int(id)))
	if phi > 1 {
		st.invMaxDist = 1 / float64((phi-1)*size)
	}
	s.states = append(s.states, st)
	s.keyScratch = append(s.keyScratch, 0)
	s.magScratch = append(s.magScratch, 0)
	s.slotScratch = append(s.slotScratch, 0)
	s.dcScratch = append(s.dcScratch, 0)
	for i := 0; i < s.det.cfg.K; i++ {
		s.repKeys = append(s.repKeys, repEmpty)
		s.repDcs = append(s.repDcs, 0)
	}
}

// removeSubspace drops a demoted subspace: its per-subspace state goes
// by swap-remove and every one of its cells is purged from the table so
// a later reuse of the ID starts from nothing. Epoch-path only.
func (s *shard) removeSubspace(id uint32) {
	for i, sid := range s.subs {
		if sid != id {
			continue
		}
		last := len(s.subs) - 1
		s.subs[i] = s.subs[last]
		s.subs = s.subs[:last]
		s.states[i] = s.states[last]
		s.states = s.states[:last]
		k := s.det.cfg.K
		copy(s.repKeys[i*k:(i+1)*k], s.repKeys[last*k:(last+1)*k])
		copy(s.repDcs[i*k:(i+1)*k], s.repDcs[last*k:(last+1)*k])
		s.repKeys = s.repKeys[:last*k]
		s.repDcs = s.repDcs[:last*k]
		break
	}
	s.keyScratch = s.keyScratch[:len(s.states)]
	s.magScratch = s.magScratch[:len(s.states)]
	s.slotScratch = s.slotScratch[:len(s.states)]
	s.dcScratch = s.dcScratch[:len(s.states)]
	s.table.EvictIf(func(key uint64) bool {
		return uint32(key>>core.SubspaceShift) == id
	})
}

// processPoint folds one point observed at tick into every subspace the
// shard owns and reports whether any of them finds it outlying. coords
// holds the point's per-dimension interval indices, computed once per
// point by the dispatcher's discretization plane. Zero heap allocations
// when the point's cells already exist.
//
// The update is staged into array passes rather than one loop doing
// everything per subspace: the table accesses of different subspaces
// are random but mutually independent, so separating "resolve all
// slots" from "touch all cells" lets the out-of-order core keep many
// index/cell cache misses in flight at once, where the fused loop
// serialized each subspace's probe → summary → verdict chain. The
// per-subspace results are identical either way — subspaces share no
// state within a point.
func (s *shard) processPoint(point []float64, coords []uint8, tick uint64) bool {
	decay := s.det.decay
	cfg := &s.det.cfg
	tbl := s.table
	n := len(s.states)
	keys := s.keyScratch[:n]
	mags := s.magScratch[:n]
	slots := s.slotScratch[:n]
	dcs := s.dcScratch[:n]
	// Pass 1: assemble every subspace's packed cell key and projected
	// magnitude, and fold the subspace totals (the body of PCS.Touch,
	// inlined: a call per subspace would cost more than the fold) — a
	// sequential walk over the shard-local flattened layout, no random
	// access. Arities 1–3 (the fixed group's bulk) get unrolled key
	// assembly with constant shifts; the template enumerates by
	// increasing arity and shards deal round-robin, so the switch runs
	// in long predictable runs.
	for li := range s.states {
		st := &s.states[li]
		key := st.keyBase
		var m float64
		switch st.size {
		case 1:
			d0 := st.dims[0]
			key |= uint64(coords[d0])
			m = point[d0]
		case 2:
			d0, d1 := st.dims[0], st.dims[1]
			key |= uint64(coords[d0]) | uint64(coords[d1])<<core.CoordBits
			m = point[d0] + point[d1]
		case 3:
			d0, d1, d2 := st.dims[0], st.dims[1], st.dims[2]
			key |= uint64(coords[d0]) | uint64(coords[d1])<<core.CoordBits | uint64(coords[d2])<<(2*core.CoordBits)
			m = point[d0] + point[d1] + point[d2]
		default:
			for j, dim := range st.dims[:st.size] {
				key |= uint64(coords[dim]) << (uint(j) * core.CoordBits)
				m += point[dim]
			}
		}
		keys[li] = key
		mags[li] = m
		tt := &st.total
		if tt.Last != tick {
			f := decay.At(tick - tt.Last)
			tt.Dc *= f
			tt.S *= f
			tt.Q *= f
			tt.Last = tick
		}
		tt.Dc++
		tt.S += m
		tt.Q += m * m
	}
	// Pass 2: resolve every key to its cell and fold the point in, one
	// call-free loop inside the table so the independent index and
	// cell-line misses of neighboring subspaces overlap; the post-touch
	// densities come back in the dense dcs array. Slots stay valid
	// across the inserts (appends never move existing cells).
	tbl.TouchBatch(decay, tick, keys, mags, slots, dcs)
	// Pass 3: representatives and verdicts — a purely sequential walk
	// over states, reps and dcs; the only random access left is the
	// rare outlyingSlow call. The cheap all-measures-pass verdict exit
	// is decided inline — one multiply and three compares, no division
	// — and only cells that flag on RD, sit under the populated floor,
	// or fall below the uniform expectation (rd < 1, the gate for the
	// costlier IRSD/IkRD measures) take the outlyingSlow call.
	out := false
	warmup := cfg.Warmup
	k := cfg.K
	scoring := cfg.Scoring
	if scoring {
		s.attr.reset()
	}
	// Auto-thresholding samples the per-point measure values on a
	// deterministic tick stride (see autoState.sampleSlot).
	sampleSlot := -1
	if a := s.det.auto; a != nil {
		sampleSlot = a.sampleSlot(tick, cfg.EpochTicks)
	}
	rb := 0
	for li := range s.states {
		st := &s.states[li]
		key := keys[li]
		dc := dcs[li]
		repKey := s.repKeys[rb : rb+k]
		repDc := s.repDcs[rb : rb+k]
		rb += k
		// Fade the representative densities to the current tick in
		// strides (decay factors compose, so one batched multiply per
		// stride is exact up to rounding).
		if dt := tick - st.repsLast; dt >= repDecayStride {
			f := decay.At(dt)
			for i := range repDc {
				repDc[i] *= f
			}
			st.repMin *= f
			st.repsLast = tick
		}
		// Representative update behind the cached-minimum gate: a
		// touch with dc ≤ repMin can only be the minimum slot
		// refreshing itself with its unchanged density, a no-op. Past
		// the gate, refresh the slot this cell already holds (found
		// branchlessly for the default K, see processBatch) or
		// displace the sparsest representative, recomputing the cached
		// minimum when it was the one written.
		if dc > st.repMin {
			found := -1
			if k == 3 {
				if repKey[2] == key {
					found = 2
				}
				if repKey[1] == key {
					found = 1
				}
				if repKey[0] == key {
					found = 0
				}
			} else {
				for i := range repKey {
					if repKey[i] == key {
						found = i
						break
					}
				}
			}
			if found < 0 {
				found = int(st.repMinI)
				repKey[found] = key
			}
			repDc[found] = dc
			if found == int(st.repMinI) {
				st.repMin = repDc[0]
				st.repMinI = 0
				for i := 1; i < k; i++ {
					if repDc[i] < st.repMin {
						st.repMin = repDc[i]
						st.repMinI = int32(i)
					}
				}
			}
		}
		tot := st.total.Dc
		if tot < warmup {
			continue
		}
		// rd := dc * phiPow / tot, compared multiplicatively: the flag
		// test rd < RDThreshold and the IRSD/IkRD gate rd < 1 become
		// one multiply each instead of a division per subspace.
		lhs := dc * st.phiPow
		if sampleSlot >= 0 {
			s.foldAutoSample(st, li, key, lhs, dc, tbl.CellAt(slots[li]).S, tot, st.total.S, st.total.Q, sampleSlot)
		}
		if scoring {
			fired, sev := s.scoredVerdict(st, li, key, lhs, dc, tbl.CellAt(slots[li]).S, tot, st.total.S, st.total.Q, st.rdThr)
			if fired != 0 {
				out = true
				s.attr.add(0, s.subs[li], key, fired, sev)
			}
			continue
		}
		if lhs < st.rdThr*tot || dc < st.popFloor {
			out = true
		} else if lhs < tot && s.outlyingSlow(st, li, key, tbl.CellAt(slots[li]).Mean(), tot, st.total.S, st.total.Q) {
			out = true
		}
	}
	return out
}

// processBatch runs a whole batch through the shard, recording verdicts
// in the shard-local bitset (OR-merged word-wise by the dispatcher).
//
// The batch is processed subspace-major: for each owned subspace, all n
// points run through the same three passes processPoint uses, before
// moving to the next subspace. One subspace's points revisit a small
// recurring cell set, so its index buckets, cell lines and
// representative set stay L1-resident across the whole batch — where
// the point-major order re-streamed the entire cell table (hundreds of
// KiB) once per point. Every per-(subspace, point) computation is the
// same as in processPoint and runs in the same per-point tick order
// within a subspace, so verdicts are identical; only the interleaving
// across subspaces — which shares no state — differs.
//
// Pass A+B come in two equivalent flavors. The default coalesced path
// assembles the subspace's keys, groups the batch by cell
// (core.Grouper) and probes the table once per *distinct* cell, folding
// each cell's run of touches with the summary in registers
// (core.TouchRuns) — on a dense stream most of a batch lands in a few
// cells per subspace, so the per-point index probe and cell-line
// traffic collapse into one per cell. The fused TouchCols
// (assemble+probe+fold per point) remains as the fallback, taken when
// Config.NoCoalesce is set or the subspace's adaptive gate saw no
// duplication worth grouping. Both fold the identical arithmetic in
// the identical per-cell tick order, so summaries — and therefore
// verdicts — are bit-identical either way.
func (s *shard) processBatch(jb job) {
	words := (jb.n + 63) >> 6
	if cap(s.verdict) < words {
		s.verdict = make([]uint64, words)
	} else {
		s.verdict = s.verdict[:words]
		clear(s.verdict)
	}
	n := jb.n
	if cap(s.bMags) < n {
		s.bKeys = make([]uint64, n)
		s.bMags = make([]float64, n)
		s.bSS = make([]float64, n)
		s.bDcs = make([]float64, n)
	}
	keys := s.bKeys[:n]
	mags := s.bMags[:n]
	ss := s.bSS[:n]
	dcs := s.bDcs[:n]
	verdict := s.verdict
	decay := s.det.decay
	cfg := &s.det.cfg
	tbl := s.table
	warmup := cfg.Warmup
	k := cfg.K
	scoring := cfg.Scoring
	if scoring {
		s.attr.reset()
	}
	f1 := decay.At(1)
	flatT, planeT := jb.flatT, jb.planeT
	noCoalesce := cfg.NoCoalesce
	// Auto-thresholding samples the per-point measure values on a
	// deterministic tick stride; batches never cross an epoch
	// boundary, so the slot of tick t0+i+1 is epoch-relative exactly
	// as in the pointwise path.
	auto := s.det.auto
	rb := 0
	for li := range s.states {
		st := &s.states[li]
		repKey := s.repKeys[rb : rb+k]
		repDc := s.repDcs[rb : rb+k]
		rb += k
		cc := s.colC[:0]
		vv := s.colV[:0]
		for j := 0; j < int(st.size); j++ {
			off := int(st.dims[j]) * n
			cc = append(cc, planeT[off:off+n])
			vv = append(vv, flatT[off:off+n])
		}
		// Pass A+B: coalesced (group by cell, one probe per distinct
		// cell, run folds) unless the escape hatch, a tiny epoch-split
		// sub-batch (nothing to amortize, and grouping would clear the
		// steady-state-sized scratch index per subspace for it) or the
		// adaptive gate routes this subspace to the fused per-point
		// TouchCols.
		if noCoalesce || n < coalesceMinBatch || st.skipCoalesce > 0 {
			if !noCoalesce && n >= coalesceMinBatch {
				st.skipCoalesce--
			}
			tbl.TouchCols(decay, jb.t0, st.keyBase, cc, vv, keys, mags, ss, dcs)
		} else {
			core.AssembleCols(st.keyBase, cc, vv, keys, mags)
			s.grouper.Group(keys)
			distinct := s.grouper.Groups()
			s.coalPoints += uint64(n)
			s.coalDistinct += uint64(distinct)
			s.coalGroupings++
			tbl.TouchRuns(decay, jb.t0, &s.grouper, mags, ss, dcs)
			if distinct*coalesceDupDen > n*coalesceDupNum {
				st.skipCoalesce = coalesceBackoff
			}
		}
		// Pass C: totals fold (the body of PCS.Touch, inlined), IkRD
		// representative upkeep and verdicts, per point in tick order —
		// the subspace totals trajectory each point's verdict compares
		// against is exactly the pointwise one. The subspace's scalar
		// state lives in locals across the loop (written back once) so
		// the per-point work reads registers, not the state struct.
		tt := &st.total
		tdc, ts, tq, tlast := tt.Dc, tt.S, tt.Q, tt.Last
		repMin, repMinI, repsLast := st.repMin, st.repMinI, st.repsLast
		phiPow, popFloor, rdThr := st.phiPow, st.popFloor, st.rdThr
		tick := jb.t0
		for i := 0; i < n; i++ {
			tick++
			m := mags[i]
			// Totals see every tick, so after the first point the fade
			// gap is exactly one — the hoisted f1 skips the table
			// lookup on the steady path.
			if tlast+1 == tick {
				tdc *= f1
				ts *= f1
				tq *= f1
				tlast = tick
			} else if tlast != tick {
				f := decay.At(tick - tlast)
				tdc *= f
				ts *= f
				tq *= f
				tlast = tick
			}
			tdc++
			ts += m
			tq += m * m
			key := keys[i]
			dc := dcs[i]
			if dt := tick - repsLast; dt >= repDecayStride {
				f := decay.At(dt)
				for j := range repDc {
					repDc[j] *= f
				}
				repMin *= f
				repsLast = tick
			}
			// Representative update behind the cached-minimum gate;
			// see processPoint for the reasoning.
			if dc > repMin {
				found := -1
				if k == 3 {
					// Branchless slot find for the default K:
					// conditional moves instead of a loop whose exit
					// position the predictor cannot guess.
					if repKey[2] == key {
						found = 2
					}
					if repKey[1] == key {
						found = 1
					}
					if repKey[0] == key {
						found = 0
					}
				} else {
					for j := range repKey {
						if repKey[j] == key {
							found = j
							break
						}
					}
				}
				if found < 0 {
					found = int(repMinI)
					repKey[found] = key
				}
				repDc[found] = dc
				if found == int(repMinI) {
					repMin = repDc[0]
					repMinI = 0
					for j := 1; j < k; j++ {
						if repDc[j] < repMin {
							repMin = repDc[j]
							repMinI = int32(j)
						}
					}
				}
			}
			if tdc < warmup {
				continue
			}
			lhs := dc * phiPow
			if auto != nil {
				if slot := auto.sampleSlot(tick, cfg.EpochTicks); slot >= 0 {
					s.foldAutoSample(st, li, key, lhs, dc, ss[i], tdc, ts, tq, slot)
				}
			}
			if scoring {
				if fired, sev := s.scoredVerdict(st, li, key, lhs, dc, ss[i], tdc, ts, tq, rdThr); fired != 0 {
					verdict[i>>6] |= 1 << (uint(i) & 63)
					s.attr.add(int32(i), s.subs[li], key, fired, sev)
				}
				continue
			}
			if lhs < rdThr*tdc || dc < popFloor {
				verdict[i>>6] |= 1 << (uint(i) & 63)
			} else if lhs < tdc && s.outlyingSlow(st, li, key, ss[i]/dc, tdc, ts, tq) {
				verdict[i>>6] |= 1 << (uint(i) & 63)
			}
		}
		tt.Dc, tt.S, tt.Q, tt.Last = tdc, ts, tq, tlast
		st.repMin, st.repMinI, st.repsLast = repMin, repMinI, repsLast
	}
}

// sweep is the shard's slice of the epoch sweep: one linear pass over
// the cell table evicting summaries whose decayed density fell below
// eps and accumulating per-subspace populated/total statistics. When an
// evolver needs sparse counts, surviving evolved-subspace cells (few —
// the fixed group dominates the table) are remembered during the same
// pass and classified against their subspace's average afterwards, so
// the extra work is proportional to the evolved group's cells, not the
// table. Each subspace is owned by exactly one shard, so concurrent
// shard sweeps write disjoint perSub entries — the dispatcher may run
// all shards' sweeps in parallel on the shard workers. Returns the
// eviction count.
func (s *shard) sweep(tick uint64, eps float64, perSub []sst.SubspaceStats) int {
	tmpl := s.det.tmpl
	collect := s.det.cfg.Evolver != nil
	s.sweepEvolved = s.sweepEvolved[:0]
	evicted := s.table.Sweep(s.det.decay, tick, eps, func(key uint64, dc float64) {
		sid := uint32(key >> core.SubspaceShift)
		sub := &perSub[sid]
		sub.Populated++
		sub.TotalDc += dc
		if collect && !tmpl.IsFixed(int(sid)) {
			s.sweepEvolved = append(s.sweepEvolved, evolvedCell{sid: sid, dc: dc})
		}
	})
	if evicted > 0 {
		s.purgeEvictedReps()
	}
	if collect {
		ratio := s.det.cfg.SweepSparseRatio
		for _, c := range s.sweepEvolved {
			sub := &perSub[c.sid]
			if c.dc < ratio*sub.TotalDc/float64(sub.Populated) {
				sub.Sparse++
			}
		}
	}
	return evicted
}

// purgeEvictedReps drops representative entries whose cells the sweep
// just evicted and refreshes each affected subspace's cached minimum.
// This keeps the hot path's repMin gate sound: the gate's invariant —
// a representative's stored density never exceeds its cell's current
// density — holds for live cells but breaks when an evicted cell is
// re-created from zero, which would otherwise leave a ghost
// representative pinning a dead cluster into IkRD for thousands of
// ticks. Cells are only evicted by sweeps, so checking here re-
// establishes the invariant for the whole epoch. O(subspaces · K)
// probes, once per sweep.
func (s *shard) purgeEvictedReps() {
	k := s.det.cfg.K
	for li := range s.states {
		st := &s.states[li]
		repKey := s.repKeys[li*k : li*k+k]
		repDc := s.repDcs[li*k : li*k+k]
		changed := false
		for i, key := range repKey {
			if key != repEmpty && !s.table.Contains(key) {
				repKey[i] = repEmpty
				repDc[i] = 0
				changed = true
			}
		}
		if changed {
			st.repMin = repDc[0]
			st.repMinI = 0
			for i := 1; i < k; i++ {
				if repDc[i] < st.repMin {
					st.repMin = repDc[i]
					st.repMinI = int32(i)
				}
			}
		}
	}
}

// refreshPopFloors recomputes every owned subspace's precomputed
// arity-aware RD floor from the detector's per-arity populated
// averages. Called from the epoch path after each sweep publishes new
// averages; the floor is zero when the test is disabled or the arity
// has no swept cells yet, which disables the hot path's compare.
func (s *shard) refreshPopFloors() {
	thr := s.det.cfg.RDPopulatedThreshold
	if thr <= 0 {
		return
	}
	for i := range s.states {
		st := &s.states[i]
		st.popFloor = thr * s.det.popAvg[st.size]
	}
}

// outlyingSlow evaluates the measures the inline verdict fast path
// cannot decide: the RD flag, the arity-aware populated-RD flag and
// the RD < 1 exit run inline (when a subspace's mass concentrates in
// few cells, a cell can sit at or above the uniform expectation yet
// still be far below its populated peers, so the populated floor is
// checked before the rd < 1 gate), and only cells below the uniform
// expectation reach the IRSD/IkRD evaluations here. The cell's mean
// member magnitude and the subspace totals are passed as scalars,
// snapshotted at the point's tick: the batch path keeps the totals in
// registers (st.total is written back only at batch end) and the cell
// line keeps absorbing later points of the same batch, so neither may
// be re-read here.
func (s *shard) outlyingSlow(st *subspaceState, li int, key uint64, cellMean, tdc, ts, tq float64) bool {
	cfg := &s.det.cfg
	if st.irsdThr > 0 && tdc > 0 {
		// Inverse Relative Standard Deviation: how far the cell's
		// mean member magnitude sits from the subspace mean, in
		// subspace standard deviations, mapped to (0,1] by 1/(1+z).
		mu := ts / tdc
		if v := tq/tdc - mu*mu; v > 0 {
			z := math.Abs(cellMean-mu) / math.Sqrt(v)
			if 1/(1+z) < st.irsdThr {
				return true
			}
		}
	}
	if st.ikrdThr > 0 && st.invMaxDist > 0 {
		// Inverse k-Relative Distance: mean grid (L1) distance from
		// the cell to the subspace's k densest cells, normalized by
		// the subspace's diameter and inverted so that far-from-
		// everything cells score low.
		k := cfg.K
		repKey := s.repKeys[li*k : li*k+k]
		repDc := s.repDcs[li*k : li*k+k]
		sum, cnt := 0.0, 0
		for i, rk := range repKey {
			if repDc[i] <= 0 || rk == key {
				continue
			}
			dist := 0
			for j := 0; j < int(st.size); j++ {
				dj := int(core.CoordAt(key, j)) - int(core.CoordAt(rk, j))
				if dj < 0 {
					dj = -dj
				}
				dist += dj
			}
			sum += float64(dist)
			cnt++
		}
		if cnt > 0 {
			ikrd := 1 - (sum/float64(cnt))*st.invMaxDist
			if ikrd < st.ikrdThr {
				return true
			}
		}
	}
	return false
}

// scoredVerdict is the scoring-path verdict for one (subspace, cell)
// pair: the same gate set as the unscored fast path — RD, the
// populated floor, and IRSD/IkRD behind the rd < 1 gate — but
// returning the full set of fired measures and the maximum normalized
// deficit (core.Deficit) among them instead of short-circuiting on the
// first hit. fired != 0 exactly when the unscored path would have
// flagged, which is what keeps verdict bits identical with scoring on.
// cellS is the cell's post-touch decayed magnitude sum; the mean is
// only derived past the rd < 1 gate, mirroring the unscored cost
// profile. Reached only past the warmup gate.
func (s *shard) scoredVerdict(st *subspaceState, li int, key uint64, lhs, dc, cellS, tdc, ts, tq, rdThr float64) (core.Measure, float64) {
	var fired core.Measure
	var sev float64
	if rhs := rdThr * tdc; lhs < rhs {
		fired = core.MeasureRD
		sev = core.Deficit(lhs, rhs)
	}
	if dc < st.popFloor {
		fired |= core.MeasureRDPopulated
		if s2 := core.Deficit(dc, st.popFloor); s2 > sev {
			sev = s2
		}
	}
	if lhs < tdc {
		f2, s2 := s.slowMeasures(st, li, key, cellS/dc, tdc, ts, tq)
		fired |= f2
		if s2 > sev {
			sev = s2
		}
	}
	return fired, sev
}

// slowMeasures is outlyingSlow retaining magnitudes: it evaluates both
// IRSD and IkRD (no short-circuit — attribution wants every fired
// measure) under the identical firing conditions and returns the fired
// set with the larger deficit. outlyingSlow returns true iff this
// returns a non-empty set, for the same inputs.
func (s *shard) slowMeasures(st *subspaceState, li int, key uint64, cellMean, tdc, ts, tq float64) (core.Measure, float64) {
	cfg := &s.det.cfg
	var fired core.Measure
	var sev float64
	if st.irsdThr > 0 && tdc > 0 {
		mu := ts / tdc
		if v := tq/tdc - mu*mu; v > 0 {
			z := math.Abs(cellMean-mu) / math.Sqrt(v)
			if irsd := 1 / (1 + z); irsd < st.irsdThr {
				fired = core.MeasureIRSD
				sev = core.Deficit(irsd, st.irsdThr)
			}
		}
	}
	if st.ikrdThr > 0 && st.invMaxDist > 0 {
		k := cfg.K
		repKey := s.repKeys[li*k : li*k+k]
		repDc := s.repDcs[li*k : li*k+k]
		sum, cnt := 0.0, 0
		for i, rk := range repKey {
			if repDc[i] <= 0 || rk == key {
				continue
			}
			dist := 0
			for j := 0; j < int(st.size); j++ {
				dj := int(core.CoordAt(key, j)) - int(core.CoordAt(rk, j))
				if dj < 0 {
					dj = -dj
				}
				dist += dj
			}
			sum += float64(dist)
			cnt++
		}
		if cnt > 0 {
			ikrd := 1 - (sum/float64(cnt))*st.invMaxDist
			if ikrd < st.ikrdThr {
				fired |= core.MeasureIkRD
				if s2 := core.Deficit(ikrd, st.ikrdThr); s2 > sev {
					sev = s2
				}
			}
		}
	}
	return fired, sev
}
