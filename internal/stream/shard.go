package stream

import (
	"math"

	"spot/internal/core"
	"spot/internal/sst"
)

// repEmpty marks an unused representative slot; no real cell key uses
// subspace ID 2^24-1 together with all-ones coordinates.
const repEmpty = ^uint64(0)

// repDecayStride is how many ticks of fading may accumulate on the
// representative densities before they are brought current. Kept below
// the decay table size so the refresh stays a table lookup.
const repDecayStride = 32

// subspaceState is the per-subspace state a shard owns exclusively: the
// decayed subspace totals (density plus magnitude moments, reusing PCS),
// the greedily-maintained representative (densest-cell) set for IkRD,
// and constants precomputed from the subspace's arity.
type subspaceState struct {
	total core.PCS // subspace-wide decayed totals
	// Representatives: the k densest cells seen, maintained greedily
	// in O(k) per touch, never a table scan. repDc fades with the
	// stream so a once-dense cell whose cluster drifts away is
	// eventually evicted instead of lingering as a ghost
	// representative. All slots decay by the same factor, so one
	// shared repsLast tick covers the set, and because decay factors
	// compose the refresh is batched every repDecayStride ticks —
	// densities are stale by at most one stride, which biases no
	// comparison meaningfully but cuts the hot-path multiplies 32×.
	repKey   []uint64
	repDc    []float64
	repsLast uint64

	size       uint8   // subspace arity
	phiPow     float64 // φ^arity, the cell count under uniformity
	invMaxDist float64 // 1/((φ-1)*arity); 0 when φ==1
}

// shard owns an exclusive partition of the SST: the cell table, totals
// and representatives of its subspaces. Only one goroutine ever touches
// a shard's state, so the hot path is lock-free. Epoch sweeps and
// evolved-subspace add/remove run on the dispatcher goroutine while the
// workers are idle, preserving that exclusivity.
type shard struct {
	det  *Detector
	id   int
	subs []uint32 // subspace IDs owned by this shard

	states []subspaceState
	table  *core.PCSTable // cell key -> PCS, sweepable

	scratch []uint8  // per-dimension interval indices of the current point
	verdict []uint64 // per-batch verdict bitset (batch mode only)

	sweepEvolved []evolvedCell // per-sweep scratch: surviving evolved-subspace cells
}

// evolvedCell is a surviving evolved-subspace cell recorded during a
// sweep, revisited for sparse classification once its subspace's
// average is known.
type evolvedCell struct {
	sid uint32
	dc  float64
}

func newShard(d *Detector, id int) *shard {
	return &shard{
		det:     d,
		id:      id,
		table:   core.NewPCSTable(),
		scratch: make([]uint8, d.cfg.Dims),
	}
}

// addSubspace hands the shard ownership of subspace id. Called at
// construction for the fixed group and from the epoch path for
// promoted evolved subspaces; never while workers are processing.
func (s *shard) addSubspace(id uint32) {
	s.subs = append(s.subs, id)
	phi := s.det.grid.Phi()
	size := s.det.tmpl.Size(int(id))
	st := subspaceState{
		repKey: make([]uint64, s.det.cfg.K),
		repDc:  make([]float64, s.det.cfg.K),
		size:   uint8(size),
		phiPow: math.Pow(float64(phi), float64(size)),
	}
	for i := range st.repKey {
		st.repKey[i] = repEmpty
	}
	if phi > 1 {
		st.invMaxDist = 1 / float64((phi-1)*size)
	}
	s.states = append(s.states, st)
}

// removeSubspace drops a demoted subspace: its per-subspace state goes
// by swap-remove and every one of its cells is purged from the table so
// a later reuse of the ID starts from nothing. Epoch-path only.
func (s *shard) removeSubspace(id uint32) {
	for i, sid := range s.subs {
		if sid != id {
			continue
		}
		last := len(s.subs) - 1
		s.subs[i] = s.subs[last]
		s.subs = s.subs[:last]
		s.states[i] = s.states[last]
		s.states = s.states[:last]
		break
	}
	s.table.EvictIf(func(key uint64) bool {
		return uint32(key>>core.SubspaceShift) == id
	})
}

// processPoint folds one point observed at tick into every subspace the
// shard owns and reports whether any of them finds it outlying. Zero
// heap allocations when the point's cells already exist.
func (s *shard) processPoint(point []float64, tick uint64) bool {
	s.det.grid.Intervals(point, s.scratch)
	decay := s.det.decay
	cfg := &s.det.cfg
	out := false
	for li, sid := range s.subs {
		st := &s.states[li]
		dims := s.det.tmpl.Dims(int(sid))
		// Assemble the packed cell key and the projected magnitude in
		// one pass over the subspace's dimensions.
		key := uint64(sid) << core.SubspaceShift
		m := 0.0
		for j, dim := range dims {
			key |= uint64(s.scratch[dim]) << (uint(j) * core.CoordBits)
			m += point[dim]
		}
		st.total.Touch(decay, tick, m)
		p := s.table.Get(key, tick)
		p.Touch(decay, tick, m)
		s.maintainReps(st, key, p.Dc, tick)
		if st.total.Dc >= cfg.Warmup && s.outlying(st, key, p) {
			out = true
		}
	}
	return out
}

// processBatch runs a whole batch through the shard, recording verdicts
// in the shard-local bitset (merged by the dispatcher).
func (s *shard) processBatch(jb job) {
	words := (jb.n + 63) >> 6
	if cap(s.verdict) < words {
		s.verdict = make([]uint64, words)
	} else {
		s.verdict = s.verdict[:words]
		for i := range s.verdict {
			s.verdict[i] = 0
		}
	}
	d := s.det.cfg.Dims
	for i := 0; i < jb.n; i++ {
		if s.processPoint(jb.flat[i*d:(i+1)*d], jb.t0+uint64(i)+1) {
			s.verdict[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}

// sweep is the shard's slice of the epoch sweep: one linear pass over
// the cell table evicting summaries whose decayed density fell below
// eps and accumulating per-subspace populated/total statistics. When an
// evolver needs sparse counts, surviving evolved-subspace cells (few —
// the fixed group dominates the table) are remembered during the same
// pass and classified against their subspace's average afterwards, so
// the extra work is proportional to the evolved group's cells, not the
// table. Runs on the dispatcher goroutine with workers idle; returns
// the eviction count.
func (s *shard) sweep(tick uint64, eps float64, perSub []sst.SubspaceStats) int {
	tmpl := s.det.tmpl
	collect := s.det.cfg.Evolver != nil
	s.sweepEvolved = s.sweepEvolved[:0]
	evicted := s.table.Sweep(s.det.decay, tick, eps, func(key uint64, dc float64) {
		sid := uint32(key >> core.SubspaceShift)
		sub := &perSub[sid]
		sub.Populated++
		sub.TotalDc += dc
		if collect && !tmpl.IsFixed(int(sid)) {
			s.sweepEvolved = append(s.sweepEvolved, evolvedCell{sid: sid, dc: dc})
		}
	})
	if collect {
		ratio := s.det.cfg.SweepSparseRatio
		for _, c := range s.sweepEvolved {
			sub := &perSub[c.sid]
			if c.dc < ratio*sub.TotalDc/float64(sub.Populated) {
				sub.Sparse++
			}
		}
	}
	return evicted
}

// maintainReps keeps the k densest cells of the subspace as IkRD
// representatives: an O(k) update per touch, never a table scan. Each
// slot's density is faded to the current tick before comparison so
// representatives of vanished clusters decay and get evicted.
func (s *shard) maintainReps(st *subspaceState, key uint64, dc float64, tick uint64) {
	if dt := tick - st.repsLast; dt >= repDecayStride {
		f := s.det.decay.At(dt)
		for i := range st.repDc {
			st.repDc[i] *= f
		}
		st.repsLast = tick
	}
	minI := 0
	for i := range st.repKey {
		if st.repKey[i] == key {
			st.repDc[i] = dc
			return
		}
		if st.repDc[i] < st.repDc[minI] {
			minI = i
		}
	}
	if dc > st.repDc[minI] {
		st.repKey[minI] = key
		st.repDc[minI] = dc
	}
}

// outlying evaluates the PCS-derived measures for the cell the current
// point landed in. The point is an outlier in this subspace if any
// enabled measure falls below its threshold. The costlier IRSD/IkRD
// evaluations are gated behind RD < 1 (a cell at or above the uniform
// expectation is not sparse in their sense), but the populated-RD test
// deliberately runs before that gate: when a subspace's mass
// concentrates in few cells, a cell can sit at the uniform expectation
// (RD ≥ 1) yet still be far below its populated peers.
func (s *shard) outlying(st *subspaceState, key uint64, p *core.PCS) bool {
	cfg := &s.det.cfg
	// Relative Density: cell density over the expected density if the
	// subspace's decayed weight were spread uniformly over its φ^k
	// cells. Effective for low arities; see Config.RDThreshold for
	// the arity-dependent floor that makes IkRD/IRSD carry detection
	// in higher-arity subspaces.
	rd := p.Dc * st.phiPow / st.total.Dc
	if rd < cfg.RDThreshold {
		return true
	}
	// Arity-aware RD: the same density compared to the average
	// *populated* cell of same-arity subspaces instead of the uniform
	// expectation, sidestepping the φ^k floor that blinds the uniform
	// test in multi-dimensional subspaces (see Config.RDThreshold).
	// The reference is the latest sweep's average, used undecayed:
	// populated cells are refreshed by the live stream, so their
	// average holds roughly steady between sweeps (for a dying
	// subspace it overestimates, which only suppresses flags). Zero
	// until the first sweep covering this arity.
	if cfg.RDPopulatedThreshold > 0 {
		if avg := s.det.popAvg[st.size]; avg > 0 && p.Dc < cfg.RDPopulatedThreshold*avg {
			return true
		}
	}
	if rd >= 1 {
		return false
	}
	if cfg.IRSDThreshold > 0 {
		// Inverse Relative Standard Deviation: how far the cell's
		// mean member magnitude sits from the subspace mean, in
		// subspace standard deviations, mapped to (0,1] by 1/(1+z).
		sigma := st.total.Sigma()
		if sigma > 0 {
			z := math.Abs(p.Mean()-st.total.Mean()) / sigma
			if 1/(1+z) < cfg.IRSDThreshold {
				return true
			}
		}
	}
	if cfg.IkRDThreshold > 0 && st.invMaxDist > 0 {
		// Inverse k-Relative Distance: mean grid (L1) distance from
		// the cell to the subspace's k densest cells, normalized by
		// the subspace's diameter and inverted so that far-from-
		// everything cells score low.
		sum, cnt := 0.0, 0
		for i, rk := range st.repKey {
			if st.repDc[i] <= 0 || rk == key {
				continue
			}
			dist := 0
			for j := 0; j < int(st.size); j++ {
				dj := int(core.CoordAt(key, j)) - int(core.CoordAt(rk, j))
				if dj < 0 {
					dj = -dj
				}
				dist += dj
			}
			sum += float64(dist)
			cnt++
		}
		if cnt > 0 {
			ikrd := 1 - (sum/float64(cnt))*st.invMaxDist
			if ikrd < cfg.IkRDThreshold {
				return true
			}
		}
	}
	return false
}
