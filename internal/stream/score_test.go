package stream

import (
	"errors"
	"math"
	"testing"

	"spot/internal/bench"
	"spot/internal/core"
)

// ---- Brute-force attribution oracle -------------------------------
//
// scoreOracle is an independent naive reimplementation of the scored
// verdict pass for one-shard detectors: map-backed cell summaries, a
// plain loop per subspace, no batching, no open addressing. With
// Shards=1 and EvictEpsilon=0 every quantity the verdict math reads is
// bit-reproducible (the populated-average sums run in first-touch cell
// order, which the oracle records explicitly), so the detector's
// Explain output, scores and top-K must match it exactly — not
// approximately.

type oPCS struct {
	dc, s, q float64
	last     uint64
}

func (p *oPCS) touch(decay *core.DecayTable, tick uint64, m float64) {
	if p.last != tick {
		f := decay.At(tick - p.last)
		p.dc *= f
		p.s *= f
		p.q *= f
		p.last = tick
	}
	p.dc++
	p.s += m
	p.q += m * m
}

type oSub struct {
	sid        uint32
	dims       []uint16
	keyBase    uint64
	size       int
	phiPow     float64
	invMaxDist float64
	total      oPCS
	cells      map[uint64]*oPCS
	order      []uint64 // cell keys in first-touch order (= table slot order)
	repKeys    []uint64
	repDcs     []float64
	repMin     float64
	repMinI    int
	repsLast   uint64
	popFloor   float64
}

type scoreOracle struct {
	cfg    Config
	grid   *core.Grid
	decay  *core.DecayTable
	subs   []*oSub // subspace-ID order
	coords []uint8
	tick   uint64
}

func newScoreOracle(t *testing.T, det *Detector, cfg Config) *scoreOracle {
	min, max := cfg.Min, cfg.Max
	if min == nil && max == nil {
		min = make([]float64, cfg.Dims)
		max = make([]float64, cfg.Dims)
		for i := range max {
			max[i] = 1
		}
	}
	grid, err := core.NewGrid(cfg.Phi, min, max)
	if err != nil {
		t.Fatal(err)
	}
	o := &scoreOracle{
		cfg:    cfg,
		grid:   grid,
		decay:  core.NewDecayTable(cfg.Lambda),
		coords: make([]uint8, cfg.Dims),
	}
	tmpl := det.Template()
	for id := 0; id < tmpl.Count(); id++ {
		size := tmpl.Size(id)
		sub := &oSub{
			sid:     uint32(id),
			dims:    append([]uint16(nil), tmpl.Dims(id)...),
			keyBase: uint64(id) << core.SubspaceShift,
			size:    size,
			phiPow:  math.Pow(float64(cfg.Phi), float64(size)),
			cells:   make(map[uint64]*oPCS),
			repKeys: make([]uint64, cfg.K),
			repDcs:  make([]float64, cfg.K),
		}
		for i := range sub.repKeys {
			sub.repKeys[i] = repEmpty
		}
		if cfg.Phi > 1 {
			sub.invMaxDist = 1 / float64((cfg.Phi-1)*size)
		}
		o.subs = append(o.subs, sub)
	}
	return o
}

// process folds one point and returns the flag, the ensemble score and
// the point's attribution entries in subspace-ID order — exactly what
// ProcessScored + Explain(0) report.
func (o *scoreOracle) process(point []float64) (bool, float64, []Attribution) {
	o.tick++
	tick := o.tick
	o.grid.Intervals(point, o.coords)
	var attrs []Attribution
	logSum := 0.0
	for _, sub := range o.subs {
		key := sub.keyBase
		m := 0.0
		for j, dim := range sub.dims {
			key |= uint64(o.coords[dim]) << (uint(j) * core.CoordBits)
			m += point[dim]
		}
		sub.total.touch(o.decay, tick, m)
		c := sub.cells[key]
		if c == nil {
			c = &oPCS{last: tick}
			sub.cells[key] = c
			sub.order = append(sub.order, key)
		}
		c.touch(o.decay, tick, m)
		dc := c.dc

		// Greedy representative upkeep, mirrored from the shard: strided
		// fading, the cached-minimum gate, refresh-or-displace.
		if dt := tick - sub.repsLast; dt >= repDecayStride {
			f := o.decay.At(dt)
			for i := range sub.repDcs {
				sub.repDcs[i] *= f
			}
			sub.repMin *= f
			sub.repsLast = tick
		}
		if dc > sub.repMin {
			found := -1
			for i, rk := range sub.repKeys {
				if rk == key {
					found = i
					break
				}
			}
			if found < 0 {
				found = sub.repMinI
				sub.repKeys[found] = key
			}
			sub.repDcs[found] = dc
			if found == sub.repMinI {
				sub.repMin = sub.repDcs[0]
				sub.repMinI = 0
				for i := 1; i < len(sub.repDcs); i++ {
					if sub.repDcs[i] < sub.repMin {
						sub.repMin = sub.repDcs[i]
						sub.repMinI = i
					}
				}
			}
		}

		if sub.total.dc < o.cfg.Warmup {
			continue
		}
		lhs := dc * sub.phiPow
		var fired core.Measure
		var sev float64
		if rhs := o.cfg.RDThreshold * sub.total.dc; lhs < rhs {
			fired = core.MeasureRD
			sev = core.Deficit(lhs, rhs)
		}
		if dc < sub.popFloor {
			fired |= core.MeasureRDPopulated
			if s2 := core.Deficit(dc, sub.popFloor); s2 > sev {
				sev = s2
			}
		}
		if lhs < sub.total.dc {
			if o.cfg.IRSDThreshold > 0 && sub.total.dc > 0 {
				mu := sub.total.s / sub.total.dc
				if v := sub.total.q/sub.total.dc - mu*mu; v > 0 {
					z := math.Abs(c.s/dc-mu) / math.Sqrt(v)
					if irsd := 1 / (1 + z); irsd < o.cfg.IRSDThreshold {
						fired |= core.MeasureIRSD
						if s2 := core.Deficit(irsd, o.cfg.IRSDThreshold); s2 > sev {
							sev = s2
						}
					}
				}
			}
			if o.cfg.IkRDThreshold > 0 && sub.invMaxDist > 0 {
				sum, cnt := 0.0, 0
				for i, rk := range sub.repKeys {
					if sub.repDcs[i] <= 0 || rk == key {
						continue
					}
					dist := 0
					for j := 0; j < sub.size; j++ {
						dj := int(core.CoordAt(key, j)) - int(core.CoordAt(rk, j))
						if dj < 0 {
							dj = -dj
						}
						dist += dj
					}
					sum += float64(dist)
					cnt++
				}
				if cnt > 0 {
					if ikrd := 1 - (sum/float64(cnt))*sub.invMaxDist; ikrd < o.cfg.IkRDThreshold {
						fired |= core.MeasureIkRD
						if s2 := core.Deficit(ikrd, o.cfg.IkRDThreshold); s2 > sev {
							sev = s2
						}
					}
				}
			}
		}
		if fired != 0 {
			attrs = append(attrs, Attribution{Subspace: sub.sid, Cell: key, Measures: fired, Severity: sev})
			logSum += math.Log1p(-sev)
		}
	}
	score := 0.0
	if len(attrs) > 0 {
		score = -math.Expm1(logSum)
	}
	if o.cfg.EpochTicks > 0 && tick%o.cfg.EpochTicks == 0 {
		o.sweep(tick)
	}
	return len(attrs) > 0, score, attrs
}

// sweep recomputes the per-arity populated averages the popRD floor
// derives from: per-subspace cell sums in first-touch order, reduced
// per arity in subspace-ID order — the exact summation orders of the
// detector's sweep with one shard and no evictions.
func (o *scoreOracle) sweep(tick uint64) {
	cells := make([]int, core.MaxSubspaceDims+1)
	dcs := make([]float64, core.MaxSubspaceDims+1)
	for _, sub := range o.subs {
		pop := 0
		tot := 0.0
		for _, key := range sub.order {
			c := sub.cells[key]
			tot += c.dc * o.decay.At(tick-c.last)
			pop++
		}
		if pop > 0 {
			cells[sub.size] += pop
			dcs[sub.size] += tot
		}
	}
	for _, sub := range o.subs {
		if cells[sub.size] > 0 {
			sub.popFloor = o.cfg.RDPopulatedThreshold * (dcs[sub.size] / float64(cells[sub.size]))
		} else {
			sub.popFloor = 0
		}
	}
}

// TestAttributionOracle streams planted-outlier data through a scoring
// detector and the brute-force oracle side by side, requiring bitwise
// agreement on every verdict, score, attribution entry (subspace,
// cell, fired measures, severity) and the final top-K — with epoch
// sweeps keeping the popRD floor live so all four measures fire.
func TestAttributionOracle(t *testing.T) {
	const d, n = 6, 2000
	cfg := DefaultConfig(d)
	cfg.MaxSubspaceDim = 2
	cfg.Lambda = 0.01
	cfg.Warmup = 30
	cfg.EpochTicks = 128
	cfg.EvictEpsilon = 0 // no evictions: cell order stays first-touch
	cfg.RDPopulatedThreshold = 0.2
	// Trigger-happy thresholds so all four measures fire on this
	// stream: RDThreshold above the λ=0.01 arity-1 RD floor (≈0.055)
	// and an IkRD threshold reachable by the generator's displacement.
	cfg.RDThreshold = 0.3
	cfg.IkRDThreshold = 0.6
	cfg.Scoring = true
	cfg.TopK = 5
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	o := newScoreOracle(t, det, cfg)
	tk := &topkOracle{lambda: cfg.Lambda}

	gcfg := bench.DefaultGenConfig(d)
	gen := bench.NewGenerator(gcfg)
	buf := make([]float64, d)
	var explain []Attribution
	var measuresSeen core.Measure
	flagged := 0
	for i := 0; i < n; i++ {
		gen.Next(buf)
		gotFlag, gotScore := det.ProcessScored(buf)
		wantFlag, wantScore, wantAttrs := o.process(buf)
		if gotFlag != wantFlag {
			t.Fatalf("point %d: verdict %v, oracle %v", i, gotFlag, wantFlag)
		}
		if gotScore != wantScore {
			t.Fatalf("point %d: score %g, oracle %g", i, gotScore, wantScore)
		}
		explain = det.Explain(0, explain[:0])
		if len(explain) != len(wantAttrs) {
			t.Fatalf("point %d: %d attribution entries, oracle %d\n got %+v\nwant %+v",
				i, len(explain), len(wantAttrs), explain, wantAttrs)
		}
		for j := range explain {
			if explain[j] != wantAttrs[j] {
				t.Fatalf("point %d entry %d: %+v, oracle %+v", i, j, explain[j], wantAttrs[j])
			}
			measuresSeen |= explain[j].Measures
		}
		if gotFlag {
			flagged++
			if !(gotScore > 0 && gotScore <= 1) {
				t.Fatalf("point %d: flagged with score %g outside (0,1]", i, gotScore)
			}
			tk.add(o.tick, wantScore)
		} else if gotScore != 0 {
			t.Fatalf("point %d: not flagged but score %g", i, gotScore)
		}
	}
	if flagged == 0 {
		t.Fatal("stream produced no flagged points; oracle exercised nothing")
	}
	for _, m := range []core.Measure{core.MeasureRD, core.MeasureRDPopulated, core.MeasureIRSD, core.MeasureIkRD} {
		if measuresSeen&m == 0 {
			t.Errorf("measure %v never fired; scenario too weak", m)
		}
	}

	got := det.TopK(nil)
	want := tk.top(det.decay, det.Tick(), cfg.TopK)
	if len(got) != len(want) {
		t.Fatalf("TopK returned %d offenders, oracle %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("TopK entry %d: %+v, oracle %+v", i, got[i], want[i])
		}
	}
}

// TestScoringAdditivePointwise runs the same stream through a scoring
// and a non-scoring detector via the pointwise APIs: verdicts must be
// identical, and the score must be positive exactly on flagged points.
func TestScoringAdditivePointwise(t *testing.T) {
	const d, n = 8, 3000
	mk := func(scoring bool) *Detector {
		cfg := DefaultConfig(d)
		cfg.Lambda = 0.005
		cfg.Warmup = 50
		cfg.EpochTicks = 256
		cfg.RDPopulatedThreshold = 0.2
		cfg.Scoring = scoring
		det, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return det
	}
	plain := mk(false)
	defer plain.Close()
	scored := mk(true)
	defer scored.Close()

	gen := bench.NewGenerator(bench.DefaultGenConfig(d))
	buf := make([]float64, d)
	flagged := 0
	for i := 0; i < n; i++ {
		gen.Next(buf)
		want := plain.Process(buf)
		got, score := scored.ProcessScored(buf)
		if got != want {
			t.Fatalf("point %d: scoring changed the verdict: %v vs %v", i, got, want)
		}
		if (score > 0) != want {
			t.Fatalf("point %d: verdict %v but score %g", i, want, score)
		}
		if score < 0 || score > 1 || math.IsNaN(score) {
			t.Fatalf("point %d: score %g outside [0,1]", i, score)
		}
		if want {
			flagged++
		}
	}
	if flagged == 0 {
		t.Fatal("no flagged points; additivity not exercised")
	}
}

// TestScoreReconstruction checks the published noisy-OR identity: for
// each flagged point of a scored batch, the score recomputes exactly
// from the Explain severities.
func TestScoreReconstruction(t *testing.T) {
	const d, n = 6, 2048
	cfg := DefaultConfig(d)
	cfg.Lambda = 0.01
	cfg.Warmup = 30
	cfg.EpochTicks = 300 // mid-batch epoch split
	cfg.RDPopulatedThreshold = 0.2
	cfg.Shards = 4
	cfg.Scoring = true
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()

	flat := make([]float64, n*d)
	labels := make([]bool, n)
	bench.NewGenerator(bench.DefaultGenConfig(d)).Fill(flat, labels, n)
	out := make([]bool, n)
	scores := make([]float64, n)
	det.ProcessBatchScored(flat, out, scores)

	var attrs []Attribution
	flagged := 0
	for i := 0; i < n; i++ {
		attrs = det.Explain(i, attrs[:0])
		if out[i] != (len(attrs) > 0) {
			t.Fatalf("point %d: verdict %v but %d attribution entries", i, out[i], len(attrs))
		}
		if !out[i] {
			if scores[i] != 0 {
				t.Fatalf("point %d: unflagged score %g", i, scores[i])
			}
			continue
		}
		flagged++
		sum := 0.0
		for j, a := range attrs {
			if a.Measures == 0 {
				t.Fatalf("point %d entry %d: empty measure set", i, j)
			}
			if !(a.Severity > 0 && a.Severity <= 1) {
				t.Fatalf("point %d entry %d: severity %g outside (0,1]", i, j, a.Severity)
			}
			if j > 0 && attrs[j-1].Subspace >= a.Subspace {
				t.Fatalf("point %d: Explain entries out of subspace order: %+v", i, attrs)
			}
			sum += math.Log1p(-a.Severity)
		}
		if rec := -math.Expm1(sum); rec != scores[i] {
			t.Fatalf("point %d: score %g does not reconstruct from severities (%g)", i, scores[i], rec)
		}
	}
	if flagged == 0 {
		t.Fatal("no flagged points; reconstruction not exercised")
	}
}

// TestBatchErrContracts pins every typed error of the batch APIs and
// the buffer contracts the docs promise: validation happens before any
// state is touched, only out[0:n] is written, longer buffers keep
// their tail.
func TestBatchErrContracts(t *testing.T) {
	const d = 4
	mk := func(scoring bool) *Detector {
		cfg := DefaultConfig(d)
		cfg.EpochTicks = 0
		cfg.RDPopulatedThreshold = 0
		cfg.Scoring = scoring
		det, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(det.Close)
		return det
	}
	plain := mk(false)
	scored := mk(true)
	closedPlain := mk(false)
	closedPlain.Close()
	closedScored := mk(true)
	closedScored.Close()

	flat := make([]float64, 2*d)
	out := make([]bool, 2)
	scores := make([]float64, 2)
	cases := []struct {
		name string
		call func() (int, error)
		want error
	}{
		{"closed", func() (int, error) { return closedPlain.ProcessBatchErr(flat, out) }, ErrClosed},
		{"closed scored", func() (int, error) { return closedScored.ProcessBatchScoredErr(flat, out, scores) }, ErrClosed},
		{"ragged batch", func() (int, error) { return plain.ProcessBatchErr(flat[:2*d-1], out) }, ErrBatchLength},
		{"ragged scored batch", func() (int, error) { return scored.ProcessBatchScoredErr(flat[:2*d-1], out, scores) }, ErrBatchLength},
		{"short verdict buffer", func() (int, error) { return plain.ProcessBatchErr(flat, out[:1]) }, ErrVerdictBuffer},
		{"short scored verdict buffer", func() (int, error) { return scored.ProcessBatchScoredErr(flat, out[:1], scores) }, ErrVerdictBuffer},
		{"short score buffer", func() (int, error) { return scored.ProcessBatchScoredErr(flat, out, scores[:1]) }, ErrScoreBuffer},
		{"scoring disabled", func() (int, error) { return plain.ProcessBatchScoredErr(flat, out, scores) }, ErrScoringDisabled},
	}
	for _, tc := range cases {
		n, err := tc.call()
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got (%d, %v), want %v", tc.name, n, err, tc.want)
		}
		if n != 0 {
			t.Errorf("%s: n = %d on error, want 0", tc.name, n)
		}
	}
	if plain.Tick() != 0 || scored.Tick() != 0 {
		t.Fatalf("a rejected call touched detector state: ticks %d, %d", plain.Tick(), scored.Tick())
	}

	// Empty batches are accepted no-ops even with nil buffers.
	if n, err := plain.ProcessBatchErr(nil, nil); n != 0 || err != nil {
		t.Fatalf("empty batch: got (%d, %v)", n, err)
	}
	if n, err := scored.ProcessBatchScoredErr(nil, nil, nil); n != 0 || err != nil {
		t.Fatalf("empty scored batch: got (%d, %v)", n, err)
	}

	// The verdict contract is per point, not per float: out needs n
	// slots for n points, and slots past n are never written.
	longOut := []bool{true, true, true, true}
	longScores := []float64{9, 9, 9, 9}
	if _, err := scored.ProcessBatchScoredErr(flat, longOut, longScores); err != nil {
		t.Fatal(err)
	}
	if longOut[2] != true || longOut[3] != true {
		t.Fatalf("out tail overwritten: %v", longOut)
	}
	if longScores[2] != 9 || longScores[3] != 9 {
		t.Fatalf("scores tail overwritten: %v", longScores)
	}

	// The panicking wrappers surface the same typed errors.
	func() {
		defer func() {
			if r := recover(); !errors.Is(r.(error), ErrScoringDisabled) {
				t.Errorf("ProcessScored on a non-scoring detector panicked with %v", r)
			}
		}()
		plain.ProcessScored(make([]float64, d))
	}()
	func() {
		defer func() {
			if r := recover(); !errors.Is(r.(error), ErrScoreBuffer) {
				t.Errorf("ProcessBatchScored with a short score buffer panicked with %v", r)
			}
		}()
		scored.ProcessBatchScored(flat, out, scores[:1])
	}()
}

// TestScoringConfigValidation pins the constructor checks the scoring
// fields add.
func TestScoringConfigValidation(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.TopK = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative TopK accepted")
	}
	cfg = DefaultConfig(4)
	cfg.TopK = 8 // without Scoring
	if _, err := New(cfg); err == nil {
		t.Error("TopK without Scoring accepted")
	}
	cfg = DefaultConfig(4)
	cfg.Scoring = true
	cfg.TopK = 8
	det, err := New(cfg)
	if err != nil {
		t.Fatalf("valid scoring config rejected: %v", err)
	}
	det.Close()
}
