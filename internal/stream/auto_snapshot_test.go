package stream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"

	"spot/internal/snapshot"
)

// autoSnapConfig is the fixture of the auto-threshold snapshot tests:
// the auto_test.go template at a chosen shard count.
func autoSnapConfig(shards int) Config {
	cfg := autoTestConfig(0.01)
	cfg.Shards = shards
	return cfg
}

// TestRestoreAutoEquivalence extends the crash-safety property to
// auto-thresholding: kill a calibrating detector mid-epoch — with
// partially filled sample-slot buffers and live calibrator fits —
// restore it, and the continuation must be verdict-bit-identical to the
// uninterrupted oracle, including across shard-count changes (the
// serialized slot minima are cross-shard merges, so they re-deal
// freely). Same-count round trips must also be byte-stable.
func TestRestoreAutoEquivalence(t *testing.T) {
	const n = 6*512 + 300 // ends mid-epoch
	const killAt = 2*512 + 137
	d := 6
	flat := make([]float64, n*d)
	uniformStream(61, d)(flat)
	point := func(i int) []float64 { return flat[i*d : (i+1)*d] }

	oracleRun := func(shards int) ([]bool, Stats) {
		det, err := New(autoSnapConfig(shards))
		if err != nil {
			t.Fatal(err)
		}
		defer det.Close()
		out := make([]bool, n)
		for i := 0; i < n; i++ {
			out[i] = det.Process(point(i))
		}
		return out, det.Stats()
	}

	for _, counts := range [][2]int{{1, 1}, {1, 4}, {4, 1}} {
		from, to := counts[0], counts[1]
		oracleV, oracleS := oracleRun(to)

		det, err := New(autoSnapConfig(from))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]bool, n)
		for i := 0; i < killAt; i++ {
			got[i] = det.Process(point(i))
		}
		var buf bytes.Buffer
		if err := det.Snapshot(&buf); err != nil {
			t.Fatalf("%d->%d shards: snapshot: %v", from, to, err)
		}
		det.Close() // the crash

		restored, err := Restore(bytes.NewReader(buf.Bytes()), autoSnapConfig(to))
		if err != nil {
			t.Fatalf("%d->%d shards: restore: %v", from, to, err)
		}
		for i := killAt; i < n; i++ {
			got[i] = restored.Process(point(i))
		}
		for i := range oracleV {
			if got[i] != oracleV[i] {
				t.Fatalf("%d->%d shards: verdict for point %d differs after restore", from, to, i)
			}
		}
		s := restored.Stats()
		if s.Calibrations != oracleS.Calibrations || s.CalibrationSamples != oracleS.CalibrationSamples ||
			s.CalibratedThresholds != oracleS.CalibratedThresholds || s.AutoEffTrials != oracleS.AutoEffTrials {
			t.Fatalf("%d->%d shards: auto stats diverged after restore:\n restored %+v\n oracle   %+v", from, to, s, oracleS)
		}
		restored.Close()

		if from == to {
			restored2, err := Restore(bytes.NewReader(buf.Bytes()), autoSnapConfig(to))
			if err != nil {
				t.Fatal(err)
			}
			var again bytes.Buffer
			if err := restored2.Snapshot(&again); err != nil {
				t.Fatal(err)
			}
			restored2.Close()
			if !bytes.Equal(buf.Bytes(), again.Bytes()) {
				t.Fatalf("auto snapshot not byte-stable: %d vs %d bytes", buf.Len(), again.Len())
			}
		}
	}
}

// autoSnapshotBytes feeds a short calibrating run and returns its
// snapshot, shared by the mismatch/corruption tests below.
func autoSnapshotBytes(t *testing.T, cfg Config, points int) []byte {
	t.Helper()
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	buf := make([]float64, cfg.Dims)
	next := uniformStream(67, cfg.Dims)
	for i := 0; i < points; i++ {
		next(buf)
		det.Process(buf)
	}
	var out bytes.Buffer
	if err := det.Snapshot(&out); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestRestoreAutoConfigMismatch: the auto-threshold knobs are
// state-shaping — a snapshot may not silently restore into a detector
// whose calibration target differs.
func TestRestoreAutoConfigMismatch(t *testing.T) {
	raw := autoSnapshotBytes(t, autoSnapConfig(2), 3*512)
	mutations := map[string]func(*Config){
		"auto off":      func(c *Config) { c.AutoThreshold = AutoThreshold{} },
		"risk changed":  func(c *Config) { c.AutoThreshold.Risk *= 2 },
		"level changed": func(c *Config) { c.AutoThreshold.Level = 0.2 },
	}
	for name, mutate := range mutations {
		cfg := autoSnapConfig(2)
		mutate(&cfg)
		if _, err := Restore(bytes.NewReader(raw), cfg); !errors.Is(err, ErrConfigMismatch) {
			t.Errorf("%s: got %v, want ErrConfigMismatch", name, err)
		}
	}
	// The reverse direction: an auto-off snapshot cannot restore into an
	// auto-on detector.
	off := autoSnapConfig(2)
	off.AutoThreshold = AutoThreshold{}
	plain := autoSnapshotBytes(t, off, 512)
	if _, err := Restore(bytes.NewReader(plain), autoSnapConfig(2)); !errors.Is(err, ErrConfigMismatch) {
		t.Errorf("auto on over plain snapshot: got %v, want ErrConfigMismatch", err)
	}
}

// TestSnapshotVersionSkew: a snapshot stamped with any other format
// version — older (the pre-auto v2 layout) or newer — is rejected with
// ErrVersion before any section is decoded.
func TestSnapshotVersionSkew(t *testing.T) {
	raw := autoSnapshotBytes(t, autoSnapConfig(1), 512)
	for _, v := range []uint32{1, 2, snapshot.Version + 1} {
		skewed := append([]byte(nil), raw...)
		binary.LittleEndian.PutUint32(skewed[len(snapshot.Magic):], v)
		if _, err := Restore(bytes.NewReader(skewed), autoSnapConfig(1)); !errors.Is(err, snapshot.ErrVersion) {
			t.Errorf("version %d: got %v, want ErrVersion", v, err)
		}
	}
}

// patchSection returns a copy of raw with patch applied to the payload
// of the first section carrying id, and that section's CRC recomputed —
// so the corruption reaches semantic validation instead of dying at the
// checksum gate.
func patchSection(t *testing.T, raw []byte, id uint32, patch func(payload []byte)) []byte {
	t.Helper()
	out := append([]byte(nil), raw...)
	off := len(snapshot.Magic) + 4
	for off+12 <= len(out) {
		sid := binary.LittleEndian.Uint32(out[off:])
		size := int(binary.LittleEndian.Uint64(out[off+4:]))
		if sid == id {
			payload := out[off+12 : off+12+size]
			patch(payload)
			crc := crc32.NewIEEE()
			crc.Write(out[off : off+12])
			crc.Write(payload)
			binary.LittleEndian.PutUint32(out[off+12+size:], crc.Sum32())
			return out
		}
		off += 12 + size + 4
	}
	t.Fatalf("section %d not found in %d snapshot bytes", id, len(raw))
	return nil
}

// TestRestoreAutoCorrupt: secAuto contents that pass the CRC but fail
// semantic validation — an effective-trials divisor outside the
// controller's bounds, or a NaN where a finite scalar belongs — must
// surface as ErrCorrupt, never as a silently mis-calibrated detector.
func TestRestoreAutoCorrupt(t *testing.T) {
	const secAutoID = 9
	raw := autoSnapshotBytes(t, autoSnapConfig(1), 3*512)
	cases := map[string]uint64{
		"effTrials out of range": math.Float64bits(1e9),
		"effTrials NaN":          math.Float64bits(math.NaN()),
		"effTrials negative":     math.Float64bits(-1),
	}
	for name, bits := range cases {
		bad := patchSection(t, raw, secAutoID, func(p []byte) {
			binary.LittleEndian.PutUint64(p[0:], bits) // first field: effTrials
		})
		if _, err := Restore(bytes.NewReader(bad), autoSnapConfig(1)); !errors.Is(err, snapshot.ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
	// A NaN smuggled into the rolling sample windows (the tail of the
	// section) must be caught too: poison the last float in the payload.
	bad := patchSection(t, raw, secAutoID, func(p []byte) {
		binary.LittleEndian.PutUint64(p[len(p)-8:], math.Float64bits(math.NaN()))
	})
	if _, err := Restore(bytes.NewReader(bad), autoSnapConfig(1)); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Errorf("NaN tail sample: got %v, want ErrCorrupt", err)
	}
	// Bit flips over the auto section still die at the checksum gate.
	for off := 0; off < len(raw); off += 1 + len(raw)/53 {
		flipped := append([]byte(nil), raw...)
		flipped[off] ^= 1 << uint(off%8)
		_, err := Restore(bytes.NewReader(flipped), autoSnapConfig(1))
		if err == nil ||
			!(errors.Is(err, snapshot.ErrBadMagic) || errors.Is(err, snapshot.ErrVersion) ||
				errors.Is(err, snapshot.ErrChecksum) || errors.Is(err, snapshot.ErrTruncated) ||
				errors.Is(err, snapshot.ErrCorrupt) || errors.Is(err, ErrConfigMismatch)) {
			t.Errorf("bitflip@%d: got %v, want a typed snapshot error", off, err)
		}
	}
}
