package stream

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"spot/internal/core"
	"spot/internal/evt"
	"spot/internal/snapshot"
	"spot/internal/sst"
)

// Checkpoint/restore of the full detector state. The contract is the
// same bit-identity discipline the shard and coalescing work is held
// to: a detector restored from a snapshot taken at a batch boundary
// emits exactly the verdicts the uninterrupted run would have emitted
// — every decayed summary, representative set, evolver accumulator
// and RNG position is reproduced, and cells are replayed in their
// dense table order so even the sweep's floating-point accumulation
// order is preserved. Restoring with a different shard count re-deals
// the subspaces (same rules New and the epoch path use) and is subject
// to the same ULP-level sweep-sum caveat as live shard-count changes.
//
// Quiescence: Snapshot runs on the goroutine that drives Process /
// ProcessBatch, between calls — the shard workers are idle at every
// such boundary by construction (ProcessBatch joins them before
// returning), so no extra synchronization is needed and none is taken.
//
// Wire format (snapshot format version 3): the sections below inside
// the internal/snapshot codec's framing (magic, format version, CRC32
// per section), in this fixed order. Version 2 extended secMeta with
// the scoring fields (Scoring flag, top-K capacity) and added the
// trailing secScore heap dump; version 3 extended secMeta with the
// auto-threshold fields (enabled flag, Risk, Level), prefixed
// secScore with the ranking-key rebase anchor, and added the trailing
// secAuto calibrator dump. Checkpoints of any other version are
// rejected with snapshot.ErrVersion per the skew policy.
const (
	secMeta     uint32 = 1 // geometry + tick; validated against Config
	secTemplate uint32 = 2 // evolved SST slots, tombstones, free list
	secShard    uint32 = 3 // one per shard: subspace states + cells
	secBase     uint32 = 4 // base-cell table, sorted by cell key
	secExamples uint32 = 5 // labeled outlier examples
	secCounters uint32 = 6 // popAvg + epoch-engine lifetime counters
	secEvolver  uint32 = 7 // evolver state (present iff marshalable)
	secScore    uint32 = 8 // top-K heap entries (present iff TopK > 0)
	secAuto     uint32 = 9 // EVT calibrators (present iff AutoThreshold)
)

// ErrConfigMismatch marks a Restore whose Config disagrees with the
// snapshot on a state-shaping parameter (dimensionality, grid, fixed
// template, representative count, fading factor, evolver presence or
// composition).
var ErrConfigMismatch = errors.New("stream: snapshot does not match the config")

// Snapshot serializes the detector's full state to w in the versioned,
// CRC-checked format of internal/snapshot. It must be called from the
// goroutine driving Process/ProcessBatch, between calls (the workers
// are idle at every such boundary); the detector is not mutated beyond
// its checkpoint telemetry counters, and processing may resume
// immediately after. Returns ErrClosed after Close.
func (d *Detector) Snapshot(w io.Writer) error {
	if d.closed {
		return ErrClosed
	}
	start := time.Now()
	sw, err := snapshot.NewWriter(w)
	if err != nil {
		return err
	}

	var evolverState []byte
	hasEvolverState := false
	if sm, ok := d.cfg.Evolver.(sst.StateMarshaler); ok {
		if evolverState, err = sm.MarshalState(); err != nil {
			return err
		}
		hasEvolverState = true
	}

	sw.Begin(secMeta)
	sw.U32(uint32(d.cfg.Dims))
	sw.U32(uint32(d.cfg.Phi))
	sw.U32(uint32(d.cfg.MaxSubspaceDim))
	sw.U32(uint32(len(d.shards)))
	sw.U32(uint32(d.cfg.K))
	sw.U64(d.cfg.EpochTicks)
	sw.F64(d.cfg.Lambda)
	sw.U64(d.tick)
	sw.Bool(d.cfg.Evolver != nil)
	sw.Bool(hasEvolverState)
	sw.Bool(d.cfg.Scoring)
	sw.U32(uint32(d.cfg.TopK))
	sw.Bool(d.auto != nil)
	sw.F64(d.cfg.AutoThreshold.Risk)
	sw.F64(d.cfg.AutoThreshold.Level)
	if err := sw.End(); err != nil {
		return err
	}

	sw.Begin(secTemplate)
	slots := d.tmpl.EvolvedSlots()
	sw.U32(uint32(len(slots)))
	for _, s := range slots {
		sw.Bool(s.Active)
		if s.Active {
			sw.U8(uint8(len(s.Dims)))
			for _, dim := range s.Dims {
				sw.U16(dim)
			}
		}
	}
	free := d.tmpl.FreeSlots()
	sw.U32(uint32(len(free)))
	for _, id := range free {
		sw.U32(id)
	}
	if err := sw.End(); err != nil {
		return err
	}

	k := d.cfg.K
	for si, sh := range d.shards {
		sw.Begin(secShard)
		sw.U32(uint32(si))
		sw.U32(uint32(len(sh.subs)))
		for li, sid := range sh.subs {
			st := &sh.states[li]
			sw.U32(sid)
			sw.F64(st.total.Dc)
			sw.F64(st.total.S)
			sw.F64(st.total.Q)
			sw.U64(st.total.Last)
			sw.U64(st.repsLast)
			sw.F64(st.repMin)
			sw.U32(uint32(st.repMinI))
			sw.U8(st.skipCoalesce)
			for i := 0; i < k; i++ {
				sw.U64(sh.repKeys[li*k+i])
				sw.F64(sh.repDcs[li*k+i])
			}
		}
		sw.U64(sh.coalPoints)
		sw.U64(sh.coalDistinct)
		sw.U64(sh.coalGroupings)
		sw.U32(uint32(sh.table.Len()))
		for i := 0; i < sh.table.Len(); i++ {
			key, cell := sh.table.At(i)
			sw.U64(key)
			sw.F64(cell.Dc)
			sw.F64(cell.S)
			sw.F64(cell.Q)
			sw.U64(cell.Last)
		}
		if err := sw.End(); err != nil {
			return err
		}
	}

	// Map iteration is randomized; sort the base cells by key so the
	// same state always snapshots to the same bytes (the round-trip
	// byte-equality test pins this).
	type baseEntry struct {
		key string
		b   *core.BCS
	}
	base := make([]baseEntry, 0, d.bcs.Len())
	d.bcs.Range(func(key string, b *core.BCS) {
		base = append(base, baseEntry{key, b})
	})
	sort.Slice(base, func(i, j int) bool { return base[i].key < base[j].key })
	sw.Begin(secBase)
	sw.U32(uint32(len(base)))
	for _, e := range base {
		sw.Bytes32([]byte(e.key))
		sw.F64(e.b.Dc)
		sw.U64(e.b.Last)
		for _, v := range e.b.LS {
			sw.F64(v)
		}
		for _, v := range e.b.SS {
			sw.F64(v)
		}
	}
	if err := sw.End(); err != nil {
		return err
	}

	sw.Begin(secExamples)
	sw.U32(uint32(len(d.examples)))
	for i := range d.examples {
		sw.Bytes32(d.examples[i].Coords)
		sw.U64(d.examples[i].Tick)
	}
	if err := sw.End(); err != nil {
		return err
	}

	sw.Begin(secCounters)
	for _, v := range d.popAvg {
		sw.F64(v)
	}
	sw.U64(d.counters.sweeps)
	sw.U64(d.counters.sweepNanos)
	sw.U64(d.counters.evictedProjected)
	sw.U64(d.counters.evictedBase)
	sw.U64(d.counters.promoted)
	sw.U64(d.counters.demoted)
	sw.U64(d.counters.evolverPanics)
	if err := sw.End(); err != nil {
		return err
	}

	if hasEvolverState {
		sw.Begin(secEvolver)
		sw.Bytes32(evolverState)
		if err := sw.End(); err != nil {
			return err
		}
	}
	if d.topk != nil {
		sw.Begin(secScore)
		encodeScoreState(sw, d.topk)
		if err := sw.End(); err != nil {
			return err
		}
	}
	if d.auto != nil {
		sw.Begin(secAuto)
		d.encodeAutoState(sw)
		if err := sw.End(); err != nil {
			return err
		}
	}
	if err := sw.Close(); err != nil {
		return err
	}
	d.counters.checkpoints++
	d.counters.checkpointNanos += uint64(time.Since(start).Nanoseconds())
	d.counters.checkpointBytes = uint64(sw.Bytes())
	return nil
}

// corruptf wraps a content-validation failure as snapshot.ErrCorrupt,
// so callers branch on one sentinel for "the bytes are wrong" across
// the codec and semantic layers.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{snapshot.ErrCorrupt}, args...)...)
}

// next reads the next section and requires it to carry the wanted ID;
// the canonical section order is part of the format.
func next(r *snapshot.Reader, want uint32) (*snapshot.Section, error) {
	sec, err := r.Next()
	if err != nil {
		if err == io.EOF {
			return nil, corruptf("stream ended before section %d", want)
		}
		return nil, err
	}
	if sec.ID != want {
		return nil, corruptf("section %d where %d was expected", sec.ID, want)
	}
	return sec, nil
}

// savedSub is one subspace's dynamic state as read from a shard
// section, pending application to the rebuilt detector.
type savedSub struct {
	sid          uint32
	total        core.PCS
	repsLast     uint64
	repMin       float64
	repMinI      int32
	skipCoalesce uint8
	repKeys      []uint64
	repDcs       []float64
}

// savedShard is one shard section, pending application.
type savedShard struct {
	subs                                    []savedSub
	coalPoints, coalDistinct, coalGroupings uint64
	cellKeys                                []uint64
	cells                                   []core.PCS
}

// Restore rebuilds a detector from a snapshot written by
// Detector.Snapshot, verifying every section CRC on the way through.
// cfg must agree with the snapshot on every state-shaping parameter —
// Dims, Phi, MaxSubspaceDim, K, Lambda, and the presence and
// composition of a state-carrying Evolver (ErrConfigMismatch
// otherwise). Shards may differ: with the snapshot's shard count the
// restored detector is an exact replica and continues bit-identically;
// with a different count the subspaces are re-dealt under the same
// rules New and the epoch path use, with the same ULP-level caveat as
// any other shard-count change. Corrupt input fails with a typed error
// (snapshot.ErrChecksum, snapshot.ErrTruncated, snapshot.ErrCorrupt,
// ...) and never panics; the partially built detector is discarded.
func Restore(r io.Reader, cfg Config) (*Detector, error) {
	sr, err := snapshot.NewReader(r)
	if err != nil {
		return nil, err
	}
	d, err := New(cfg)
	if err != nil {
		return nil, err
	}

	sec, err := next(sr, secMeta)
	if err != nil {
		return nil, err
	}
	dims := int(sec.U32())
	phi := int(sec.U32())
	maxSub := int(sec.U32())
	fileShards := int(sec.U32())
	k := int(sec.U32())
	sec.U64() // EpochTicks: informational; the restore Config governs
	lambda := sec.F64()
	tick := sec.U64()
	hasEvolver := sec.Bool()
	hasEvolverState := sec.Bool()
	scoring := sec.Bool()
	topK := int(sec.U32())
	autoOn := sec.Bool()
	autoRisk := sec.F64()
	autoLevel := sec.F64()
	if err := sec.Err(); err != nil {
		return nil, err
	}
	switch {
	case dims != cfg.Dims:
		return nil, fmt.Errorf("%w: snapshot has %d dims, config %d", ErrConfigMismatch, dims, cfg.Dims)
	case phi != cfg.Phi:
		return nil, fmt.Errorf("%w: snapshot has phi %d, config %d", ErrConfigMismatch, phi, cfg.Phi)
	case maxSub != cfg.MaxSubspaceDim:
		return nil, fmt.Errorf("%w: snapshot has MaxSubspaceDim %d, config %d", ErrConfigMismatch, maxSub, cfg.MaxSubspaceDim)
	case k != cfg.K:
		return nil, fmt.Errorf("%w: snapshot has K %d, config %d", ErrConfigMismatch, k, cfg.K)
	case lambda != cfg.Lambda:
		return nil, fmt.Errorf("%w: snapshot has Lambda %g, config %g", ErrConfigMismatch, lambda, cfg.Lambda)
	case hasEvolver != (cfg.Evolver != nil):
		return nil, fmt.Errorf("%w: snapshot evolver presence %v, config %v", ErrConfigMismatch, hasEvolver, cfg.Evolver != nil)
	case scoring != cfg.Scoring:
		return nil, fmt.Errorf("%w: snapshot scoring %v, config %v", ErrConfigMismatch, scoring, cfg.Scoring)
	case topK != cfg.TopK:
		return nil, fmt.Errorf("%w: snapshot TopK %d, config %d", ErrConfigMismatch, topK, cfg.TopK)
	case autoOn != (d.auto != nil):
		return nil, fmt.Errorf("%w: snapshot auto-threshold presence %v, config %v", ErrConfigMismatch, autoOn, d.auto != nil)
	case autoOn && autoRisk != cfg.AutoThreshold.Risk:
		return nil, fmt.Errorf("%w: snapshot AutoThreshold.Risk %g, config %g", ErrConfigMismatch, autoRisk, cfg.AutoThreshold.Risk)
	case autoOn && autoLevel != cfg.AutoThreshold.Level:
		return nil, fmt.Errorf("%w: snapshot AutoThreshold.Level %g, config %g", ErrConfigMismatch, autoLevel, cfg.AutoThreshold.Level)
	}
	_, marshalable := d.cfg.Evolver.(sst.StateMarshaler)
	if hasEvolverState != marshalable {
		return nil, fmt.Errorf("%w: snapshot evolver state presence %v, config evolver marshalable %v",
			ErrConfigMismatch, hasEvolverState, marshalable)
	}
	if fileShards < 1 {
		return nil, corruptf("snapshot declares %d shards", fileShards)
	}
	d.tick = tick

	sec, err = next(sr, secTemplate)
	if err != nil {
		return nil, err
	}
	nSlots := sec.Count(1)
	slots := make([]sst.EvolvedSlot, nSlots)
	for i := range slots {
		slots[i].Active = sec.Bool()
		if !slots[i].Active {
			continue
		}
		arity := int(sec.U8())
		if arity < 1 || arity > core.MaxSubspaceDims {
			return nil, corruptf("evolved slot %d arity %d", i, arity)
		}
		slots[i].Dims = make([]uint16, arity)
		for j := range slots[i].Dims {
			slots[i].Dims[j] = sec.U16()
		}
	}
	nFree := sec.Count(4)
	free := make([]uint32, nFree)
	for i := range free {
		free[i] = sec.U32()
	}
	if err := sec.Err(); err != nil {
		return nil, err
	}
	if err := d.tmpl.RestoreEvolved(slots, free); err != nil {
		return nil, corruptf("%v", err)
	}

	saved := make([]savedShard, fileShards)
	nSubs := d.tmpl.Count()
	for si := range saved {
		sec, err = next(sr, secShard)
		if err != nil {
			return nil, err
		}
		if idx := int(sec.U32()); idx != si {
			return nil, corruptf("shard section %d where %d was expected", idx, si)
		}
		ss := &saved[si]
		n := sec.Count(8)
		ss.subs = make([]savedSub, n)
		for i := range ss.subs {
			sub := &ss.subs[i]
			sub.sid = sec.U32()
			sub.total = core.PCS{Dc: sec.F64(), S: sec.F64(), Q: sec.F64(), Last: sec.U64()}
			sub.repsLast = sec.U64()
			sub.repMin = sec.F64()
			sub.repMinI = int32(sec.U32())
			sub.skipCoalesce = sec.U8()
			sub.repKeys = make([]uint64, k)
			sub.repDcs = make([]float64, k)
			for j := 0; j < k; j++ {
				sub.repKeys[j] = sec.U64()
				sub.repDcs[j] = sec.F64()
			}
			if sec.Err() == nil {
				if int(sub.sid) >= nSubs || !d.tmpl.Active(int(sub.sid)) {
					return nil, corruptf("shard %d references dead subspace %d", si, sub.sid)
				}
				if sub.repMinI < 0 || int(sub.repMinI) >= k {
					return nil, corruptf("subspace %d repMinI %d out of [0,%d)", sub.sid, sub.repMinI, k)
				}
			}
		}
		ss.coalPoints = sec.U64()
		ss.coalDistinct = sec.U64()
		ss.coalGroupings = sec.U64()
		nCells := sec.Count(40)
		ss.cellKeys = make([]uint64, nCells)
		ss.cells = make([]core.PCS, nCells)
		for i := range ss.cells {
			ss.cellKeys[i] = sec.U64()
			ss.cells[i] = core.PCS{Dc: sec.F64(), S: sec.F64(), Q: sec.F64(), Last: sec.U64()}
		}
		if err := sec.Err(); err != nil {
			return nil, err
		}
	}
	if err := d.restoreShards(saved); err != nil {
		return nil, err
	}

	sec, err = next(sr, secBase)
	if err != nil {
		return nil, err
	}
	nBase := sec.Count(1)
	for i := 0; i < nBase; i++ {
		key := sec.Bytes32()
		b := &core.BCS{Dc: sec.F64(), Last: sec.U64(), LS: make([]float64, cfg.Dims), SS: make([]float64, cfg.Dims)}
		for j := range b.LS {
			b.LS[j] = sec.F64()
		}
		for j := range b.SS {
			b.SS[j] = sec.F64()
		}
		if sec.Err() != nil {
			break
		}
		if err := d.bcs.Load(string(key), b); err != nil {
			return nil, corruptf("%v", err)
		}
	}
	if err := sec.Err(); err != nil {
		return nil, err
	}

	sec, err = next(sr, secExamples)
	if err != nil {
		return nil, err
	}
	nEx := sec.Count(1)
	for i := 0; i < nEx; i++ {
		coords := sec.Bytes32()
		exTick := sec.U64()
		if sec.Err() != nil {
			break
		}
		if len(coords) != cfg.Dims {
			return nil, corruptf("example %d has %d coords in a %d-dimensional space", i, len(coords), cfg.Dims)
		}
		d.examples = append(d.examples, sst.Example{Coords: append([]uint8(nil), coords...), Tick: exTick})
	}
	if err := sec.Err(); err != nil {
		return nil, err
	}

	sec, err = next(sr, secCounters)
	if err != nil {
		return nil, err
	}
	for i := range d.popAvg {
		d.popAvg[i] = sec.F64()
	}
	d.counters.sweeps = sec.U64()
	d.counters.sweepNanos = sec.U64()
	d.counters.evictedProjected = sec.U64()
	d.counters.evictedBase = sec.U64()
	d.counters.promoted = sec.U64()
	d.counters.demoted = sec.U64()
	d.counters.evolverPanics = sec.U64()
	if err := sec.Err(); err != nil {
		return nil, err
	}

	if hasEvolverState {
		sec, err = next(sr, secEvolver)
		if err != nil {
			return nil, err
		}
		payload := sec.Bytes32()
		if err := sec.Err(); err != nil {
			return nil, err
		}
		if err := d.cfg.Evolver.(sst.StateMarshaler).UnmarshalState(payload); err != nil {
			return nil, corruptf("evolver state: %v", err)
		}
	}
	if d.topk != nil {
		sec, err = next(sr, secScore)
		if err != nil {
			return nil, err
		}
		if err := decodeScoreState(sec, d.topk, d.tick); err != nil {
			return nil, err
		}
	}
	if d.auto != nil {
		sec, err = next(sr, secAuto)
		if err != nil {
			return nil, err
		}
		if err := d.decodeAutoState(sec); err != nil {
			return nil, err
		}
	}
	// Thresholds are derived state: populated-RD floors from the
	// restored popAvg, or — in auto mode — the restored calibrators'
	// thresholds, so they are published after every section landed.
	d.refreshThresholds()
	// Drain the end marker; anything else trailing is corruption.
	if _, err := sr.Next(); err != io.EOF {
		if err == nil {
			return nil, corruptf("trailing section after the counters")
		}
		return nil, err
	}
	return d, nil
}

// encodeAutoState serializes the auto-thresholding state into the open
// secAuto section: the effective-trials controller, the epoch flag
// window, the lifetime counters, the sampling geometry, then — per
// (measure, arity) in fixed order — the calibrator's full fit state,
// the rolling sample window (oldest first) and the current epoch's
// per-slot sample minima, min-merged across shards. The merged form
// makes the section independent of the shard layout, so a checkpoint
// restores across shard counts; a restored detector re-merges against
// +Inf in the other shards and reproduces the identical window pushes
// at the next sweep.
func (d *Detector) encodeAutoState(sw *snapshot.Writer) {
	a := d.auto
	sw.F64(a.effTrials)
	sw.F64(a.emaFlags)
	sw.F64(a.emaPoints)
	sw.U64(a.epochFlags)
	sw.U64(a.epochPoints)
	sw.U64(a.calibrations)
	sw.U64(a.samples)
	sw.U64(a.stride)
	sw.U64(uint64(a.nSlots))
	for m := 0; m < autoMeasures; m++ {
		for ar := 1; ar <= core.MaxSubspaceDims; ar++ {
			st := a.cals[m][ar].State()
			sw.Bool(st.Calibrated)
			sw.F64(st.Z)
			sw.F64(st.T)
			sw.F64(st.Gamma)
			sw.F64(st.Sigma)
			sw.U64(st.N)
			sw.U64(st.Nt)
			n := a.winLen[m][ar]
			w := a.win[m][ar]
			sw.U32(uint32(n))
			if n < len(w) {
				// Ring not yet wrapped: logical order is array order.
				for _, v := range w[:n] {
					sw.F64(v)
				}
			} else {
				for i := 0; i < n; i++ {
					sw.F64(w[(a.winPos[m][ar]+i)%n])
				}
			}
			for slot := 0; slot < a.nSlots; slot++ {
				v := math.Inf(1)
				for _, sh := range d.shards {
					if s := sh.autoSamp[m][ar][slot]; s < v {
						v = s
					}
				}
				sw.F64(v)
			}
		}
	}
}

// decodeAutoState rebuilds the auto-thresholding state from a secAuto
// section, validating the controller invariants (effTrials within its
// clamp bounds, finite EMA window, calibrated thresholds finite and
// non-negative, sample values not NaN, sampling geometry matching the
// config-derived one) so a corrupt section fails typed instead of
// poisoning every future verdict. The merged per-slot minima land in
// shard 0's buffers; the other shards keep +Inf, so the next sweep's
// min-merge reproduces the snapshotted values exactly.
func (d *Detector) decodeAutoState(sec *snapshot.Section) error {
	a := d.auto
	a.effTrials = sec.F64()
	a.emaFlags = sec.F64()
	a.emaPoints = sec.F64()
	a.epochFlags = sec.U64()
	a.epochPoints = sec.U64()
	a.calibrations = sec.U64()
	a.samples = sec.U64()
	stride := sec.U64()
	nSlots := sec.U64()
	if err := sec.Err(); err != nil {
		return err
	}
	if !(a.effTrials >= 1 && a.effTrials <= autoTrialsMax) {
		return corruptf("auto effTrials %g outside [1, %d]", a.effTrials, autoTrialsMax)
	}
	if !(a.emaFlags >= 0) || !(a.emaPoints >= 0) || math.IsInf(a.emaFlags, 0) || math.IsInf(a.emaPoints, 0) {
		return corruptf("auto EMA window (%g flags / %g points) is not a finite non-negative pair", a.emaFlags, a.emaPoints)
	}
	if stride != a.stride || nSlots != uint64(a.nSlots) {
		return corruptf("auto sampling geometry (stride %d, %d slots) does not match the config-derived (%d, %d)",
			stride, nSlots, a.stride, a.nSlots)
	}
	for m := 0; m < autoMeasures; m++ {
		for ar := 1; ar <= core.MaxSubspaceDims; ar++ {
			st := evt.State{Calibrated: sec.Bool(), Z: sec.F64(), T: sec.F64(), Gamma: sec.F64(), Sigma: sec.F64(), N: sec.U64(), Nt: sec.U64()}
			if sec.Err() != nil {
				return sec.Err()
			}
			if st.Calibrated && (!(st.Z >= 0) || math.IsInf(st.Z, 0)) {
				return corruptf("auto calibrator (measure %d, arity %d) threshold %g", m, ar, st.Z)
			}
			if st.Nt > st.N {
				return corruptf("auto calibrator (measure %d, arity %d) tail %d exceeds census %d", m, ar, st.Nt, st.N)
			}
			a.cals[m][ar].SetState(st)
			n := sec.Count(8)
			if sec.Err() != nil {
				return sec.Err()
			}
			if n > autoWindowCap {
				return corruptf("auto sample window (measure %d, arity %d) holds %d samples, capacity %d", m, ar, n, autoWindowCap)
			}
			w := a.win[m][ar]
			for i := 0; i < n; i++ {
				v := sec.F64()
				if v != v {
					return corruptf("auto sample window (measure %d, arity %d) sample %d is NaN", m, ar, i)
				}
				w[i] = v
			}
			a.winLen[m][ar] = n
			a.winPos[m][ar] = n % autoWindowCap
			slots := d.shards[0].autoSamp[m][ar]
			for slot := 0; slot < a.nSlots; slot++ {
				v := sec.F64()
				if v != v {
					return corruptf("auto slot buffer (measure %d, arity %d) slot %d is NaN", m, ar, slot)
				}
				slots[slot] = v
			}
		}
	}
	return sec.Err()
}

// encodeScoreState serializes the top-K heap into the open secScore
// section: the ranking-key rebase anchor, the entry count, then each
// slot's (tick, raw score) in heap array order, so a restore
// reproduces the exact slot layout — and therefore the exact future
// displacement and query behavior — rather than a merely equivalent
// heap. Ranking keys are not stored: they are a pure function of
// (tick, score, λ, base) and are recomputed bit-identically on
// restore.
func encodeScoreState(sw *snapshot.Writer, h *topK) {
	sw.U64(h.base)
	sw.U32(uint32(len(h.ticks)))
	for i := range h.ticks {
		sw.U64(h.ticks[i])
		sw.F64(h.scores[i])
	}
}

// decodeScoreState rebuilds the heap from a secScore section into h
// (built empty at the config's capacity). Entries are validated —
// count within capacity, scores finite in (0,1] (the noisy-OR range),
// ticks not past the stream tick, and the min-heap property over the
// recomputed keys — with any violation reported as snapshot.ErrCorrupt.
func decodeScoreState(sec *snapshot.Section, h *topK, tick uint64) error {
	base := sec.U64()
	n := sec.Count(16)
	if err := sec.Err(); err != nil {
		return err
	}
	if base > tick {
		return corruptf("top-K rebase anchor %d is past the stream tick %d", base, tick)
	}
	if n > h.k {
		return corruptf("top-K holds %d entries, capacity %d", n, h.k)
	}
	h.base = base
	h.ticks = h.ticks[:0]
	h.scores = h.scores[:0]
	h.keys = h.keys[:0]
	for i := 0; i < n; i++ {
		t := sec.U64()
		s := sec.F64()
		if sec.Err() != nil {
			break
		}
		if !(s > 0 && s <= 1) {
			return corruptf("top-K entry %d score %g outside (0,1]", i, s)
		}
		if t > tick {
			return corruptf("top-K entry %d tick %d is past the stream tick %d", i, t, tick)
		}
		h.ticks = append(h.ticks, t)
		h.scores = append(h.scores, s)
		h.keys = append(h.keys, h.rankKey(t, s))
	}
	if err := sec.Err(); err != nil {
		return err
	}
	for i := 1; i < len(h.ticks); i++ {
		if h.below(i, (i-1)/2) {
			return corruptf("top-K entry %d violates the heap order", i)
		}
	}
	return nil
}

// restoreShards applies the saved per-shard state to the freshly built
// detector. With the snapshot's shard count the saved layout is
// replayed exactly — same subspace order per shard, same dense cell
// order per table — so continuation is bit-identical down to the
// sweep's accumulation order. With a different count the evolved
// subspaces are re-dealt least-loaded in ascending ID order (the fixed
// group re-deals by id % Shards inside New) and each shard's cells are
// routed to their subspace's new owner, preserving relative dense
// order per source shard.
func (d *Detector) restoreShards(saved []savedShard) error {
	k := d.cfg.K
	exact := len(saved) == len(d.shards)

	// Every live subspace must appear exactly once across the saved
	// shards, and in exact mode each shard's fixed prefix must be the
	// deal New just performed.
	owner := make([]int32, d.tmpl.Count())
	for i := range owner {
		owner[i] = -1
	}
	for si := range saved {
		for _, sub := range saved[si].subs {
			if owner[sub.sid] != -1 {
				return corruptf("subspace %d appears on two shards", sub.sid)
			}
			owner[sub.sid] = int32(si)
		}
	}
	for id := 0; id < d.tmpl.Count(); id++ {
		if d.tmpl.Active(id) && owner[id] == -1 {
			return corruptf("live subspace %d missing from every shard", id)
		}
	}

	if exact {
		for si, sh := range d.shards {
			fixed := len(sh.subs)
			if len(saved[si].subs) < fixed {
				return corruptf("shard %d holds %d subspaces, fewer than its %d fixed ones", si, len(saved[si].subs), fixed)
			}
			for li := 0; li < fixed; li++ {
				if saved[si].subs[li].sid != sh.subs[li] {
					return corruptf("shard %d fixed slot %d holds subspace %d, expected %d",
						si, li, saved[si].subs[li].sid, sh.subs[li])
				}
			}
			for _, sub := range saved[si].subs[fixed:] {
				if d.tmpl.IsFixed(int(sub.sid)) {
					return corruptf("fixed subspace %d in shard %d's evolved tail", sub.sid, si)
				}
				for int(sub.sid) >= len(d.owner) {
					d.owner = append(d.owner, 0)
				}
				d.owner[sub.sid] = int32(si)
				sh.addSubspace(sub.sid)
			}
		}
	} else {
		// Re-deal: evolved subspaces go least-loaded in ascending ID
		// order, the tie-break applyEvolution uses (first shard with
		// the strictly smallest load wins).
		for _, id := range d.tmpl.EvolvedIDs(nil) {
			best := 0
			for i := 1; i < len(d.shards); i++ {
				if len(d.shards[i].subs) < len(d.shards[best].subs) {
					best = i
				}
			}
			for int(id) >= len(d.owner) {
				d.owner = append(d.owner, 0)
			}
			d.owner[id] = int32(best)
			d.shards[best].addSubspace(id)
		}
	}

	// Locate every subspace in the rebuilt deal and overwrite its
	// dynamic state with the saved one.
	type place struct {
		sh *shard
		li int
	}
	at := make(map[uint32]place, d.tmpl.Count())
	for _, sh := range d.shards {
		for li, sid := range sh.subs {
			at[sid] = place{sh, li}
		}
	}
	for si := range saved {
		for i := range saved[si].subs {
			sub := &saved[si].subs[i]
			p := at[sub.sid]
			st := &p.sh.states[p.li]
			st.total = sub.total
			st.repsLast = sub.repsLast
			st.repMin = sub.repMin
			st.repMinI = sub.repMinI
			st.skipCoalesce = sub.skipCoalesce
			copy(p.sh.repKeys[p.li*k:(p.li+1)*k], sub.repKeys)
			copy(p.sh.repDcs[p.li*k:(p.li+1)*k], sub.repDcs)
		}
	}

	// Replay the cells in their saved dense order; in exact mode every
	// cell stays on its shard, so the dense layout — and the sweep
	// accumulation order that follows from it — is reproduced exactly.
	for si := range saved {
		ss := &saved[si]
		for i, key := range ss.cellKeys {
			sid := uint32(key >> core.SubspaceShift)
			if int(sid) >= d.tmpl.Count() || !d.tmpl.Active(int(sid)) {
				return corruptf("cell %#x references dead subspace %d", key, sid)
			}
			if exact && d.owner[sid] != int32(si) {
				return corruptf("cell %#x of subspace %d stored on shard %d, owner is %d", key, sid, si, d.owner[sid])
			}
			if err := d.shards[d.owner[sid]].table.Append(key, ss.cells[i]); err != nil {
				return corruptf("%v", err)
			}
		}
		if exact {
			sh := d.shards[si]
			sh.coalPoints = ss.coalPoints
			sh.coalDistinct = ss.coalDistinct
			sh.coalGroupings = ss.coalGroupings
		} else if si == 0 {
			// Re-deal folds the coalescing telemetry onto shard 0; the
			// aggregate Stats the caller sees are unchanged.
			for j := range saved {
				d.shards[0].coalPoints += saved[j].coalPoints
				d.shards[0].coalDistinct += saved[j].coalDistinct
				d.shards[0].coalGroupings += saved[j].coalGroupings
			}
		}
	}
	return nil
}
