package stream

import (
	"errors"
	"math"
	"testing"
)

// feedClean ingests n deterministic finite points and returns the
// verdicts, so tests can compare a detector that survived a rejected
// poison point against one that never saw it.
func feedClean(t *testing.T, det *Detector, n int) []bool {
	t.Helper()
	next := uniformStream(41, det.cfg.Dims)
	buf := make([]float64, det.cfg.Dims)
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		next(buf)
		out[i] = det.Process(buf)
	}
	return out
}

// TestNonFiniteRejected: every NaN/±Inf placement returns ErrNonFinite
// from both error-returning entry points, with the offending point and
// dimension named in the message.
func TestNonFiniteRejected(t *testing.T) {
	cfg := DefaultConfig(4)
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	poisons := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, p := range poisons {
		for dim := 0; dim < cfg.Dims; dim++ {
			pt := []float64{0.1, 0.2, 0.3, 0.4}
			pt[dim] = p
			if _, err := det.ProcessErr(pt); !errors.Is(err, ErrNonFinite) {
				t.Fatalf("ProcessErr(%g at dim %d) = %v, want ErrNonFinite", p, dim, err)
			}
			batch := append(append([]float64{0.5, 0.5, 0.5, 0.5}, pt...), 0.6, 0.6, 0.6, 0.6)
			out := make([]bool, 3)
			if _, err := det.ProcessBatchErr(batch, out); !errors.Is(err, ErrNonFinite) {
				t.Fatalf("ProcessBatchErr(%g at dim %d) = %v, want ErrNonFinite", p, dim, err)
			}
		}
	}
}

// TestNonFiniteRejectBeforeMutate: a rejected point must leave no trace.
// Tick and the summary tables stay untouched, and every later verdict is
// identical to a detector that never saw the poison — the reject happens
// before any state mutation, not after a partial one.
func TestNonFiniteRejectBeforeMutate(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.EpochTicks = 128
	dirty, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dirty.Close()
	clean, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()

	// Warm both, then hit only one with poison between clean points.
	warm := uniformStream(43, cfg.Dims)
	buf := make([]float64, cfg.Dims)
	for i := 0; i < 300; i++ {
		warm(buf)
		dirty.Process(buf)
		clean.Process(buf)
	}
	before := dirty.Stats()
	if _, err := dirty.ProcessErr([]float64{0.1, math.NaN(), 0.3, 0.4}); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("poison point not rejected: %v", err)
	}
	out := make([]bool, 2)
	if _, err := dirty.ProcessBatchErr([]float64{
		0.1, 0.2, 0.3, 0.4,
		math.Inf(-1), 0.2, 0.3, 0.4,
	}, out); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("poison batch not rejected: %v", err)
	}
	after := dirty.Stats()
	if after.Tick != before.Tick || after.BaseCells != before.BaseCells || after.SummaryEntries != before.SummaryEntries {
		t.Fatalf("rejected input mutated state: before %+v after %+v", before, after)
	}
	dv := feedClean(t, dirty, 600)
	cv := feedClean(t, clean, 600)
	for i := range dv {
		if dv[i] != cv[i] {
			t.Fatalf("verdict %d diverged after rejected poison: dirty=%v clean=%v", i, dv[i], cv[i])
		}
	}
}

// TestNonFinitePanicsOnPanicAPI: the panic-flavored entry points wrap
// the same typed error, so defensive callers can still errors.Is it.
func TestNonFinitePanicsOnPanicAPI(t *testing.T) {
	cfg := DefaultConfig(2)
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s did not panic on non-finite input", name)
			}
			if e, ok := r.(error); !ok || !errors.Is(e, ErrNonFinite) {
				t.Fatalf("%s panicked with %v, want ErrNonFinite", name, r)
			}
		}()
		f()
	}
	mustPanic("Process", func() { det.Process([]float64{math.NaN(), 1}) })
	mustPanic("ProcessBatch", func() {
		det.ProcessBatch([]float64{1, 2, 3, math.Inf(1)}, make([]bool, 2))
	})
}
