package stream

import (
	"bytes"
	"sort"
	"time"

	"spot/internal/core"
	"spot/internal/sst"
)

// Epoch sweep: the periodic pass that closes the lazy-decay lifecycle.
// Ingestion only ever touches the one cell a point lands in, so a cell
// abandoned by a drifting stream is never visited again — without a
// sweep its near-zero summary lingers forever and memory grows with
// every distinct cell ever touched. Every Config.EpochTicks ticks the
// detector therefore walks all summary tables once while its workers
// are idle, and uses the same scan three ways:
//
//  1. Eviction — summaries whose decayed density fell below
//     Config.EvictEpsilon are dropped, bounding the table size by the
//     stream's recent footprint instead of its history.
//  2. Density accounting — per-arity averages over the surviving
//     (populated) cells become the reference for the arity-aware RD
//     test (Config.RDPopulatedThreshold).
//  3. SST evolution — the surviving base cells and per-subspace sparse
//     statistics are handed to the Evolver, which may promote new
//     self-evolving subspaces into the template or demote stale ones;
//     shard assignment of promoted subspaces happens here too, so the
//     hot path never observes a template mutation.
//
// All sweep decisions derive from globally merged statistics: the
// base-cell snapshot is sorted by coordinates and the per-arity
// averages are reduced in subspace-ID order, so evolution and verdicts
// are independent of the shard count and of Go's randomized map
// iteration — up to floating-point rounding of the per-subspace cell
// sums, whose order can differ at the ULP level. Tests assert strict
// invariance but exercise margins far wider than rounding noise.

// arityAccum accumulates populated-cell statistics for one subspace
// arity during a sweep.
type arityAccum struct {
	cells int
	dc    float64
}

// epochCounters are the lifetime totals of the epoch engine, exposed
// through Stats.
type epochCounters struct {
	sweeps           uint64
	sweepNanos       uint64
	evictedProjected uint64
	evictedBase      uint64
	promoted         uint64
	demoted          uint64
	evolverPanics    uint64

	// Checkpoint telemetry, process-local (never serialized): counts
	// and wall time of Snapshot calls, and the last snapshot's size.
	checkpoints     uint64
	checkpointNanos uint64
	checkpointBytes uint64
}

// maybeSweep runs an epoch sweep when the stream just crossed an epoch
// boundary. Called with shard workers idle.
func (d *Detector) maybeSweep() {
	if d.cfg.EpochTicks > 0 && d.tick%d.cfg.EpochTicks == 0 {
		d.epochSweep()
	}
}

// epochSweep performs one full sweep at the current tick: shard tables
// first (eviction, per-subspace and per-arity accounting), then the
// base-cell table, then the per-arity averages, then evolution. When
// the shard workers are running (batch mode) and SerialSweep is off,
// the per-shard table sweeps fan out to the workers — each shard's
// table is exclusively its own and each subspace's perSub entry is
// written by exactly one shard, so the parallel sweep produces
// bit-identical statistics — while the dispatcher overlaps the
// base-cell sweep; the epoch pause then shrinks from the sum of the
// table scans to roughly the largest one.
func (d *Detector) epochSweep() {
	start := time.Now()
	tick := d.tick
	eps := d.cfg.EvictEpsilon

	if n := d.tmpl.Count(); cap(d.perSub) < n {
		d.perSub = make([]sst.SubspaceStats, n)
	} else {
		d.perSub = d.perSub[:n]
		for i := range d.perSub {
			d.perSub[i] = sst.SubspaceStats{}
		}
	}
	parallel := d.workersUp && !d.cfg.SerialSweep && len(d.shards) > 1
	if parallel {
		for _, ch := range d.jobs {
			ch <- job{sweep: true, t0: tick, eps: eps}
		}
	} else {
		for _, sh := range d.shards {
			d.counters.evictedProjected += uint64(sh.sweep(tick, eps, d.perSub))
		}
	}

	collect := d.cfg.Evolver != nil
	d.baseCells = d.baseCells[:0]
	// The arena backs every snapshot Coords slice; pre-sizing it to the
	// pre-sweep table footprint (an upper bound on survivors) keeps the
	// collect pass to a single allocation at most.
	if need := d.bcs.Len() * d.cfg.Dims; cap(d.coordArena) < need {
		d.coordArena = make([]uint8, 0, need)
	}
	d.coordArena = d.coordArena[:0]
	baseTotal := 0.0
	d.counters.evictedBase += uint64(d.bcs.Sweep(d.decay, tick, eps, func(key string, _ *core.BCS, dc float64) {
		baseTotal += dc
		if collect {
			off := len(d.coordArena)
			d.coordArena = append(d.coordArena, key...)
			d.baseCells = append(d.baseCells, sst.BaseCell{Coords: d.coordArena[off:], Dc: dc})
		}
	}))
	if parallel {
		for range d.shards {
			<-d.done
		}
		for _, sh := range d.shards {
			d.counters.evictedProjected += uint64(sh.sweepEvicted)
		}
	}
	// Map iteration order is randomized; sort the snapshot so evolver
	// decisions are reproducible run to run.
	sort.Slice(d.baseCells, func(i, j int) bool {
		return bytes.Compare(d.baseCells[i].Coords, d.baseCells[j].Coords) < 0
	})

	// Per-arity populated averages, reduced from the per-subspace sums
	// in subspace-ID order so the result does not depend on how cells
	// interleave across shard tables.
	var perArity [core.MaxSubspaceDims + 1]arityAccum
	for sid := range d.perSub {
		if st := &d.perSub[sid]; st.Populated > 0 {
			a := &perArity[d.tmpl.Size(sid)]
			a.cells += st.Populated
			a.dc += st.TotalDc
		}
	}
	for a := range d.popAvg {
		if perArity[a].cells > 0 {
			d.popAvg[a] = perArity[a].dc / float64(perArity[a].cells)
		} else {
			d.popAvg[a] = 0
		}
	}
	d.counters.sweeps++
	d.counters.sweepNanos += uint64(time.Since(start).Nanoseconds())

	// EVT auto-thresholding: merge the epoch's per-point measure
	// samples across shards and refit the per-(measure, arity)
	// calibrators. Thresholds are published below via
	// refreshThresholds, after evolution, so promoted subspaces get
	// calibrated thresholds immediately.
	if d.auto != nil {
		d.autoRefit()
	}

	if collect {
		// Expire labeled examples past their TTL before the evolver
		// sees them; the set is kept in arrival (tick) order, so the
		// survivors are a suffix.
		if ttl := d.cfg.ExampleTTL; ttl > 0 {
			keep := 0
			for keep < len(d.examples) && tick-d.examples[keep].Tick > ttl {
				keep++
			}
			if keep > 0 {
				n := copy(d.examples, d.examples[keep:])
				d.examples = d.examples[:n]
			}
		}
		stats := sst.EpochStats{
			Tick:      tick,
			BaseTotal: baseTotal,
			BaseCells: d.baseCells,
			Subspaces: d.perSub,
			Examples:  d.examples,
		}
		d.applyEvolution(d.safeEvolve(&stats))
	}
	// Publish the new thresholds — calibrated EVT thresholds in auto
	// mode, the arity-aware populated-RD floors otherwise — as
	// per-subspace precomputed fields so the hot path tests each
	// measure with one compare. After evolution, so subspaces promoted
	// this sweep get their values immediately instead of sitting a
	// full epoch on the construction-time defaults.
	d.refreshThresholds()
	// Top-K epoch decay: entries whose faded score fell below the same
	// eviction floor the summary tables use are dropped, so the
	// worst-offenders window forgets at the stream's pace. Depends
	// only on (tick, eps), so batch and pointwise heaps stay
	// identical.
	if d.topk != nil {
		d.topk.decayEvict(d.decay, tick, eps)
	}
}

// safeEvolve invokes the configured Evolver with panic containment:
// an evolver that panics mid-epoch yields an empty verdict — nothing
// promoted, nothing demoted — and increments Stats.EvolverPanics,
// instead of unwinding the sweep and taking the detector's learned
// state down with it. The template is only mutated by applyEvolution
// after Evolve returns, so a panicking evolver cannot leave it
// half-mutated.
func (d *Detector) safeEvolve(stats *sst.EpochStats) (ev sst.Evolution) {
	defer func() {
		if r := recover(); r != nil {
			d.counters.evolverPanics++
			ev = sst.Evolution{}
		}
	}()
	return d.cfg.Evolver.Evolve(d.tmpl, stats)
}

// applyEvolution mutates the template and shard assignment per the
// evolver's verdict: demotions first (freeing slots and purging their
// cells), then promotions onto the least-loaded shards.
func (d *Detector) applyEvolution(ev sst.Evolution) {
	for _, id := range ev.Demote {
		if err := d.tmpl.Demote(id); err != nil {
			continue // e.g. a fixed-group ID from a misbehaving evolver
		}
		d.shards[d.owner[id]].removeSubspace(id)
		d.counters.demoted++
	}
	for _, dims := range ev.Promote {
		id, err := d.tmpl.Promote(dims)
		if err != nil {
			continue // duplicate or malformed proposal
		}
		best := 0
		for i := 1; i < len(d.shards); i++ {
			if len(d.shards[i].subs) < len(d.shards[best].subs) {
				best = i
			}
		}
		for int(id) >= len(d.owner) {
			d.owner = append(d.owner, 0)
		}
		d.owner[id] = int32(best)
		d.shards[best].addSubspace(id)
		d.counters.promoted++
	}
}

// Stats is a point-in-time snapshot of the detector's summary-table
// sizes and epoch-engine lifetime counters.
type Stats struct {
	// Tick is the number of points ingested.
	Tick uint64
	// BaseCells and ProjectedCells are the current summary-table sizes;
	// SummaryEntries is their sum — the quantity the epoch engine
	// bounds on drifting streams.
	BaseCells      int
	ProjectedCells int
	SummaryEntries int
	// Sweeps is how many epoch sweeps have run; SweepNanos is the
	// cumulative wall time of their table scans (eviction + density
	// accounting, excluding SST evolution), so SweepNanos/Sweeps is
	// the average epoch pause.
	Sweeps     uint64
	SweepNanos uint64
	// EvictedProjected and EvictedBase count summaries evicted from the
	// shard tables and the base-cell table across all sweeps.
	EvictedProjected uint64
	EvictedBase      uint64
	// EvolvedActive is the current number of live self-evolving SST
	// subspaces; Promoted and Demoted are lifetime totals.
	EvolvedActive int
	Promoted      uint64
	Demoted       uint64
	// EvolverPanics counts epoch sweeps whose Evolver invocation
	// panicked and was contained: the sweep applied no evolution that
	// epoch and processing continued.
	EvolverPanics uint64
	// Checkpoints, CheckpointNanos and CheckpointBytes describe this
	// process's Snapshot calls: how many ran, their cumulative wall
	// time, and the size of the most recent checkpoint. Process-local —
	// a restored detector starts them at zero.
	Checkpoints     uint64
	CheckpointNanos uint64
	CheckpointBytes uint64
	// Examples is the number of labeled outlier examples currently
	// retained for supervised evolution.
	Examples int
	// CoalescedPoints, CoalescedDistinct and CoalesceGroupings describe
	// the batch-coalescing path's duplication: across every grouping
	// pass (one per subspace per sub-batch, when the coalesced path
	// ran), how many point touches were folded, how many distinct cells
	// they collapsed into, and how many passes there were.
	// CoalescedDistinct/CoalesceGroupings is the average distinct-cell
	// count per (subspace, batch) and CoalescedPoints/CoalescedDistinct
	// the duplication ratio — the factor by which coalescing cuts index
	// probes on this workload. All zero in pointwise mode, with
	// Config.NoCoalesce set, or when the adaptive gate routed every
	// subspace to the fused path.
	CoalescedPoints   uint64
	CoalescedDistinct uint64
	CoalesceGroupings uint64
	// Auto-thresholding observability (zero unless
	// Config.AutoThreshold is enabled): Calibrations counts
	// successful per-(measure, arity) calibrator refits across all
	// sweeps, CalibrationSamples the census samples they consumed,
	// CalibratedThresholds how many of the calibrators currently hold
	// a fitted threshold, and AutoEffTrials the controller's current
	// effective-trials divisor (per-calibrator risk =
	// AutoThreshold.Risk / AutoEffTrials).
	Calibrations         uint64
	CalibrationSamples   uint64
	CalibratedThresholds int
	AutoEffTrials        float64
}

// Stats returns the current snapshot. Safe to call between
// Process/ProcessBatch calls only.
func (d *Detector) Stats() Stats {
	var coalPoints, coalDistinct, coalGroupings uint64
	for _, sh := range d.shards {
		coalPoints += sh.coalPoints
		coalDistinct += sh.coalDistinct
		coalGroupings += sh.coalGroupings
	}
	var calibrations, calSamples uint64
	var calibrated int
	var effTrials float64
	if a := d.auto; a != nil {
		calibrations = a.calibrations
		calSamples = a.samples
		effTrials = a.effTrials
		for m := 0; m < autoMeasures; m++ {
			for ar := 1; ar <= core.MaxSubspaceDims; ar++ {
				if a.cals[m][ar].Calibrated() {
					calibrated++
				}
			}
		}
	}
	return Stats{
		Tick:                 d.tick,
		BaseCells:            d.BaseCells(),
		ProjectedCells:       d.ProjectedCells(),
		SummaryEntries:       d.BaseCells() + d.ProjectedCells(),
		Sweeps:               d.counters.sweeps,
		SweepNanos:           d.counters.sweepNanos,
		EvictedProjected:     d.counters.evictedProjected,
		EvictedBase:          d.counters.evictedBase,
		EvolvedActive:        d.tmpl.EvolvedCount(),
		Promoted:             d.counters.promoted,
		Demoted:              d.counters.demoted,
		EvolverPanics:        d.counters.evolverPanics,
		Checkpoints:          d.counters.checkpoints,
		CheckpointNanos:      d.counters.checkpointNanos,
		CheckpointBytes:      d.counters.checkpointBytes,
		Examples:             len(d.examples),
		CoalescedPoints:      coalPoints,
		CoalescedDistinct:    coalDistinct,
		CoalesceGroupings:    coalGroupings,
		Calibrations:         calibrations,
		CalibrationSamples:   calSamples,
		CalibratedThresholds: calibrated,
		AutoEffTrials:        effTrials,
	}
}
