package stream

import (
	"fmt"
	"math/rand"
	"testing"

	"spot/internal/bench"
	"spot/internal/sst"
)

// TestShardInvarianceProperty generalizes the fixed-case
// TestShardInvariance into a randomized property: across trials with
// random dimensionality, outlier mode (displaced, correlated mix, jump
// drift), epoch lengths chosen so sweep ticks land mid-batch, random
// batch splits, and the supervised MOGA group active with examples
// marked between batches, detectors at 1, 4 and 8 shards must produce
// byte-identical verdict sequences and identical evolution histories.
// Any divergence prints the trial's scenario so it can be replayed.
func TestShardInvarianceProperty(t *testing.T) {
	meta := rand.New(rand.NewSource(42))
	const trials = 6
	for trial := 0; trial < trials; trial++ {
		d := 5 + meta.Intn(5)                 // 5..9 dimensions
		epoch := uint64(64 + meta.Intn(400))  // never aligned with batch splits
		n := 1200 + meta.Intn(800)            // points per trial
		supervised := trial%2 == 0            // MOGA active on half the trials
		mode := trial % 3                     // rotate outlier scenarios
		genSeed := meta.Int63()
		evSeed := meta.Int63()
		maxDim := 1 + meta.Intn(2)
		lambda := []float64{0.005, 0.01, 0.02}[meta.Intn(3)]

		gcfg := bench.DefaultGenConfig(d)
		gcfg.Seed = genSeed
		switch mode {
		case 1: // correlated mix outliers: invisible until evolution
			centerA := make([]float64, d)
			centerB := make([]float64, d)
			for i := range centerA {
				centerA[i] = 0.19
				centerB[i] = 0.81
			}
			gcfg.Centers = [][]float64{centerA, centerB}
			gcfg.Sigma = 0.005
			gcfg.OutlierRate = 0.03
			gcfg.Mode = bench.OutlierMix
			gcfg.MixDim = meta.Intn(d)
		case 2: // jump drift: epoch eviction under churn
			gcfg.DriftPeriod = 300 + meta.Intn(300)
		}
		scenario := fmt.Sprintf("trial=%d d=%d epoch=%d n=%d mode=%d supervised=%v maxDim=%d lambda=%g genSeed=%d evSeed=%d",
			trial, d, epoch, n, mode, supervised, maxDim, lambda, genSeed, evSeed)

		// One shared stream + batch plan + example-marking plan so every
		// shard count sees the identical input and feedback sequence.
		flat := make([]float64, n*d)
		labels := make([]bool, n)
		bench.NewGenerator(gcfg).Fill(flat, labels, n)
		var batches []int
		for rem := n; rem > 0; {
			b := 1 + meta.Intn(300)
			if b > rem {
				b = rem
			}
			batches = append(batches, b)
			rem -= b
		}

		mkEvolver := func() sst.Evolver {
			ts, err := sst.NewTopSparse(sst.TopSparseConfig{
				Arity: 2, TopS: 2, Explore: 32, SparseRatio: 0.1, MinScore: 0.05, Seed: evSeed,
			})
			if err != nil {
				t.Fatalf("%s: %v", scenario, err)
			}
			if !supervised {
				return ts
			}
			mg, err := sst.NewMOGA(sst.MOGAConfig{
				MinArity: 2, MaxArity: 2, PopSize: 8, Generations: 2, TopS: 2,
				SparseRatio: 0.1, MinCoverage: 0.6, MinSparsity: 0.4, Seed: evSeed,
			})
			if err != nil {
				t.Fatalf("%s: %v", scenario, err)
			}
			return sst.Multi{ts, mg}
		}

		runShards := func(shards int, noCoalesce, scoring bool) ([]bool, []float64, Stats, []uint16) {
			cfg := DefaultConfig(d)
			cfg.MaxSubspaceDim = maxDim
			cfg.Shards = shards
			cfg.Lambda = lambda
			cfg.Warmup = 30
			cfg.EpochTicks = epoch
			cfg.EvictEpsilon = 1e-4
			cfg.RDPopulatedThreshold = 0.2
			cfg.NoCoalesce = noCoalesce
			cfg.Scoring = scoring
			if scoring {
				cfg.TopK = 8
			}
			cfg.Evolver = mkEvolver()
			det, err := New(cfg)
			if err != nil {
				t.Fatalf("%s: %v", scenario, err)
			}
			defer det.Close()
			verdicts := make([]bool, n)
			var scores []float64
			if scoring {
				scores = make([]float64, n)
			}
			off := 0
			for _, b := range batches {
				if scoring {
					det.ProcessBatchScored(flat[off*d:(off+b)*d], verdicts[off:off+b], scores[off:off+b])
				} else {
					det.ProcessBatch(flat[off*d:(off+b)*d], verdicts[off:off+b])
				}
				if supervised {
					// The analyst confirms every planted outlier of the
					// batch — identical feedback at every shard count.
					for i := off; i < off+b; i++ {
						if labels[i] {
							det.MarkExample(flat[i*d : (i+1)*d])
						}
					}
				}
				off += b
			}
			var evolved []uint16
			for _, id := range det.Template().EvolvedIDs(nil) {
				evolved = append(evolved, det.Template().Dims(int(id))...)
			}
			return verdicts, scores, det.Stats(), evolved
		}

		baseV, _, baseS, baseE := runShards(1, false, false)
		// Shard counts with coalescing on, plus the NoCoalesce escape
		// hatch at two shard counts: the coalesced run-fold and the
		// fused per-point path must agree bit for bit, as must every
		// shard partitioning of either.
		for _, v := range []struct {
			shards     int
			noCoalesce bool
		}{{4, false}, {8, false}, {1, true}, {4, true}} {
			variant := fmt.Sprintf("%d shards (NoCoalesce=%v)", v.shards, v.noCoalesce)
			vv, _, s, e := runShards(v.shards, v.noCoalesce, false)
			for i := range baseV {
				if vv[i] != baseV[i] {
					t.Fatalf("%s: verdict for point %d differs at %s", scenario, i, variant)
				}
			}
			if s.Sweeps != baseS.Sweeps || s.Promoted != baseS.Promoted || s.Demoted != baseS.Demoted {
				t.Fatalf("%s: epoch engine diverged at %s: %+v vs %+v", scenario, variant, s, baseS)
			}
			if len(e) != len(baseE) {
				t.Fatalf("%s: evolved groups differ at %s: %v vs %v", scenario, variant, e, baseE)
			}
			for i := range e {
				if e[i] != baseE[i] {
					t.Fatalf("%s: evolved groups differ at %s: %v vs %v", scenario, variant, e, baseE)
				}
			}
		}

		// Scoring legs. Enabling scoring must not move a single verdict
		// bit, scores must be bit-identical across coalesce modes at a
		// fixed shard count, and across shard counts they may differ
		// only by the documented popFloor summation-order ULPs — bounded
		// here at 1e-9.
		scoredV, scoredScores, _, _ := runShards(1, false, true)
		for i := range baseV {
			if scoredV[i] != baseV[i] {
				t.Fatalf("%s: scoring changed the verdict for point %d", scenario, i)
			}
			if (scoredScores[i] > 0) != baseV[i] {
				t.Fatalf("%s: point %d verdict=%v but score=%g", scenario, i, baseV[i], scoredScores[i])
			}
		}
		_, ncScores, _, _ := runShards(1, true, true)
		for i := range scoredScores {
			if ncScores[i] != scoredScores[i] {
				t.Fatalf("%s: score for point %d differs between coalesce modes: %g vs %g",
					scenario, i, ncScores[i], scoredScores[i])
			}
		}
		for _, shards := range []int{4, 8} {
			shV, shScores, _, _ := runShards(shards, false, true)
			for i := range scoredScores {
				if shV[i] != baseV[i] {
					t.Fatalf("%s: scored verdict for point %d differs at %d shards", scenario, i, shards)
				}
				if diff := shScores[i] - scoredScores[i]; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("%s: score for point %d differs at %d shards: %g vs %g",
						scenario, i, shards, shScores[i], scoredScores[i])
				}
			}
		}
	}
}
