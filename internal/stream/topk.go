package stream

import (
	"math"

	"spot/internal/core"
)

// Streaming top-K over ensemble scores: a bounded min-heap that
// answers "which K points looked worst this window" without retaining
// the stream. Scores fade with the same exponential decay the
// summaries use, so an old offender is eventually displaced by fresher
// ones even if nothing outranks its original score.
//
// The heap never compares decayed scores directly — at tick t an entry
// inserted at tick t0 with raw score s is worth s·2^(-λ(t-t0)), and
// materializing that would cost a decay lookup per compare and
// overflow 2^(λ·t) on long streams. Instead each entry carries the
// time-invariant ranking key log2(s) + λ·(t0−base): for any two
// entries the order of their keys equals the order of their decayed
// scores at every future tick (both sides fade by the same factor),
// so one key computed at insert time is exact forever — in exact
// arithmetic. In floats the λ·t0 term grows without bound on long
// streams while log2(s) stays in a few units, so an unanchored key
// loses score resolution to the tick term's magnitude (at λ·t0 ≈
// 2^31 a double's ulp is ~5e-7 — coarser than many score gaps). The
// base anchor fixes that: every epoch sweep rebases to the current
// tick and recomputes the keys, keeping the tick term's magnitude
// bounded by λ·EpochTicks plus the entries' age spread. Ties (equal
// keys) rank the earlier tick higher, making the heap's content
// deterministic.
//
// Maintenance is allocation-free after the first growth to K entries;
// insertion is O(log K) and rejected non-improving inserts are O(1).
type topK struct {
	k      int
	lambda float64
	base   uint64 // key anchor tick, advanced at every epoch sweep
	// Parallel heap arrays, min-heap by (key, -tick): the root is the
	// lowest-ranked entry, the one a better insert displaces.
	ticks  []uint64
	scores []float64 // raw score at insert tick
	keys   []float64 // log2(score) + lambda*(tick-base), fixed at insert
}

// newTopK builds an empty heap of capacity k (k ≥ 1).
func newTopK(k int, lambda float64) *topK {
	return &topK{
		k:      k,
		lambda: lambda,
		ticks:  make([]uint64, 0, k),
		scores: make([]float64, 0, k),
		keys:   make([]float64, 0, k),
	}
}

// rankKey is the time-invariant ordering key of an entry, anchored at
// the current base. The tick offset is computed in float64 (exact for
// ticks below 2^53) because ticks before the base — entries inserted
// before the last rebase — need a negative offset.
func (h *topK) rankKey(tick uint64, score float64) float64 {
	return math.Log2(score) + h.lambda*(float64(tick)-float64(h.base))
}

// below reports whether entry i ranks below entry j (i is worse):
// smaller key, or equal key with a later tick.
func (h *topK) below(i, j int) bool {
	if h.keys[i] != h.keys[j] {
		return h.keys[i] < h.keys[j]
	}
	return h.ticks[i] > h.ticks[j]
}

// add offers one scored point to the heap. Non-positive scores are
// ignored (a zero score carries no evidence and log2 would produce
// -Inf ties); when the heap is full the entry must outrank the current
// minimum to enter.
func (h *topK) add(tick uint64, score float64) {
	if h.k == 0 || score <= 0 {
		return
	}
	key := h.rankKey(tick, score)
	if len(h.ticks) < h.k {
		h.ticks = append(h.ticks, tick)
		h.scores = append(h.scores, score)
		h.keys = append(h.keys, key)
		h.siftUp(len(h.ticks) - 1)
		return
	}
	// Full: the candidate must outrank the root (the minimum).
	if key < h.keys[0] || (key == h.keys[0] && tick > h.ticks[0]) {
		return
	}
	h.ticks[0], h.scores[0], h.keys[0] = tick, score, key
	h.siftDown(0)
}

func (h *topK) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.below(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *topK) siftDown(i int) {
	n := len(h.ticks)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.below(l, m) {
			m = l
		}
		if r < n && h.below(r, m) {
			m = r
		}
		if m == i {
			return
		}
		h.swap(i, m)
		i = m
	}
}

func (h *topK) swap(i, j int) {
	h.ticks[i], h.ticks[j] = h.ticks[j], h.ticks[i]
	h.scores[i], h.scores[j] = h.scores[j], h.scores[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
}

// scoreAt returns entry i's score decayed to the given tick.
func (h *topK) scoreAt(decay *core.DecayTable, tick uint64, i int) float64 {
	return h.scores[i] * decay.At(tick-h.ticks[i])
}

// decayEvict drops every entry whose decayed score at tick fell below
// eps — the top-K analogue of the summary tables' epoch eviction, run
// at the same sweeps — then rebases the ranking keys to the sweep
// tick and restores the heap property over the survivors. The rebase
// runs even with eps ≤ 0 (which evicts nothing): it is what keeps the
// keys' tick term from outgrowing float64 score resolution on long
// streams. Allocation-free; depends only on (tick, eps), so batch and
// pointwise heaps stay identical.
func (h *topK) decayEvict(decay *core.DecayTable, tick uint64, eps float64) {
	w := 0
	for i := range h.ticks {
		if eps <= 0 || h.scoreAt(decay, tick, i) >= eps {
			h.ticks[w], h.scores[w] = h.ticks[i], h.scores[i]
			w++
		}
	}
	h.ticks, h.scores, h.keys = h.ticks[:w], h.scores[:w], h.keys[:w]
	h.base = tick
	for i := range h.ticks {
		h.keys[i] = h.rankKey(h.ticks[i], h.scores[i])
	}
	for i := w/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// appendTo appends the heap's entries to buf — scores decayed to the
// given tick, best first — and returns the extended slice. At a fixed
// query tick, decayed scores order identically to the ranking keys
// (both sides of any pair fade by the same factor), so sorting the
// output by (decayed score desc, tick asc) needs no key bookkeeping in
// the output type. Selection sort over ≤ K entries keeps the query
// allocation-free when cap(buf) suffices.
func (h *topK) appendTo(decay *core.DecayTable, tick uint64, buf []Offender) []Offender {
	base := len(buf)
	for i := range h.ticks {
		buf = append(buf, Offender{Tick: h.ticks[i], Score: h.scoreAt(decay, tick, i)})
	}
	win := buf[base:]
	for i := 0; i < len(win); i++ {
		best := i
		for j := i + 1; j < len(win); j++ {
			if win[j].Score > win[best].Score ||
				(win[j].Score == win[best].Score && win[j].Tick < win[best].Tick) {
				best = j
			}
		}
		win[i], win[best] = win[best], win[i]
	}
	return buf
}

// Offender is one streaming top-K entry: a flagged point identified by
// its stream tick (Detector.Tick at the time it was ingested, 1-based)
// and its ensemble score decayed to the tick of the TopK call.
type Offender struct {
	// Tick identifies the point: the value Detector.Tick() had right
	// after the point was ingested.
	Tick uint64
	// Score is the point's ensemble outlier score, faded by
	// 2^(-λ·Δt) for the Δt ticks elapsed since ingestion.
	Score float64
}
