// Package bench provides the synthetic high-dimensional stream
// generator used by the detector tests and the throughput benchmark
// harness: Gaussian clusters over the unit box with planted projected
// outliers — points that look perfectly normal in most dimensions and
// deviate only in a small random subset, the workload SPOT exists to
// catch.
package bench

import "math/rand"

// MaxDimFor is the benchmark policy for SST arity by dimensionality:
// the full 3-D template at d ≤ 20, 2-D above (3-D enumeration at d=100
// is 160k+ subspaces — a different experiment). Shared by the go-test
// benchmarks and cmd/spotbench so BENCH_core.json stays comparable
// with `go test -bench` output.
func MaxDimFor(d int) int {
	if d <= 20 {
		return 3
	}
	return 2
}

// GenConfig parameterizes a synthetic stream.
type GenConfig struct {
	// Dims is the dimensionality of generated points.
	Dims int
	// Clusters is the number of Gaussian clusters.
	Clusters int
	// Sigma is the per-dimension standard deviation of each cluster.
	Sigma float64
	// OutlierRate is the fraction of generated points that are
	// planted projected outliers.
	OutlierRate float64
	// OutlierDims is how many dimensions of an outlier are displaced
	// away from every cluster (its "outlying subspace" arity).
	OutlierDims int
	// Seed makes the stream reproducible.
	Seed int64
}

// DefaultGenConfig returns a reasonable stream for a d-dimensional
// space: a handful of tight clusters and 1% planted projected outliers
// displaced in up to 2 dimensions.
func DefaultGenConfig(d int) GenConfig {
	return GenConfig{
		Dims:        d,
		Clusters:    3,
		Sigma:       0.02,
		OutlierRate: 0.01,
		OutlierDims: 2,
		Seed:        1,
	}
}

// Generator produces a reproducible synthetic stream. Points live in
// the unit box [0,1)^d. Not safe for concurrent use.
type Generator struct {
	cfg     GenConfig
	rng     *rand.Rand
	centers [][]float64
}

// NewGenerator builds a generator, placing cluster centers uniformly in
// the interior of the unit box so cluster mass stays inside it.
func NewGenerator(cfg GenConfig) *Generator {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Generator{cfg: cfg, rng: rng}
	for c := 0; c < cfg.Clusters; c++ {
		center := make([]float64, cfg.Dims)
		for i := range center {
			center[i] = 0.2 + 0.6*rng.Float64()
		}
		g.centers = append(g.centers, center)
	}
	return g
}

// Next fills buf (length ≥ Dims) with the next point and reports
// whether it is a planted projected outlier. It does not allocate.
func (g *Generator) Next(buf []float64) bool {
	cfg := &g.cfg
	center := g.centers[g.rng.Intn(len(g.centers))]
	for i := 0; i < cfg.Dims; i++ {
		buf[i] = clamp01(center[i] + cfg.Sigma*g.rng.NormFloat64())
	}
	if g.rng.Float64() >= cfg.OutlierRate {
		return false
	}
	// Displace a few dimensions to coordinates far from every cluster
	// center: anomalous only when those dimensions are examined
	// together with nothing to hide behind — a projected outlier.
	for k := 0; k < cfg.OutlierDims; k++ {
		dim := g.rng.Intn(cfg.Dims)
		buf[dim] = g.farCoordinate(dim)
	}
	return true
}

// farCoordinate draws a coordinate in [0,1) at distance ≥ 0.12 from
// every cluster center in the given dimension.
func (g *Generator) farCoordinate(dim int) float64 {
	for {
		x := g.rng.Float64()
		ok := true
		for _, c := range g.centers {
			d := x - c[dim]
			if d < 0 {
				d = -d
			}
			if d < 0.12 {
				ok = false
				break
			}
		}
		if ok {
			return x
		}
	}
}

// Fill generates n points into the flat row-major buffer (length ≥
// n*Dims) and marks planted outliers in labels (length ≥ n), returning
// the number of planted outliers.
func (g *Generator) Fill(flat []float64, labels []bool, n int) int {
	planted := 0
	for i := 0; i < n; i++ {
		labels[i] = g.Next(flat[i*g.cfg.Dims : (i+1)*g.cfg.Dims])
		if labels[i] {
			planted++
		}
	}
	return planted
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x >= 1 {
		return math1ulpBelow
	}
	return x
}

// math1ulpBelow is the largest float64 strictly below 1, keeping
// clamped values inside the half-open unit box.
const math1ulpBelow = 1 - 1.0/(1<<53)
