// Package bench provides the synthetic high-dimensional stream
// generator used by the detector tests and the throughput benchmark
// harness: Gaussian clusters over the unit box with planted projected
// outliers — points that look normal in the full space but are
// abnormally sparse in some low-dimensional projection, the workload
// SPOT exists to catch. Beyond the stationary default, the generator
// supports two stress modes for the epoch engine: jump drift (cluster
// centers relocate periodically, so summaries of abandoned regions must
// be evicted for memory to stay bounded) and correlated "mix" outliers
// (each per-dimension coordinate is individually dense, only a specific
// multi-dimensional combination is anomalous — invisible to the fixed
// SST group until evolution promotes the right subspace).
package bench

import "math/rand"

// MaxDimFor is the benchmark policy for SST arity by dimensionality:
// the full 3-D template at d ≤ 20, 2-D above (3-D enumeration at d=100
// is 160k+ subspaces — a different experiment). Shared by the go-test
// benchmarks and cmd/spotbench so BENCH_core.json stays comparable
// with `go test -bench` output.
func MaxDimFor(d int) int {
	if d <= 20 {
		return 3
	}
	return 2
}

// OutlierMode selects how planted outliers deviate from the clusters.
type OutlierMode int

const (
	// OutlierDisplace (the default) moves OutlierDims randomly chosen
	// dimensions to coordinates far from every cluster center: the
	// outlier is sparse even in the 1-D projections of those
	// dimensions.
	OutlierDisplace OutlierMode = iota
	// OutlierMix borrows dimension MixDim from a different cluster
	// than the rest of the point: every single coordinate lands in a
	// dense interval of its own dimension, but any subspace combining
	// MixDim with another dimension projects the point into an empty
	// cell. Such outliers are invisible to 1-D subspaces and exist to
	// exercise SST evolution. Requires at least two clusters.
	OutlierMix
)

// GenConfig parameterizes a synthetic stream.
type GenConfig struct {
	// Dims is the dimensionality of generated points.
	Dims int
	// Clusters is the number of Gaussian clusters. Ignored when
	// Centers is set.
	Clusters int
	// Centers optionally pins the cluster centers instead of placing
	// them randomly; each must have length Dims. Tests use it to align
	// clusters with grid cells for deterministic assertions.
	Centers [][]float64
	// Sigma is the per-dimension standard deviation of each cluster.
	Sigma float64
	// OutlierRate is the fraction of generated points that are
	// planted projected outliers.
	OutlierRate float64
	// Mode selects the outlier construction; see OutlierMode.
	Mode OutlierMode
	// OutlierDims is how many dimensions of an OutlierDisplace outlier
	// are displaced away from every cluster (its "outlying subspace"
	// arity).
	OutlierDims int
	// MixDim is the dimension an OutlierMix outlier borrows from a
	// second cluster. Ignored when MixDims is set.
	MixDim int
	// MixDims optionally borrows several dimensions at once: every
	// listed dimension of a mix outlier comes from the second cluster,
	// so the anomaly only shows in subspaces combining a borrowed with
	// a home dimension. Supersedes MixDim when non-empty.
	MixDims []int
	// DriftPeriod, when positive, relocates every cluster center to a
	// fresh random position after each DriftPeriod generated points —
	// jump drift. The summaries of abandoned regions are never touched
	// again, which is exactly the workload that needs epoch eviction.
	// Explicit Centers are also re-randomized on drift.
	DriftPeriod int
	// Uniform replaces the clustered point body with draws uniform over
	// the unit box — the adversarial no-structure workload where
	// consecutive points share almost no projected cells, used to bound
	// the overhead of optimizations (batch cell coalescing) that bank on
	// duplication. Outlier planting and drift are disabled: nothing is
	// sparse relative to uniform noise.
	Uniform bool
	// Seed makes the stream reproducible.
	Seed int64
}

// DefaultGenConfig returns a reasonable stream for a d-dimensional
// space: a handful of tight clusters and 1% planted projected outliers
// displaced in up to 2 dimensions.
func DefaultGenConfig(d int) GenConfig {
	return GenConfig{
		Dims:        d,
		Clusters:    3,
		Sigma:       0.02,
		OutlierRate: 0.01,
		OutlierDims: 2,
		Seed:        1,
	}
}

// Generator produces a reproducible synthetic stream. Points live in
// the unit box [0,1)^d. Not safe for concurrent use.
type Generator struct {
	cfg      GenConfig
	rng      *rand.Rand
	centers  [][]float64
	count    int
	mixDims  []int
	lastDims []int
}

// NewGenerator builds a generator, placing cluster centers uniformly in
// the interior of the unit box (so cluster mass stays inside it) unless
// cfg.Centers pins them explicitly.
func NewGenerator(cfg GenConfig) *Generator {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Generator{cfg: cfg, rng: rng}
	g.mixDims = cfg.MixDims
	if len(g.mixDims) == 0 {
		g.mixDims = []int{cfg.MixDim}
	}
	if len(cfg.Centers) > 0 {
		for _, c := range cfg.Centers {
			center := make([]float64, cfg.Dims)
			copy(center, c)
			g.centers = append(g.centers, center)
		}
		return g
	}
	g.centers = make([][]float64, cfg.Clusters)
	for c := range g.centers {
		g.centers[c] = make([]float64, cfg.Dims)
	}
	g.placeCenters()
	return g
}

// placeCenters re-randomizes every cluster center.
func (g *Generator) placeCenters() {
	for _, center := range g.centers {
		for i := range center {
			center[i] = 0.2 + 0.6*g.rng.Float64()
		}
	}
}

// Next fills buf (length ≥ Dims) with the next point and reports
// whether it is a planted projected outlier. It does not allocate
// beyond the first planted outlier's ground-truth record (see
// LastOutlierDims).
func (g *Generator) Next(buf []float64) bool {
	cfg := &g.cfg
	if cfg.Uniform {
		g.count++
		for i := 0; i < cfg.Dims; i++ {
			buf[i] = g.rng.Float64()
		}
		return false
	}
	if cfg.DriftPeriod > 0 && g.count > 0 && g.count%cfg.DriftPeriod == 0 {
		g.placeCenters()
	}
	g.count++
	ci := g.rng.Intn(len(g.centers))
	center := g.centers[ci]
	for i := 0; i < cfg.Dims; i++ {
		buf[i] = clamp01(center[i] + cfg.Sigma*g.rng.NormFloat64())
	}
	if g.rng.Float64() >= cfg.OutlierRate {
		return false
	}
	g.lastDims = g.lastDims[:0]
	if cfg.Mode == OutlierMix {
		if len(g.centers) < 2 {
			return false // mix outliers need a second cluster to borrow from
		}
		// Borrow the mix dimensions from another cluster: each borrowed
		// coordinate lands in that cluster's dense interval, so no 1-D
		// projection is suspicious — only the joint cells pairing a
		// borrowed with a home dimension are empty.
		bi := g.rng.Intn(len(g.centers) - 1)
		if bi >= ci {
			bi++
		}
		for _, dim := range g.mixDims {
			buf[dim] = clamp01(g.centers[bi][dim] + cfg.Sigma*g.rng.NormFloat64())
			g.lastDims = append(g.lastDims, dim)
		}
		return true
	}
	// Displace a few dimensions to coordinates far from every cluster
	// center: anomalous only when those dimensions are examined
	// together with nothing to hide behind — a projected outlier.
	for k := 0; k < cfg.OutlierDims; k++ {
		dim := g.rng.Intn(cfg.Dims)
		buf[dim] = g.farCoordinate(dim)
		g.lastDims = append(g.lastDims, dim)
	}
	return true
}

// LastOutlierDims returns the ground-truth outlying dimensions of the
// most recent planted outlier — the dimensions Next displaced (in
// OutlierDisplace mode, possibly with repeats) or borrowed from the
// second cluster (mix modes). The slice is reused by the next planted
// outlier; callers that retain it must copy. It lets supervised
// benchmarks and tests check promoted subspaces against the planted
// truth, the "labeled exemplar" half of the generator's output.
func (g *Generator) LastOutlierDims() []int { return g.lastDims }

// farCoordinate draws a coordinate in [0,1) at distance ≥ 0.12 from
// every cluster center in the given dimension.
func (g *Generator) farCoordinate(dim int) float64 {
	for {
		x := g.rng.Float64()
		ok := true
		for _, c := range g.centers {
			d := x - c[dim]
			if d < 0 {
				d = -d
			}
			if d < 0.12 {
				ok = false
				break
			}
		}
		if ok {
			return x
		}
	}
}

// Fill generates n points into the flat row-major buffer (length ≥
// n*Dims) and marks planted outliers in labels (length ≥ n), returning
// the number of planted outliers.
func (g *Generator) Fill(flat []float64, labels []bool, n int) int {
	planted := 0
	for i := 0; i < n; i++ {
		labels[i] = g.Next(flat[i*g.cfg.Dims : (i+1)*g.cfg.Dims])
		if labels[i] {
			planted++
		}
	}
	return planted
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x >= 1 {
		return math1ulpBelow
	}
	return x
}

// math1ulpBelow is the largest float64 strictly below 1, keeping
// clamped values inside the half-open unit box.
const math1ulpBelow = 1 - 1.0/(1<<53)
