package bench

import (
	"math"
	"testing"
)

func TestGeneratorReproducible(t *testing.T) {
	cfg := DefaultGenConfig(8)
	g1, g2 := NewGenerator(cfg), NewGenerator(cfg)
	b1, b2 := make([]float64, 8), make([]float64, 8)
	for i := 0; i < 500; i++ {
		o1, o2 := g1.Next(b1), g2.Next(b2)
		if o1 != o2 {
			t.Fatalf("point %d: label diverged", i)
		}
		for j := range b1 {
			if b1[j] != b2[j] {
				t.Fatalf("point %d dim %d: %v vs %v", i, j, b1[j], b2[j])
			}
		}
	}
}

func TestGeneratorPointsInUnitBox(t *testing.T) {
	g := NewGenerator(DefaultGenConfig(12))
	buf := make([]float64, 12)
	for i := 0; i < 2000; i++ {
		g.Next(buf)
		for j, x := range buf {
			if x < 0 || x >= 1 || math.IsNaN(x) {
				t.Fatalf("point %d dim %d out of [0,1): %v", i, j, x)
			}
		}
	}
}

func TestGeneratorOutlierRateAndDisplacement(t *testing.T) {
	cfg := DefaultGenConfig(10)
	cfg.OutlierRate = 0.05
	g := NewGenerator(cfg)
	buf := make([]float64, 10)
	n, outliers := 5000, 0
	for i := 0; i < n; i++ {
		if g.Next(buf) {
			outliers++
			// Every planted outlier must have at least one coordinate
			// far from all cluster centers in that dimension.
			far := false
			for dim, x := range buf {
				minDist := math.Inf(1)
				for _, c := range g.centers {
					if d := math.Abs(x - c[dim]); d < minDist {
						minDist = d
					}
				}
				if minDist >= 0.12 {
					far = true
				}
			}
			if !far {
				t.Fatal("planted outlier has no displaced dimension")
			}
		}
	}
	rate := float64(outliers) / float64(n)
	if rate < 0.03 || rate > 0.07 {
		t.Errorf("outlier rate = %.3f, want ≈ 0.05", rate)
	}
}

// TestGeneratorMixOutliers: in OutlierMix mode every coordinate of a
// planted outlier is near SOME cluster center in its own dimension
// (dense 1-D marginals), while the MixDim coordinate is far from the
// home cluster — the anomaly only exists jointly.
func TestGeneratorMixOutliers(t *testing.T) {
	cfg := GenConfig{
		Dims:        6,
		Centers:     [][]float64{{0.2, 0.2, 0.2, 0.2, 0.2, 0.2}, {0.8, 0.8, 0.8, 0.8, 0.8, 0.8}},
		Sigma:       0.01,
		OutlierRate: 0.1,
		Mode:        OutlierMix,
		MixDim:      3,
		Seed:        7,
	}
	g := NewGenerator(cfg)
	buf := make([]float64, 6)
	outliers := 0
	for i := 0; i < 3000; i++ {
		if !g.Next(buf) {
			continue
		}
		outliers++
		for dim, x := range buf {
			near := math.Min(math.Abs(x-0.2), math.Abs(x-0.8))
			if near > 0.1 {
				t.Fatalf("mix outlier dim %d = %v, not near any center: 1-D marginal is suspicious", dim, x)
			}
		}
		// The MixDim coordinate must come from the other cluster: far
		// from whichever cluster generated the rest of the point.
		home := 0.2
		if math.Abs(buf[0]-0.8) < math.Abs(buf[0]-0.2) {
			home = 0.8
		}
		if math.Abs(buf[cfg.MixDim]-home) < 0.3 {
			t.Fatalf("mix outlier MixDim = %v matches its home cluster %v — not an outlier", buf[cfg.MixDim], home)
		}
	}
	if outliers < 100 {
		t.Fatalf("only %d mix outliers planted in 3000 points", outliers)
	}
}

// TestGeneratorDriftMovesClusters: with DriftPeriod set, the cluster
// centers relocate, so points from different drift generations occupy
// different regions.
func TestGeneratorDriftMovesClusters(t *testing.T) {
	cfg := DefaultGenConfig(4)
	cfg.Clusters = 1
	cfg.OutlierRate = 0
	cfg.DriftPeriod = 100
	g := NewGenerator(cfg)
	buf := make([]float64, 4)
	var first [4]float64
	g.Next(buf)
	copy(first[:], buf)
	moved := false
	for i := 1; i < 1000; i++ {
		g.Next(buf)
		dist := 0.0
		for j := range buf {
			dist += math.Abs(buf[j] - first[j])
		}
		if dist > 0.5 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("cluster never moved across 10 drift periods")
	}
}

// TestGeneratorExplicitCenters pins centers and checks inliers stay
// near them.
func TestGeneratorExplicitCenters(t *testing.T) {
	cfg := GenConfig{
		Dims:    3,
		Centers: [][]float64{{0.25, 0.5, 0.75}},
		Sigma:   0.01,
		Seed:    3,
	}
	g := NewGenerator(cfg)
	buf := make([]float64, 3)
	for i := 0; i < 200; i++ {
		g.Next(buf)
		for j, want := range cfg.Centers[0] {
			if math.Abs(buf[j]-want) > 0.1 {
				t.Fatalf("point %d dim %d = %v, want near %v", i, j, buf[j], want)
			}
		}
	}
}

func TestFillCountsPlanted(t *testing.T) {
	cfg := DefaultGenConfig(6)
	cfg.OutlierRate = 0.1
	g := NewGenerator(cfg)
	const n = 1000
	flat := make([]float64, n*6)
	labels := make([]bool, n)
	planted := g.Fill(flat, labels, n)
	count := 0
	for _, l := range labels {
		if l {
			count++
		}
	}
	if planted != count {
		t.Errorf("Fill returned %d, labels say %d", planted, count)
	}
	if planted == 0 {
		t.Error("no outliers planted at rate 0.1")
	}
}

// TestGeneratorMixDimsGroundTruth: with MixDims set, every borrowed
// dimension comes from the other cluster and LastOutlierDims reports
// exactly the planted ground truth.
func TestGeneratorMixDimsGroundTruth(t *testing.T) {
	cfg := GenConfig{
		Dims:        8,
		Centers:     [][]float64{{0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2}, {0.8, 0.8, 0.8, 0.8, 0.8, 0.8, 0.8, 0.8}},
		Sigma:       0.01,
		OutlierRate: 0.1,
		Mode:        OutlierMix,
		MixDims:     []int{2, 5},
		Seed:        9,
	}
	g := NewGenerator(cfg)
	buf := make([]float64, 8)
	outliers := 0
	for i := 0; i < 2000; i++ {
		if !g.Next(buf) {
			continue
		}
		outliers++
		dims := g.LastOutlierDims()
		if len(dims) != 2 || dims[0] != 2 || dims[1] != 5 {
			t.Fatalf("LastOutlierDims = %v, want [2 5]", dims)
		}
		home := 0.2
		if math.Abs(buf[0]-0.8) < math.Abs(buf[0]-0.2) {
			home = 0.8
		}
		for _, dim := range dims {
			if math.Abs(buf[dim]-home) < 0.3 {
				t.Fatalf("mix dim %d = %v matches home cluster %v — not borrowed", dim, buf[dim], home)
			}
		}
	}
	if outliers < 100 {
		t.Fatalf("only %d mix outliers planted in 2000 points", outliers)
	}
}

// TestGeneratorDisplaceGroundTruth: in OutlierDisplace mode the
// reported ground-truth dimensions are exactly the displaced ones.
func TestGeneratorDisplaceGroundTruth(t *testing.T) {
	cfg := DefaultGenConfig(10)
	cfg.OutlierRate = 0.1
	g := NewGenerator(cfg)
	buf := make([]float64, 10)
	checked := 0
	for i := 0; i < 2000; i++ {
		if !g.Next(buf) {
			continue
		}
		dims := g.LastOutlierDims()
		if len(dims) == 0 || len(dims) > cfg.OutlierDims {
			t.Fatalf("LastOutlierDims = %v, want 1..%d displaced dims", dims, cfg.OutlierDims)
		}
		for _, dim := range dims {
			minDist := math.Inf(1)
			for _, c := range g.centers {
				if d := math.Abs(buf[dim] - c[dim]); d < minDist {
					minDist = d
				}
			}
			if minDist < 0.12 {
				t.Fatalf("reported dim %d not displaced (dist %.3f)", dim, minDist)
			}
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("only %d outliers checked", checked)
	}
}

// TestGeneratorUniform checks the adversarial no-structure mode: points
// cover the unit box far more evenly than any clustered stream and no
// outliers are planted.
func TestGeneratorUniform(t *testing.T) {
	const d, n = 4, 4000
	cfg := DefaultGenConfig(d)
	cfg.Uniform = true
	cfg.OutlierRate = 0.5 // must be ignored
	gen := NewGenerator(cfg)
	buf := make([]float64, d)
	var hits [8]int
	for i := 0; i < n; i++ {
		if gen.Next(buf) {
			t.Fatal("uniform mode planted an outlier")
		}
		for _, x := range buf {
			if x < 0 || x >= 1 {
				t.Fatalf("point outside unit box: %v", x)
			}
		}
		hits[int(buf[0]*8)]++
	}
	for i, h := range hits {
		if h < n/8/2 || h > n/8*2 {
			t.Fatalf("dimension 0 interval %d hit %d times over %d points — not uniform", i, h, n)
		}
	}
}
