package bench

import (
	"math"
	"testing"
)

func TestGeneratorReproducible(t *testing.T) {
	cfg := DefaultGenConfig(8)
	g1, g2 := NewGenerator(cfg), NewGenerator(cfg)
	b1, b2 := make([]float64, 8), make([]float64, 8)
	for i := 0; i < 500; i++ {
		o1, o2 := g1.Next(b1), g2.Next(b2)
		if o1 != o2 {
			t.Fatalf("point %d: label diverged", i)
		}
		for j := range b1 {
			if b1[j] != b2[j] {
				t.Fatalf("point %d dim %d: %v vs %v", i, j, b1[j], b2[j])
			}
		}
	}
}

func TestGeneratorPointsInUnitBox(t *testing.T) {
	g := NewGenerator(DefaultGenConfig(12))
	buf := make([]float64, 12)
	for i := 0; i < 2000; i++ {
		g.Next(buf)
		for j, x := range buf {
			if x < 0 || x >= 1 || math.IsNaN(x) {
				t.Fatalf("point %d dim %d out of [0,1): %v", i, j, x)
			}
		}
	}
}

func TestGeneratorOutlierRateAndDisplacement(t *testing.T) {
	cfg := DefaultGenConfig(10)
	cfg.OutlierRate = 0.05
	g := NewGenerator(cfg)
	buf := make([]float64, 10)
	n, outliers := 5000, 0
	for i := 0; i < n; i++ {
		if g.Next(buf) {
			outliers++
			// Every planted outlier must have at least one coordinate
			// far from all cluster centers in that dimension.
			far := false
			for dim, x := range buf {
				minDist := math.Inf(1)
				for _, c := range g.centers {
					if d := math.Abs(x - c[dim]); d < minDist {
						minDist = d
					}
				}
				if minDist >= 0.12 {
					far = true
				}
			}
			if !far {
				t.Fatal("planted outlier has no displaced dimension")
			}
		}
	}
	rate := float64(outliers) / float64(n)
	if rate < 0.03 || rate > 0.07 {
		t.Errorf("outlier rate = %.3f, want ≈ 0.05", rate)
	}
}

func TestFillCountsPlanted(t *testing.T) {
	cfg := DefaultGenConfig(6)
	cfg.OutlierRate = 0.1
	g := NewGenerator(cfg)
	const n = 1000
	flat := make([]float64, n*6)
	labels := make([]bool, n)
	planted := g.Fill(flat, labels, n)
	count := 0
	for _, l := range labels {
		if l {
			count++
		}
	}
	if planted != count {
		t.Errorf("Fill returned %d, labels say %d", planted, count)
	}
	if planted == 0 {
		t.Error("no outliers planted at rate 0.1")
	}
}
