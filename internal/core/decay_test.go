package core

import (
	"math"
	"math/rand"
	"testing"
)

// TestDecayTableMatchesDecayBitwise pins the decay fallback contract:
// the memo table, the past-the-table fallback and the Decay function
// are all the same primitive, so any gap evaluated through any of
// them yields the identical float64 — including dt = 0, the table
// boundary at 4096, and gaps far beyond it.
func TestDecayTableMatchesDecayBitwise(t *testing.T) {
	for _, lambda := range []float64{0.002, 0.01, 0.07, 1.3} {
		tab := NewDecayTable(lambda)
		for dt := uint64(0); dt < 2*decayTableSize; dt++ {
			got := tab.At(dt)
			want := Decay(lambda, dt)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("lambda=%g dt=%d: table %x, Decay %x",
					lambda, dt, math.Float64bits(got), math.Float64bits(want))
			}
		}
		for _, dt := range []uint64{decayTableSize, decayTableSize + 1, 1 << 20, 1 << 40} {
			if got, want := tab.At(dt), Decay(lambda, dt); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("lambda=%g dt=%d: fallback %x, Decay %x",
					lambda, dt, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

// TestTouchRunStraddlesTableBoundary is the decay-drift oracle: a
// TouchRun whose inter-touch gaps straddle the 4096-tick decay-table
// boundary — some gaps served from the table, some from the
// transcendental fallback — must stay bit-identical to iterated Touch
// calls, summary fields and per-touch snapshots alike. A divergence
// here would mean the coalesced batch path and the pointwise path
// disagree exactly when a cell goes untouched for a long stretch.
func TestTouchRunStraddlesTableBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tab := NewDecayTable(0.002)
	gaps := []uint64{
		1, 3, decayTableSize - 1, decayTableSize, decayTableSize + 1,
		decayTableSize * 3, 2, decayTableSize + 4097, 1,
	}
	for trial := 0; trial < 20; trial++ {
		ticks := make([]uint64, 0, len(gaps))
		mags := make([]float64, 0, len(gaps))
		tick := uint64(20000 + rng.Intn(5000))
		for _, g := range gaps {
			// Shuffle in some randomized gaps around the boundary too.
			tick += g + uint64(rng.Intn(3))
			ticks = append(ticks, tick)
			mags = append(mags, rng.Float64()*10-5)
		}
		run := PCS{Dc: rng.Float64() * 50, S: rng.Float64() * 20, Q: rng.Float64() * 30, Last: ticks[0] - 1 - uint64(rng.Intn(int(decayTableSize*2)))}
		iter := run
		ss := make([]float64, len(ticks))
		dcs := make([]float64, len(ticks))
		run.TouchRun(tab, ticks, mags, ss, dcs)
		for j := range ticks {
			iter.Touch(tab, ticks[j], mags[j])
			if math.Float64bits(iter.S) != math.Float64bits(ss[j]) || math.Float64bits(iter.Dc) != math.Float64bits(dcs[j]) {
				t.Fatalf("trial %d touch %d: TouchRun snapshot (S=%x Dc=%x) diverges from iterated Touch (S=%x Dc=%x)",
					trial, j, math.Float64bits(ss[j]), math.Float64bits(dcs[j]), math.Float64bits(iter.S), math.Float64bits(iter.Dc))
			}
		}
		if run != iter {
			t.Fatalf("trial %d: final summaries diverge: run=%+v iter=%+v", trial, run, iter)
		}
	}
}
