package core

// Scoring primitives: when the detector runs with scoring enabled, the
// verdict pass no longer collapses each measure's threshold compare to
// a bit — it records which measures fired (a Measure bitset) and how
// far below threshold each one landed (a normalized deficit). Both are
// computed from values the verdict pass already holds in registers, so
// retaining them costs no extra table probes and no allocations.

// Measure is a bitset naming the outlier-ness measures of the SPOT
// verdict pass. A flagged (subspace, cell) pair carries the set of
// measures that fired on it, so attribution can say not just where a
// point looked anomalous but why.
type Measure uint8

const (
	// MeasureRD fires when the cell's Relative Density — decayed
	// density over the uniform expectation — falls below RDThreshold.
	MeasureRD Measure = 1 << iota
	// MeasureRDPopulated fires when the cell's decayed density falls
	// below the arity-aware populated floor (RDPopulatedThreshold
	// times the latest sweep's same-arity populated average).
	MeasureRDPopulated
	// MeasureIRSD fires when the Inverse Relative Standard Deviation
	// falls below IRSDThreshold.
	MeasureIRSD
	// MeasureIkRD fires when the Inverse k-Relative Distance falls
	// below IkRDThreshold.
	MeasureIkRD
)

// measureNames orders the measure labels by bit position.
var measureNames = [...]string{"RD", "RDPop", "IRSD", "IkRD"}

// String renders the set as "+"-joined measure names, "none" when
// empty; unknown high bits render as "?".
func (m Measure) String() string {
	if m == 0 {
		return "none"
	}
	s := ""
	for i, name := range measureNames {
		if m&(1<<uint(i)) != 0 {
			if s != "" {
				s += "+"
			}
			s += name
		}
	}
	if m>>uint(len(measureNames)) != 0 {
		if s != "" {
			s += "+"
		}
		s += "?"
	}
	return s
}

// Deficit normalizes how far a measure value fell below its firing
// threshold: 0 when the measure did not fire (value ≥ threshold, or a
// disabled/non-positive threshold), approaching 1 as the value
// approaches zero, exactly 1 at or below zero. Dividing by the
// threshold makes deficits comparable across measures and across
// subspace arities — the RD compare's threshold side already carries
// the arity-dependent φ^k scaling, so its deficit is the relative
// shortfall, not an absolute density difference.
func Deficit(value, threshold float64) float64 {
	if threshold <= 0 || value >= threshold {
		return 0
	}
	if value <= 0 {
		return 1
	}
	return 1 - value/threshold
}
