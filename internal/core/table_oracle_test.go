package core

import (
	"math/rand"
	"testing"
)

// TestPCSTableOracleProperty drives the open-addressed PCSTable and the
// map-backed MapPCSTable oracle through identical randomized operation
// sequences — interleaved Get (hit and miss), Touch, Sweep and EvictIf
// — and requires identical observable state after every operation:
// same length, same eviction counts, same surviving key/summary sets.
// Key-space skew keeps churn heavy (cells are re-created after
// eviction), and the insert volume forces several bucket-array
// doublings so lookups and deletions land mid-incremental-rehash.
func TestPCSTableOracleProperty(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		decay := NewDecayTable([]float64{0.005, 0.02, 0.08}[trial%3])
		oa := NewPCSTable()
		oracle := NewMapPCSTable()

		// Keys mimic real cell keys: a handful of subspace IDs over a
		// bounded coordinate range, so sweeps and EvictIf hit real
		// subsets rather than singletons.
		randKey := func() uint64 {
			id := uint32(rng.Intn(300))
			coords := []uint8{uint8(rng.Intn(8)), uint8(rng.Intn(8)), uint8(rng.Intn(4))}
			return EncodeCell(id, coords)
		}

		tick := uint64(1)
		ops := 6000 + rng.Intn(4000)
		for op := 0; op < ops; op++ {
			tick += uint64(rng.Intn(5))
			switch r := rng.Intn(100); {
			case r < 80: // touch a cell, creating it if absent
				key := randKey()
				m := rng.Float64()
				a := oa.Get(key, tick)
				b := oracle.Get(key, tick)
				if a.Dc != b.Dc || a.Last != b.Last {
					t.Fatalf("trial %d op %d: Get(%#x) diverged: %+v vs oracle %+v", trial, op, key, *a, *b)
				}
				a.Touch(decay, tick, m)
				b.Touch(decay, tick, m)
			case r < 90: // epoch sweep with a churn-inducing jump
				tick += uint64(rng.Intn(800))
				eps := []float64{0, 1e-6, 1e-3, 0.5}[rng.Intn(4)]
				got := map[uint64]float64{}
				want := map[uint64]float64{}
				ea := oa.Sweep(decay, tick, eps, func(key uint64, dc float64) { got[key] = dc })
				eb := oracle.Sweep(decay, tick, eps, func(key uint64, dc float64) { want[key] = dc })
				if ea != eb {
					t.Fatalf("trial %d op %d: Sweep evicted %d vs oracle %d", trial, op, ea, eb)
				}
				compareSurvivors(t, trial, op, "Sweep", got, want)
			default: // purge one subspace, as a demotion would
				id := uint32(rng.Intn(300))
				pred := func(key uint64) bool { return uint32(key>>SubspaceShift) == id }
				if ea, eb := oa.EvictIf(pred), oracle.EvictIf(pred); ea != eb {
					t.Fatalf("trial %d op %d: EvictIf evicted %d vs oracle %d", trial, op, ea, eb)
				}
			}
			if oa.Len() != oracle.Len() {
				t.Fatalf("trial %d op %d: Len %d vs oracle %d", trial, op, oa.Len(), oracle.Len())
			}
		}

		// Final deep comparison: every oracle cell reachable in the
		// open-addressed table with an identical summary, via both the
		// dense scan and the index.
		got := map[uint64]PCS{}
		for i := 0; i < oa.Len(); i++ {
			k, p := oa.At(i)
			got[k] = *p
		}
		for i := 0; i < oracle.Len(); i++ {
			k, p := oracle.At(i)
			g, ok := got[k]
			if !ok {
				t.Fatalf("trial %d: key %#x missing from open-addressed table", trial, k)
			}
			if g != *p {
				t.Fatalf("trial %d: summary for %#x diverged: %+v vs oracle %+v", trial, k, g, *p)
			}
			if q := oa.Get(k, tick); *q != *p {
				t.Fatalf("trial %d: index lookup for %#x diverged: %+v vs oracle %+v", trial, k, *q, *p)
			}
		}
	}
}

// compareSurvivors fails the test when two sweep survivor sets differ.
func compareSurvivors(t *testing.T, trial, op int, what string, got, want map[uint64]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trial %d op %d: %s survivors %d vs oracle %d", trial, op, what, len(got), len(want))
	}
	for k, dc := range want {
		if g, ok := got[k]; !ok || g != dc {
			t.Fatalf("trial %d op %d: %s survivor %#x = %g vs oracle %g (present=%v)", trial, op, what, k, g, dc, ok)
		}
	}
}

// TestPCSTableGrowthChurn fills a table far past several doublings,
// evicts almost everything, and verifies the survivors stay reachable —
// the exact pattern of a drifting stream between epoch sweeps.
func TestPCSTableGrowthChurn(t *testing.T) {
	decay := NewDecayTable(0.01)
	tbl := NewPCSTable()
	const n = 50000
	for i := uint64(0); i < n; i++ {
		tick := uint64(1)
		if i%97 == 0 {
			tick = 100000 // sparse warm subset survives the sweep below
		}
		tbl.Get(i, tick).Touch(decay, tick, 1)
	}
	if tbl.Len() != n {
		t.Fatalf("Len = %d after inserts, want %d", tbl.Len(), n)
	}
	evicted := tbl.Sweep(decay, 100000, 1e-4, nil)
	want := 0
	for i := uint64(0); i < n; i++ {
		if i%97 != 0 {
			want++
		}
	}
	if evicted != want {
		t.Fatalf("evicted %d, want %d", evicted, want)
	}
	for i := uint64(0); i < n; i += 97 {
		if p := tbl.Get(i, 100000); p.Dc < 1 {
			t.Fatalf("warm cell %d lost after churn: Dc=%g", i, p.Dc)
		}
	}
	// Refill after heavy eviction: reused dense slots must index cleanly.
	for i := uint64(0); i < 1000; i++ {
		tbl.Get(i, 100001).Touch(decay, 100001, 1)
	}
	survivors := (n + 96) / 97 // i%97==0 over [0,n)
	overlap := (1000-1)/97 + 1 // refilled keys that had survived
	if wantLen := survivors + 1000 - overlap; tbl.Len() != wantLen {
		t.Fatalf("Len = %d after refill, want %d", tbl.Len(), wantLen)
	}
	for i := uint64(0); i < 1000; i++ {
		if p := tbl.Get(i, 100001); p.Dc < 1 {
			t.Fatalf("refilled cell %d not reachable", i)
		}
	}
}
