package core

import "fmt"

// Cell-key layout. A subspace cell is addressed by one uint64:
//
//	bits 63..40  subspace ID        (up to ~16.7M subspaces)
//	bits 39..0   interval indices   (one byte per subspace dimension,
//	                                 dimension j of the subspace in bits
//	                                 [8j, 8j+8))
//
// Keeping the whole address in a single machine word means a cell
// lookup is one map probe and key construction is a handful of shifts —
// no per-dimension allocation, hashing of slices, or string building on
// the ingestion hot path.
const (
	// MaxSubspaceDims is the largest subspace arity a key can address.
	MaxSubspaceDims = 5
	// MaxPhi is the largest supported number of intervals per
	// dimension; interval indices 0..MaxPhi-1 must fit in one byte.
	MaxPhi = 255
	// MaxSubspaceID is the largest subspace ID a key can carry.
	MaxSubspaceID = 1<<24 - 1

	// CoordBits and SubspaceShift expose the key layout so hot loops
	// (internal/stream) can assemble keys with inline shifts instead
	// of a function call per dimension.
	CoordBits     = 8
	SubspaceShift = MaxSubspaceDims * CoordBits

	coordMask = 0xFF
)

// EncodeCell packs a subspace ID and per-dimension interval indices
// into a single cell key. coords must have length ≤ MaxSubspaceDims and
// id must be ≤ MaxSubspaceID; both are the caller's responsibility
// (validated once at template construction, not per point).
func EncodeCell(id uint32, coords []uint8) uint64 {
	key := uint64(id) << SubspaceShift
	for j, c := range coords {
		key |= uint64(c) << (uint(j) * CoordBits)
	}
	return key
}

// DecodeCell unpacks a cell key produced by EncodeCell. n is the arity
// of the subspace (the key alone cannot distinguish a trailing interval
// index of 0 from an absent dimension). coords must have room for n
// entries; the decoded indices are written into it.
func DecodeCell(key uint64, n int, coords []uint8) (id uint32) {
	id = uint32(key >> SubspaceShift)
	for j := 0; j < n; j++ {
		coords[j] = uint8((key >> (uint(j) * CoordBits)) & coordMask)
	}
	return id
}

// CoordAt extracts the interval index of subspace dimension j from a
// cell key without unpacking the rest.
func CoordAt(key uint64, j int) uint8 {
	return uint8((key >> (uint(j) * CoordBits)) & coordMask)
}

// Grid maps raw coordinate values to equi-width interval indices. Each
// dimension i of the data space is split into phi intervals of equal
// width spanning [min[i], max[i]); values outside the range clamp to
// the first/last interval so a drifting stream cannot index out of the
// grid.
type Grid struct {
	phi  int
	phiF float64 // float64(phi), the hot-path clamp bound
	min  []float64
	inv  []float64 // phi / (max-min), precomputed per dimension
	last uint8     // phi-1, the clamp bound
}

// NewGrid builds a grid with phi intervals per dimension over the box
// [min[i], max[i]) per dimension i.
func NewGrid(phi int, min, max []float64) (*Grid, error) {
	if phi < 1 || phi > MaxPhi {
		return nil, fmt.Errorf("core: phi must be in [1,%d], got %d", MaxPhi, phi)
	}
	if len(min) != len(max) {
		return nil, fmt.Errorf("core: min/max length mismatch (%d vs %d)", len(min), len(max))
	}
	g := &Grid{
		phi:  phi,
		phiF: float64(phi),
		min:  make([]float64, len(min)),
		inv:  make([]float64, len(min)),
		last: uint8(phi - 1),
	}
	copy(g.min, min)
	for i := range min {
		w := max[i] - min[i]
		if w <= 0 {
			return nil, fmt.Errorf("core: dimension %d has non-positive width %g", i, w)
		}
		g.inv[i] = float64(phi) / w
	}
	return g, nil
}

// Phi returns the number of intervals per dimension.
func (g *Grid) Phi() int { return g.phi }

// Dims returns the dimensionality of the grid's data space.
func (g *Grid) Dims() int { return len(g.min) }

// Interval maps value x in dimension dim to its interval index,
// clamping out-of-range values to the boundary intervals.
func (g *Grid) Interval(dim int, x float64) uint8 {
	v := (x - g.min[dim]) * g.inv[dim]
	// Branchy clamp rather than min/max float tricks: NaN also lands
	// in interval 0 instead of producing an undefined index.
	if !(v > 0) {
		return 0
	}
	// Compare in float space: converting first would let values beyond
	// int64 range (huge x, +Inf) overflow int(v) to negative and dodge
	// the clamp.
	if v >= g.phiF {
		return g.last
	}
	return uint8(int(v))
}

// Intervals maps a full d-dimensional point to its per-dimension
// interval indices, writing them into out (len(out) must be ≥ the grid
// dimensionality). Computing all indices once per point lets every
// subspace's cell key be assembled with shifts only.
func (g *Grid) Intervals(point []float64, out []uint8) {
	for i := range g.min {
		out[i] = g.Interval(i, point[i])
	}
}
