package core

import "math/bits"

// Grouper partitions a batch's cell keys into runs: all positions of the
// batch that land in the same cell, chained in increasing batch order.
// It is the grouping pass of the coalesced batch path — after key
// assembly, one Group call replaces "one index probe per point" with
// "one probe per distinct cell" downstream (PCSTable.TouchRuns), which
// is where dense streams spend most of their duplicate work.
//
// The grouper is a reusable scratch structure: a small open-addressed
// key index over the batch (power-of-two, ≤1/2 load, cleared per call)
// plus first-seen-ordered group arrays and a per-position next chain.
// All backing arrays are retained across calls, so steady state — the
// same batch size over and over, as the detector's shards drive it —
// performs zero heap allocations. Not safe for concurrent use; each
// detector shard owns one.
type Grouper struct {
	slots []int32 // open-addressed key index: group index + 1, 0 = empty
	shift uint    // home slot of a key = cellHash(key) >> shift

	keys []uint64 // distinct cell keys, first-seen order
	head []int32  // first batch position of each group's run
	tail []int32  // last batch position of each group's run
	next []int32  // next position of the same run, -1 ends it
}

// grouperMinSlots is the smallest key-index size; tiny sub-batches (an
// epoch split can cut a batch to a handful of points) stay on one cache
// line instead of resizing the index down.
const grouperMinSlots = 16

// Group partitions keys — one cell key per batch position, in tick
// order — into per-cell runs, replacing any previous grouping. Runs
// preserve batch order: walking a group's chain visits its positions in
// increasing order, which is what keeps the downstream run fold on the
// same tick trajectory as the pointwise path.
func (g *Grouper) Group(keys []uint64) {
	n := len(keys)
	want := grouperMinSlots
	for want < 2*n {
		want <<= 1
	}
	if len(g.slots) < want {
		g.slots = make([]int32, want)
		g.shift = uint(64 - bits.TrailingZeros(uint(want)))
	} else {
		clear(g.slots)
	}
	if cap(g.next) < n {
		g.next = make([]int32, n)
		g.keys = make([]uint64, 0, n)
		g.head = make([]int32, 0, n)
		g.tail = make([]int32, 0, n)
	}
	g.next = g.next[:n]
	g.keys = g.keys[:0]
	g.head = g.head[:0]
	g.tail = g.tail[:0]
	mask := uint64(len(g.slots) - 1)
	shift := g.shift
	for i, key := range keys {
		j := cellHash(key) >> shift
		for {
			s := g.slots[j]
			if s == 0 {
				g.slots[j] = int32(len(g.keys)) + 1
				g.keys = append(g.keys, key)
				g.head = append(g.head, int32(i))
				g.tail = append(g.tail, int32(i))
				g.next[i] = -1
				break
			}
			if g.keys[s-1] == key {
				g.next[g.tail[s-1]] = int32(i)
				g.tail[s-1] = int32(i)
				g.next[i] = -1
				break
			}
			j = (j + 1) & mask
		}
	}
}

// Groups returns the number of distinct cells of the last Group call —
// the batch's distinct-cell count, the duplication statistic the bench
// harness reports per workload.
func (g *Grouper) Groups() int { return len(g.keys) }

// Key returns the cell key of group gi (0 ≤ gi < Groups), in first-seen
// order.
func (g *Grouper) Key(gi int) uint64 { return g.keys[gi] }

// First returns the first batch position of group gi's run.
func (g *Grouper) First(gi int) int { return int(g.head[gi]) }

// Next returns the run successor of batch position i, or -1 at the end
// of i's run.
func (g *Grouper) Next(i int) int { return int(g.next[i]) }
