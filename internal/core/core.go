package core
