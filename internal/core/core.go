// Package core implements the cell-based data summaries at the heart of
// SPOT (Zhang, Gao & Wu, "SPOT: A System for Detecting Projected Outliers
// From High-dimensional Data Streams", ICDE 2008).
//
// Concept map (paper term -> code):
//
//   - Equi-width cell grid: every dimension of the data space is
//     partitioned into φ (phi) equal-width intervals. A cell of a
//     subspace s is the cross product of one interval per dimension of
//     s. See Grid.
//
//   - Cell key: a subspace cell is identified by a single packed uint64
//     (subspace ID in the high bits, one byte of interval index per
//     subspace dimension in the low bits) so that locating a cell's
//     summary is one map probe with no per-dimension allocation. See
//     EncodeCell / DecodeCell.
//
//   - BCS (Base Cell Summary): the summary kept for every populated
//     base cell, i.e. a cell of the full d-dimensional space. It holds
//     the decayed density Dc plus per-dimension decayed linear and
//     squared sums (LS/SS) from which centroids and spreads of any
//     projection can be reconstructed — the raw material the epoch
//     sweep snapshots for the self-evolving subspace group
//     (internal/sst's Evolver). See BCS.
//
//   - PCS (Projected Cell Summary): the compact summary kept per
//     populated cell of every subspace in the Sparse Subspace Template.
//     It holds the decayed density Dc and the decayed first/second
//     moments of the point magnitude within the cell, from which the
//     outlier-ness measures RD (Relative Density), IRSD (Inverse
//     Relative Standard Deviation) and IkRD (Inverse k-Relative
//     Distance) are derived. See PCS and internal/stream for the
//     measure computations.
//
//   - Fading factor: all summaries decay exponentially with stream
//     time, weighting a point observed Δt ticks ago by 2^(-λ·Δt).
//     Decay is applied lazily ("update on touch"): each summary stores
//     the tick of its last update and is brought current only when it
//     is touched again, so ingestion never scans the summary tables.
//     See Decay, DecayTable and the Touch methods.
//
//   - Epoch sweep: the counterpart of lazy decay. Summaries the stream
//     abandons are never touched again, so PCSTable and BCSTable
//     support a periodic linear sweep that evicts entries whose
//     decayed density fell below a floor ε and hands survivors to a
//     visitor for density accounting and SST evolution. See
//     PCSTable.Sweep and BCSTable.Sweep.
package core
