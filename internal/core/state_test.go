package core

import (
	"strings"
	"testing"
)

// TestPCSTableAppend: Append reproduces an exact dense layout — keys
// come back in insertion order via At, lookups see them, and a
// duplicate key (a corrupt snapshot) is rejected.
func TestPCSTableAppend(t *testing.T) {
	keys := []uint64{
		EncodeCell(3, []uint8{1, 2}),
		EncodeCell(3, []uint8{2, 2}),
		EncodeCell(7, []uint8{0, 0, 5}),
	}
	dst := NewPCSTable()
	for i, key := range keys {
		cell := PCS{Dc: float64(i) + 0.5, S: float64(2 * i), Q: float64(3 * i), Last: uint64(10 + i)}
		if err := dst.Append(key, cell); err != nil {
			t.Fatalf("append %#x: %v", key, err)
		}
	}
	if dst.Len() != len(keys) {
		t.Fatalf("Len %d, want %d", dst.Len(), len(keys))
	}
	for i, want := range keys {
		key, cell := dst.At(i)
		if key != want {
			t.Fatalf("At(%d) key %#x, want %#x — dense order not preserved", i, key, want)
		}
		if cell.Dc != float64(i)+0.5 || cell.Last != uint64(10+i) {
			t.Fatalf("At(%d) summary %+v stored wrong", i, cell)
		}
		if !dst.Contains(want) {
			t.Fatalf("Contains(%#x) false after append", want)
		}
	}
	err := dst.Append(keys[1], PCS{Dc: 1})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate append: %v", err)
	}
	if dst.Len() != len(keys) {
		t.Fatalf("failed append changed the table: Len %d", dst.Len())
	}
}

// TestBCSTableLoadRange: Load stores summaries verbatim under
// validation, Range visits every populated cell, and malformed
// restores (wrong key width, wrong moment dimensionality, duplicates)
// are rejected.
func TestBCSTableLoadRange(t *testing.T) {
	const d = 3
	tbl := NewBCSTable(d)
	if tbl.Dims() != d {
		t.Fatalf("Dims %d, want %d", tbl.Dims(), d)
	}
	cells := map[string]*BCS{
		string([]byte{0, 1, 2}): {Dc: 2.5, LS: []float64{1, 2, 3}, SS: []float64{1, 4, 9}, Last: 7},
		string([]byte{5, 5, 5}): {Dc: 0.25, LS: []float64{9, 9, 9}, SS: []float64{81, 81, 81}, Last: 9},
	}
	for key, b := range cells {
		if err := tbl.Load(key, b); err != nil {
			t.Fatalf("load %q: %v", key, err)
		}
	}
	if tbl.Len() != len(cells) {
		t.Fatalf("Len %d, want %d", tbl.Len(), len(cells))
	}
	seen := 0
	tbl.Range(func(key string, b *BCS) {
		seen++
		want, ok := cells[key]
		if !ok {
			t.Fatalf("Range visited unknown key %q", key)
		}
		if b.Dc != want.Dc || b.Last != want.Last || b.LS[1] != want.LS[1] || b.SS[2] != want.SS[2] {
			t.Fatalf("Range %q summary %+v, want %+v", key, b, want)
		}
	})
	if seen != len(cells) {
		t.Fatalf("Range visited %d cells, want %d", seen, len(cells))
	}

	bad := []struct {
		name string
		key  string
		b    *BCS
		want string
	}{
		{"short key", string([]byte{0, 1}), NewBCS(d), "key of 2 bytes"},
		{"long key", string([]byte{0, 1, 2, 3}), NewBCS(d), "key of 4 bytes"},
		{"wrong moments", string([]byte{9, 9, 9}), &BCS{LS: []float64{1}, SS: []float64{1}}, "moments"},
		{"duplicate", string([]byte{0, 1, 2}), NewBCS(d), "duplicate"},
	}
	for _, tc := range bad {
		err := tbl.Load(tc.key, tc.b)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if tbl.Len() != len(cells) {
		t.Fatalf("failed loads changed the table: Len %d", tbl.Len())
	}
}
