package core

import (
	"math"
	"math/rand"
	"testing"
)

// TestTouchRunMatchesTouchOracle pins the run-fold contract the
// coalesced batch path stands on: PCS.TouchRun over any strictly
// increasing tick sequence produces bit-identical state and per-touch
// snapshots to iterated PCS.Touch calls. Trials randomize run length,
// starting state, magnitudes and tick gaps — mixing dense consecutive
// ticks with gaps beyond the DecayTable memo (dt > 4096), so the fold
// crosses the table→Exp2 fallback boundary mid-run.
func TestTouchRunMatchesTouchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dt := NewDecayTable(0.002)
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(64)
		start := uint64(rng.Intn(10000))
		var ref, run PCS
		if rng.Intn(2) == 0 { // half the trials start from a lived-in cell
			ref = PCS{Dc: 50 * rng.Float64(), S: 20 * rng.Float64(), Q: 40 * rng.Float64(), Last: start}
			run = ref
		} else {
			ref.Last = start
			run.Last = start
		}
		ticks := make([]uint64, m)
		mags := make([]float64, m)
		tick := start
		for j := range ticks {
			switch rng.Intn(4) {
			case 0: // consecutive tick — the dense-run common case
				tick++
			case 1: // small gap inside the memo table
				tick += 1 + uint64(rng.Intn(100))
			case 2: // gap straddling the memo boundary
				tick += decayTableSize - 8 + uint64(rng.Intn(16))
			default: // far past the memo: Exp2 fallback
				tick += decayTableSize + uint64(rng.Intn(20000))
			}
			ticks[j] = tick
			mags[j] = 10 * (rng.Float64() - 0.5)
		}

		wantSS := make([]float64, m)
		wantDc := make([]float64, m)
		for j := range ticks {
			ref.Touch(dt, ticks[j], mags[j])
			wantSS[j] = ref.S
			wantDc[j] = ref.Dc
		}
		gotSS := make([]float64, m)
		gotDc := make([]float64, m)
		run.TouchRun(dt, ticks, mags, gotSS, gotDc)

		if run != ref {
			t.Fatalf("trial %d: state diverged:\n run %+v\nwant %+v", trial, run, ref)
		}
		for j := range ticks {
			if gotSS[j] != wantSS[j] || gotDc[j] != wantDc[j] {
				t.Fatalf("trial %d touch %d: snapshot (S=%v Dc=%v) != oracle (S=%v Dc=%v)",
					trial, j, gotSS[j], gotDc[j], wantSS[j], wantDc[j])
			}
		}
	}
}

// TestSeriesClosedForm checks the closed-form geometric series against
// the iterated sum of DecayTable powers, including lengths beyond the
// memo table, and verifies the run-fold algebra it documents: a fresh
// summary touched once per tick for m ticks ends within rounding of
// Series(m).
func TestSeriesClosedForm(t *testing.T) {
	for _, lambda := range []float64{0.002, 0.01, 0.2} {
		dt := NewDecayTable(lambda)
		for _, m := range []uint64{0, 1, 2, 3, 100, decayTableSize - 1, decayTableSize, decayTableSize + 977} {
			want := 0.0
			for j := uint64(0); j < m; j++ {
				want += dt.At(j)
			}
			got := dt.Series(m)
			if math.Abs(got-want) > 1e-9*(1+want) {
				t.Fatalf("lambda=%g m=%d: Series=%v, iterated sum=%v", lambda, m, got, want)
			}
		}

		const m = 300
		var p PCS
		p.Last = 10
		ticks := make([]uint64, m)
		mags := make([]float64, m)
		scratch := make([]float64, m)
		for j := range ticks {
			ticks[j] = 10 + uint64(j) + 1
		}
		p.TouchRun(dt, ticks, mags, scratch, scratch)
		if want := dt.Series(m); math.Abs(p.Dc-want) > 1e-9*want {
			t.Fatalf("lambda=%g: %d consecutive touches give Dc=%v, Series=%v", lambda, m, p.Dc, want)
		}
	}
}
