package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	coords := make([]uint8, MaxSubspaceDims)
	got := make([]uint8, MaxSubspaceDims)
	for trial := 0; trial < 1000; trial++ {
		n := 1 + rng.Intn(MaxSubspaceDims)
		id := uint32(rng.Intn(MaxSubspaceID + 1))
		for j := 0; j < n; j++ {
			coords[j] = uint8(rng.Intn(MaxPhi))
		}
		key := EncodeCell(id, coords[:n])
		gotID := DecodeCell(key, n, got[:n])
		if gotID != id {
			t.Fatalf("trial %d: id round-trip %d -> %d", trial, id, gotID)
		}
		for j := 0; j < n; j++ {
			if got[j] != coords[j] {
				t.Fatalf("trial %d: coord %d round-trip %d -> %d", trial, j, coords[j], got[j])
			}
			if CoordAt(key, j) != coords[j] {
				t.Fatalf("trial %d: CoordAt(%d) = %d, want %d", trial, j, CoordAt(key, j), coords[j])
			}
		}
	}
}

func TestEncodeDecodeExtremes(t *testing.T) {
	// Largest representable cell: max subspace ID, max interval index
	// (phi=255 -> indices 0..254) in every slot.
	coords := []uint8{254, 254, 254, 254, 254}
	key := EncodeCell(MaxSubspaceID, coords)
	got := make([]uint8, MaxSubspaceDims)
	if id := DecodeCell(key, MaxSubspaceDims, got); id != MaxSubspaceID {
		t.Fatalf("id = %d, want %d", id, MaxSubspaceID)
	}
	for j, c := range got {
		if c != 254 {
			t.Fatalf("coord %d = %d, want 254", j, c)
		}
	}
	// Zero cell of subspace 0 is key 0.
	if key := EncodeCell(0, []uint8{0}); key != 0 {
		t.Fatalf("zero cell key = %d, want 0", key)
	}
}

func TestGridIntervalEdges(t *testing.T) {
	g, err := NewGrid(4, []float64{0}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    float64
		want uint8
	}{
		{0, 0},
		{0.2499, 0},
		{0.25, 1}, // exact interval boundary belongs to the upper interval
		{0.5, 2},
		{0.75, 3},
		{0.999, 3},
		{1.0, 3},  // max clamps into the last interval
		{5.0, 3},  // out of range clamps high
		{-3.0, 0}, // out of range clamps low
		{1e30, 3}, // beyond int64 range must still clamp high, not overflow
		{math.Inf(1), 3},
		{math.Inf(-1), 0},
		{math.NaN(), 0},
	}
	for _, c := range cases {
		if got := g.Interval(0, c.x); got != c.want {
			t.Errorf("Interval(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestGridPhiExtremes(t *testing.T) {
	// phi=1: every value lands in the single interval.
	g1, err := NewGrid(1, []float64{-10, 0}, []float64{10, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-10, -3, 0, 5, 9.999, 10, 100} {
		if got := g1.Interval(0, x); got != 0 {
			t.Errorf("phi=1: Interval(%v) = %d, want 0", x, got)
		}
	}
	// phi=255 (MaxPhi): indices span 0..254 and stay in one byte.
	g255, err := NewGrid(255, []float64{0}, []float64{255})
	if err != nil {
		t.Fatal(err)
	}
	if got := g255.Interval(0, 254.5); got != 254 {
		t.Errorf("phi=255: Interval(254.5) = %d, want 254", got)
	}
	if got := g255.Interval(0, 1000); got != 254 {
		t.Errorf("phi=255: clamp high = %d, want 254", got)
	}
	if got := g255.Interval(0, 37.2); got != 37 {
		t.Errorf("phi=255: Interval(37.2) = %d, want 37", got)
	}
	// phi out of range is rejected.
	if _, err := NewGrid(0, []float64{0}, []float64{1}); err == nil {
		t.Error("phi=0 accepted, want error")
	}
	if _, err := NewGrid(256, []float64{0}, []float64{1}); err == nil {
		t.Error("phi=256 accepted, want error")
	}
}

func TestGridIntervals(t *testing.T) {
	g, err := NewGrid(8, []float64{0, -1}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint8, 2)
	g.Intervals([]float64{0.5, 0}, out)
	if out[0] != 4 || out[1] != 4 {
		t.Fatalf("Intervals = %v, want [4 4]", out)
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(8, []float64{0, 0}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewGrid(8, []float64{1}, []float64{1}); err == nil {
		t.Error("zero-width dimension accepted")
	}
}
