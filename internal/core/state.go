package core

import "fmt"

// State export/import primitives for the snapshot layer (see
// internal/snapshot and the stream package's Snapshot/Restore). The
// dense PCSTable layout makes serialization a linear walk over
// At(0..Len); restore replays the cells with Append in the saved order,
// reproducing the exact dense layout — and therefore the exact sweep
// visit order, whose floating-point accumulation order downstream
// evolution decisions depend on.

// Append inserts a cell with a known key and summary at the end of the
// dense layout — the snapshot-restore primitive. Unlike Get it never
// decays or zeroes anything: the summary is stored verbatim. Appending
// a key that is already populated is a corrupt-snapshot condition and
// returns an error.
func (t *PCSTable) Append(key uint64, cell PCS) error {
	if t.Contains(key) {
		return fmt.Errorf("core: duplicate cell key %#x", key)
	}
	s := uint32(len(t.cells))
	t.cells = append(t.cells, cell)
	t.keys = append(t.keys, key)
	t.insert(key, s)
	return nil
}

// Range calls visit for every populated base cell with its key (the
// interval-index vector as an immutable string) and summary, without
// decaying or mutating anything. Iteration order is the map's —
// randomized; serialization sorts the keys itself.
func (t *BCSTable) Range(visit func(key string, b *BCS)) {
	for key, b := range t.cells {
		visit(key, b)
	}
}

// Load inserts a base cell under key with the given summary, verbatim
// — the snapshot-restore primitive. The key must be one byte per
// dimension and the summary's moment slices must match the table's
// dimensionality; a populated key is a corrupt-snapshot condition.
func (t *BCSTable) Load(key string, b *BCS) error {
	if len(key) != t.dims {
		return fmt.Errorf("core: base-cell key of %d bytes in a %d-dimensional table", len(key), t.dims)
	}
	if len(b.LS) != t.dims || len(b.SS) != t.dims {
		return fmt.Errorf("core: base-cell moments of %d/%d dims in a %d-dimensional table", len(b.LS), len(b.SS), t.dims)
	}
	if _, ok := t.cells[key]; ok {
		return fmt.Errorf("core: duplicate base-cell key %q", key)
	}
	t.cells[key] = b
	return nil
}

// Dims returns the dimensionality of the table's data space.
func (t *BCSTable) Dims() int { return t.dims }
