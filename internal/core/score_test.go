package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestMeasureString(t *testing.T) {
	cases := []struct {
		m    Measure
		want string
	}{
		{0, "none"},
		{MeasureRD, "RD"},
		{MeasureRDPopulated, "RDPop"},
		{MeasureIRSD, "IRSD"},
		{MeasureIkRD, "IkRD"},
		{MeasureRD | MeasureIkRD, "RD+IkRD"},
		{MeasureRD | MeasureRDPopulated | MeasureIRSD | MeasureIkRD, "RD+RDPop+IRSD+IkRD"},
		{1 << 6, "?"},
		{MeasureIRSD | 1<<7, "IRSD+?"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("Measure(%#x).String() = %q, want %q", uint8(c.m), got, c.want)
		}
	}
}

func TestDeficitEdges(t *testing.T) {
	cases := []struct {
		value, threshold, want float64
	}{
		{0.05, 0.05, 0},  // at threshold: did not fire
		{0.06, 0.05, 0},  // above threshold
		{0.05, 0, 0},     // disabled threshold
		{0.05, -1, 0},    // negative threshold
		{0, 0.05, 1},     // all the way down
		{-0.3, 0.05, 1},  // below zero clamps
		{0.025, 0.05, 0.5},
		{0.01, 0.05, 0.8},
	}
	for _, c := range cases {
		if got := Deficit(c.value, c.threshold); got != c.want {
			t.Errorf("Deficit(%g, %g) = %g, want %g", c.value, c.threshold, got, c.want)
		}
	}
}

// TestDeficitProperties checks the range and monotonicity contract on
// random inputs: deficits live in [0,1], fire exactly when
// value < threshold > 0, and a smaller value never yields a smaller
// deficit.
func TestDeficitProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		thr := rng.Float64() * 2
		v := rng.Float64()*3 - 0.5
		d := Deficit(v, thr)
		if d < 0 || d > 1 || math.IsNaN(d) {
			t.Fatalf("Deficit(%g, %g) = %g out of [0,1]", v, thr, d)
		}
		if thr > 0 && v < thr && v > 0 && d <= 0 {
			t.Fatalf("Deficit(%g, %g) = %g: fired compare but zero deficit", v, thr, d)
		}
		if (thr <= 0 || v >= thr) && d != 0 {
			t.Fatalf("Deficit(%g, %g) = %g: did not fire but nonzero", v, thr, d)
		}
		// Monotone: moving the value down cannot shrink the deficit.
		if thr > 0 {
			v2 := v - rng.Float64()
			if d2 := Deficit(v2, thr); d2 < d {
				t.Fatalf("Deficit not monotone: Deficit(%g)=%g < Deficit(%g)=%g at thr=%g", v2, d2, v, d, thr)
			}
		}
	}
}
