package core

// Summary tables with epoch-sweep support. The streaming hot path only
// ever touches one cell per subspace per point, so lazy decay keeps
// ingestion cost independent of table size — but it also means a cell
// abandoned by a drifting stream is never visited again and its
// near-zero summary lingers forever. The tables below add the missing
// half of the lifecycle: a periodic sweep that visits every summary
// once per epoch, evicts the ones whose decayed weight has fallen below
// a floor ε, and hands every survivor to a caller-supplied visitor so
// the same scan can feed density accounting and SST evolution without a
// second pass over the data.
//
// The projected-cell table is the single hottest structure in the
// system: with ~1.3k SST subspaces every ingested point performs ~1.3k
// cell lookups, so the index is a custom open-addressing hash table
// rather than a Go map. Each bucket carries the packed uint64 cell key
// inline next to its dense-slot reference, so a lookup hit touches
// exactly one index cache line: hash the key with an inline xor-shift +
// Fibonacci multiply, load the home bucket, compare, done — no hashing
// call, no second indirection into the key slice, and linear probing on
// the rare collision. MapPCSTable keeps the previous map-backed
// implementation alive as the differential-testing oracle.

import "math/bits"

const (
	// oaMinBuckets is the initial bucket-array capacity; always a power
	// of two so the probe sequence can wrap with a mask.
	oaMinBuckets = 64
	// oaMigrateStride is how many old-table buckets each insert drains
	// during an incremental rehash. Growth triggers at 3/4 occupancy
	// and doubles the array, so the old table is fully drained long
	// before the new one can need growing again.
	oaMigrateStride = 16
)

// cellHash mixes a packed cell key into a well-distributed 64-bit hash:
// an xor-shift fold (cell keys concentrate their entropy in the low
// coordinate bytes and the high subspace-ID bits) followed by a
// Fibonacci multiply by 2^64/φ, whose top bits index the bucket array.
func cellHash(key uint64) uint64 {
	key ^= key >> 33
	key *= 0x9E3779B97F4A7C15
	key ^= key >> 29
	return key
}

// oaBucket is one open-addressing bucket: the cell key inline plus the
// dense slot holding its summary, biased by one so ref==0 marks an
// empty bucket (key 0 is a legitimate cell key).
type oaBucket struct {
	key uint64
	ref uint32 // dense slot + 1; 0 = empty
}

// PCSTable stores the Projected Cell Summaries of one shard: an
// open-addressed cell-key index over dense keys/cells slices. The dense
// layout is what makes the epoch sweep a linear scan instead of a map
// iteration, and eviction a swap-remove instead of a tombstone; the
// index stores only key/slot pairs, never summaries. Not safe for
// concurrent use; each detector shard owns exactly one table.
type PCSTable struct {
	keys  []uint64
	cells []PCS

	// Open-addressing index. The home bucket of a key is the top
	// log2(len) bits of its hash (hash >> shift); collisions probe
	// linearly with a wrap mask.
	buckets []oaBucket
	shift   uint
	grow    int // occupancy that triggers the next doubling

	// Incremental-rehash state: after a doubling the previous bucket
	// array drains a few probe clusters per insert instead of stalling
	// one insert on a full rehash. Lookups consult the live array
	// first, then old; old is nil outside a rehash.
	old      []oaBucket
	oldShift uint
	oldLeft  int    // entries not yet migrated out of old
	scan     uint64 // cyclic migration cursor, always at a cluster boundary
}

// NewPCSTable returns an empty table.
func NewPCSTable() *PCSTable {
	return &PCSTable{}
}

// Len returns the number of populated cells in the table.
func (t *PCSTable) Len() int { return len(t.cells) }

// Get returns the summary for the cell key, creating an empty summary
// stamped at tick if the cell was not yet populated. The returned
// pointer is invalidated by the next Get that inserts or the next
// Sweep; hot loops use it immediately and never retain it. Zero heap
// allocations for existing cells.
func (t *PCSTable) Get(key uint64, tick uint64) *PCS {
	return &t.cells[t.GetSlot(key, tick)]
}

// GetSlot is Get returning the cell's dense slot instead of a summary
// pointer, for callers that cache slots across touches: slots are
// stable under Get/insert (appends never move existing cells) and are
// invalidated only by Sweep/EvictIf compaction. Pair with CellAt.
func (t *PCSTable) GetSlot(key uint64, tick uint64) uint32 {
	if t.buckets != nil {
		mask := uint64(len(t.buckets) - 1)
		for i := cellHash(key) >> t.shift; ; i = (i + 1) & mask {
			b := t.buckets[i]
			if b.key == key && b.ref != 0 {
				return b.ref - 1
			}
			if b.ref == 0 {
				break
			}
		}
		if t.old != nil {
			if s, ok := oaFind(t.old, t.oldShift, key); ok {
				return s
			}
		}
	}
	s := uint32(len(t.cells))
	t.cells = append(t.cells, PCS{Last: tick})
	t.keys = append(t.keys, key)
	t.insert(key, s)
	return s
}

// CellAt returns the summary at dense slot i, as previously returned by
// GetSlot. The slot must not have been invalidated by a Sweep or
// EvictIf since.
func (t *PCSTable) CellAt(i uint32) *PCS { return &t.cells[i] }

// Contains reports whether the cell key is populated, without
// inserting. Used by the epoch path to detect representatives whose
// cells a sweep just evicted.
func (t *PCSTable) Contains(key uint64) bool {
	if t.buckets == nil {
		return false
	}
	if _, ok := oaFind(t.buckets, t.shift, key); ok {
		return true
	}
	if t.old != nil {
		if _, ok := oaFind(t.old, t.oldShift, key); ok {
			return true
		}
	}
	return false
}

// TouchBatch folds one member of magnitude mags[i] observed at tick
// into the cell of keys[i], for every i, creating missing cells —
// the batch form of Get+Touch the detector's pointwise path is built
// on. It writes each cell's dense slot into slots and its post-touch
// decayed density into dcs (all slices len ≥ len(keys)), so verdict
// logic downstream can run off the dense density array without
// revisiting the random cell lines. Probe and summary fold run inline
// with no per-key call: the index and cell-line misses of neighboring
// keys are mutually independent, and keeping them in one call-free
// loop lets the CPU overlap them instead of serializing probe → fold →
// verdict per subspace. Misses and rehash-in-flight lookups fall back
// to GetSlot, which rechecks everything and may grow the index — the
// cached geometry is reloaded after every fallback. Zero heap
// allocations when every cell exists.
func (t *PCSTable) TouchBatch(d *DecayTable, tick uint64, keys []uint64, mags []float64, slots []uint32, dcs []float64) {
	// Reslicing the outputs to the input length lets the compiler drop
	// the per-iteration bounds checks.
	mags = mags[:len(keys)]
	slots = slots[:len(keys)]
	dcs = dcs[:len(keys)]
	// The index geometry and dense slices are cached in locals so the
	// loop reads registers, not the table struct; the GetSlot fallback
	// can grow the index or reallocate the cells, so the locals are
	// reloaded after every fallback.
	buckets := t.buckets
	cells := t.cells
	var mask uint64
	var shift uint
	if buckets != nil {
		mask = uint64(len(buckets) - 1)
		shift = t.shift
	}
	for li, key := range keys {
		var slot uint32
		if buckets == nil {
			slot = t.GetSlot(key, tick)
			buckets = t.buckets
			cells = t.cells
			mask = uint64(len(buckets) - 1)
			shift = t.shift
		} else {
			i := cellHash(key) >> shift
			for {
				b := buckets[i]
				if b.key == key && b.ref != 0 {
					slot = b.ref - 1
					break
				}
				if b.ref == 0 {
					slot = t.GetSlot(key, tick)
					buckets = t.buckets
					cells = t.cells
					mask = uint64(len(buckets) - 1)
					shift = t.shift
					break
				}
				i = (i + 1) & mask
			}
		}
		slots[li] = slot
		// The body of PCS.Touch, inlined (a call per cell would cost
		// more than the fold itself).
		p := &cells[slot]
		if p.Last != tick {
			f := d.At(tick - p.Last)
			p.Dc *= f
			p.S *= f
			p.Q *= f
			p.Last = tick
		}
		m := mags[li]
		p.Dc++
		p.S += m
		p.Q += m * m
		dcs[li] = p.Dc
	}
}

// TouchCols is the subspace-major batch touch the detector's hot path
// is built on: one call processes every point of a batch through a
// single subspace whose packed key base is keyBase. coordCols/valCols
// hold the subspace's member dimensions as transposed columns — entry
// i of column j is point i's interval index / raw value in member
// dimension j — and point i is touched at tick t0+i+1. The loop fuses
// key assembly, index probe and summary fold: nothing is materialized
// between the stages, and because one subspace's stream revisits a
// small recurring cell set, the probed buckets and touched cell lines
// stay cache-resident across the run. Each point's packed cell key
// lands in keys, its projected magnitude in mags, and its cell's
// post-touch decayed magnitude sum and density in ss/dcs (all len ≥
// the column length), feeding the caller's verdict pass from dense
// arrays that reflect the cell exactly as of that point's tick — the
// cell line itself keeps absorbing later points of the same run. Zero
// heap allocations when every cell exists.
func (t *PCSTable) TouchCols(d *DecayTable, t0 uint64, keyBase uint64, coordCols [][]uint8, valCols [][]float64, keys []uint64, mags []float64, ss []float64, dcs []float64) {
	k := len(coordCols)
	c0 := coordCols[0]
	n := len(c0)
	v0 := valCols[0][:n]
	var c1, c2 []uint8
	var v1, v2 []float64
	if k >= 2 {
		c1, v1 = coordCols[1][:n], valCols[1][:n]
	}
	if k >= 3 {
		c2, v2 = coordCols[2][:n], valCols[2][:n]
	}
	keys = keys[:n]
	mags = mags[:n]
	ss = ss[:n]
	dcs = dcs[:n]
	buckets := t.buckets
	cells := t.cells
	var mask uint64
	var shift uint
	if buckets != nil {
		mask = uint64(len(buckets) - 1)
		shift = t.shift
	}
	tick := t0
	prevKey := ^uint64(0) // no valid cell key is all-ones
	var prevSlot uint32
	for i := 0; i < n; i++ {
		tick++
		var key uint64
		var m float64
		// The arity switch is loop-invariant, so the branch predictor
		// resolves it for free; arities 1–3 (the fixed group's bulk)
		// assemble with constant shifts.
		switch k {
		case 1:
			key = keyBase | uint64(c0[i])
			m = v0[i]
		case 2:
			key = keyBase | uint64(c0[i]) | uint64(c1[i])<<CoordBits
			m = v0[i] + v1[i]
		case 3:
			key = keyBase | uint64(c0[i]) | uint64(c1[i])<<CoordBits | uint64(c2[i])<<(2*CoordBits)
			m = v0[i] + v1[i] + v2[i]
		default:
			key = keyBase
			for j := 0; j < k; j++ {
				key |= uint64(coordCols[j][i]) << (uint(j) * CoordBits)
				m += valCols[j][i]
			}
		}
		keys[i] = key
		mags[i] = m
		var slot uint32
		if key == prevKey {
			// Clustered streams land consecutive points in the same
			// cell about as often as the densest cluster recurs; the
			// repeat skips the probe entirely.
			slot = prevSlot
		} else if buckets == nil {
			slot = t.GetSlot(key, tick)
			buckets = t.buckets
			cells = t.cells
			mask = uint64(len(buckets) - 1)
			shift = t.shift
		} else {
			j := cellHash(key) >> shift
			for {
				b := buckets[j]
				if b.key == key && b.ref != 0 {
					slot = b.ref - 1
					break
				}
				if b.ref == 0 {
					slot = t.GetSlot(key, tick)
					buckets = t.buckets
					cells = t.cells
					mask = uint64(len(buckets) - 1)
					shift = t.shift
					break
				}
				j = (j + 1) & mask
			}
		}
		prevKey, prevSlot = key, slot
		// The body of PCS.Touch, inlined.
		p := &cells[slot]
		if p.Last != tick {
			f := d.At(tick - p.Last)
			p.Dc *= f
			p.S *= f
			p.Q *= f
			p.Last = tick
		}
		p.Dc++
		p.S += m
		p.Q += m * m
		ss[i] = p.S
		dcs[i] = p.Dc
	}
}

// AssembleCols is the key-assembly stage of TouchCols factored out for
// the coalesced batch path: one call packs every point of a batch into
// its cell key under the subspace whose packed key base is keyBase, and
// sums its projected magnitude, from the member dimensions' transposed
// columns (entry i of column j is point i's interval index / raw value
// in member dimension j). Keys land in keys and magnitudes in mags
// (both len ≥ the column length). The caller then groups keys by cell
// (Grouper) and folds each run with TouchRuns — where the fused
// TouchCols probes the index once per point, this split probes once per
// distinct cell. Zero heap allocations.
func AssembleCols(keyBase uint64, coordCols [][]uint8, valCols [][]float64, keys []uint64, mags []float64) {
	k := len(coordCols)
	c0 := coordCols[0]
	n := len(c0)
	v0 := valCols[0][:n]
	var c1, c2 []uint8
	var v1, v2 []float64
	if k >= 2 {
		c1, v1 = coordCols[1][:n], valCols[1][:n]
	}
	if k >= 3 {
		c2, v2 = coordCols[2][:n], valCols[2][:n]
	}
	keys = keys[:n]
	mags = mags[:n]
	// The arity switch is loop-invariant (see TouchCols); arities 1–3
	// assemble with constant shifts.
	switch k {
	case 1:
		for i := 0; i < n; i++ {
			keys[i] = keyBase | uint64(c0[i])
			mags[i] = v0[i]
		}
	case 2:
		for i := 0; i < n; i++ {
			keys[i] = keyBase | uint64(c0[i]) | uint64(c1[i])<<CoordBits
			mags[i] = v0[i] + v1[i]
		}
	case 3:
		for i := 0; i < n; i++ {
			keys[i] = keyBase | uint64(c0[i]) | uint64(c1[i])<<CoordBits | uint64(c2[i])<<(2*CoordBits)
			mags[i] = v0[i] + v1[i] + v2[i]
		}
	default:
		for i := 0; i < n; i++ {
			key := keyBase
			var m float64
			for j := 0; j < k; j++ {
				key |= uint64(coordCols[j][i]) << (uint(j) * CoordBits)
				m += valCols[j][i]
			}
			keys[i] = key
			mags[i] = m
		}
	}
}

// TouchRuns is the coalesced counterpart of TouchCols: the caller has
// already assembled the batch's cell keys for one subspace
// (AssembleCols) and grouped them into per-cell runs (Grouper.Group);
// TouchRuns probes the index once per distinct cell and folds that
// cell's whole run — point i touches at tick t0+i+1 with magnitude
// mags[i] — with the summary held in registers across the run (the body
// of PCS.TouchRun, inlined). Post-touch magnitude sums and densities
// land in ss[i]/dcs[i] at the run positions, so the caller's verdict
// pass reads the exact per-point trajectory of the pointwise path:
// within a cell the ticks fold in increasing order and across cells the
// summaries share no state, which is the whole bit-identical argument.
// Runs of a dense stream average many points per cell, so the per-point
// cost drops to the fold itself; misses and rehash-in-flight lookups
// fall back to GetSlot as in TouchCols. Zero heap allocations when
// every cell exists.
func (t *PCSTable) TouchRuns(d *DecayTable, t0 uint64, g *Grouper, mags, ss, dcs []float64) {
	buckets := t.buckets
	cells := t.cells
	var mask uint64
	var shift uint
	if buckets != nil {
		mask = uint64(len(buckets) - 1)
		shift = t.shift
	}
	for gi := range g.keys {
		key := g.keys[gi]
		first := g.head[gi]
		tick0 := t0 + uint64(first) + 1
		var slot uint32
		if buckets == nil {
			slot = t.GetSlot(key, tick0)
			buckets = t.buckets
			cells = t.cells
			mask = uint64(len(buckets) - 1)
			shift = t.shift
		} else {
			j := cellHash(key) >> shift
			for {
				b := buckets[j]
				if b.key == key && b.ref != 0 {
					slot = b.ref - 1
					break
				}
				if b.ref == 0 {
					slot = t.GetSlot(key, tick0)
					buckets = t.buckets
					cells = t.cells
					mask = uint64(len(buckets) - 1)
					shift = t.shift
					break
				}
				j = (j + 1) & mask
			}
		}
		// The body of PCS.TouchRun, inlined: the cell is loaded and
		// stored once per run instead of once per point.
		p := &cells[slot]
		dc, sv, q, last := p.Dc, p.S, p.Q, p.Last
		for i := first; i >= 0; i = g.next[i] {
			tick := t0 + uint64(i) + 1
			if last != tick {
				f := d.At(tick - last)
				dc *= f
				sv *= f
				q *= f
				last = tick
			}
			m := mags[i]
			dc++
			sv += m
			q += m * m
			ss[i] = sv
			dcs[i] = dc
		}
		p.Dc, p.S, p.Q, p.Last = dc, sv, q, last
	}
}

// At returns the key and summary at dense position i (0 ≤ i < Len).
// Positions are stable between sweeps but not across them.
func (t *PCSTable) At(i int) (uint64, *PCS) { return t.keys[i], &t.cells[i] }

// oaFind probes one bucket array for key, returning its dense slot.
func oaFind(buckets []oaBucket, shift uint, key uint64) (uint32, bool) {
	mask := uint64(len(buckets) - 1)
	for i := cellHash(key) >> shift; ; i = (i + 1) & mask {
		b := buckets[i]
		if b.key == key && b.ref != 0 {
			return b.ref - 1, true
		}
		if b.ref == 0 {
			return 0, false
		}
	}
}

// oaPlace inserts a bucket for a key known to be absent: probe to the
// first empty bucket.
func oaPlace(buckets []oaBucket, shift uint, key uint64, slot uint32) {
	mask := uint64(len(buckets) - 1)
	i := cellHash(key) >> shift
	for buckets[i].ref != 0 {
		i = (i + 1) & mask
	}
	buckets[i] = oaBucket{key: key, ref: slot + 1}
}

// insert indexes a freshly appended dense slot, growing and migrating
// as needed. Called after the append, so the live-array occupancy
// before this insert is len(cells)-1 minus whatever still sits in old.
func (t *PCSTable) insert(key uint64, slot uint32) {
	if len(t.cells)-1-t.oldLeft >= t.grow {
		t.growBuckets()
	}
	oaPlace(t.buckets, t.shift, key, slot)
	if t.old != nil {
		t.migrate(oaMigrateStride)
	}
}

// growBuckets doubles the bucket array (or allocates the initial one)
// and arms the incremental rehash. A rehash still in flight is drained
// first so at most two bucket arrays ever exist.
func (t *PCSTable) growBuckets() {
	if t.old != nil {
		t.migrate(len(t.old))
	}
	if t.buckets == nil {
		t.buckets = make([]oaBucket, oaMinBuckets)
		t.shift = 64 - uint(bits.TrailingZeros(oaMinBuckets))
	} else {
		t.old = t.buckets
		t.oldShift = t.shift
		t.oldLeft = len(t.cells) - 1
		// Start the migration cursor at an empty bucket so cluster-at-
		// a-time draining never splits a probe chain that wraps the
		// array end.
		t.scan = 0
		for t.old[t.scan].ref != 0 {
			t.scan++
		}
		t.buckets = make([]oaBucket, 2*len(t.old))
		t.shift--
		if t.oldLeft == 0 {
			t.old = nil
		}
	}
	// 3/4 load before doubling: measured against 7/8 on the d=20
	// benchmark table, the shorter probe chains beat the smaller
	// array.
	t.grow = len(t.buckets) * 3 / 4
}

// migrate drains up to stride old-array buckets into the live array.
// Entries move a whole probe cluster (maximal run of occupied buckets)
// at a time: every entry's home bucket lies within its cluster, so
// zeroing a complete cluster can never make a later probe for a
// not-yet-migrated key stop early, and lookups always consult the live
// array first for the keys already moved.
func (t *PCSTable) migrate(stride int) {
	if t.old == nil {
		return
	}
	mask := uint64(len(t.old) - 1)
	for t.oldLeft > 0 && stride > 0 {
		t.scan = (t.scan + 1) & mask
		stride--
		for t.old[t.scan].ref != 0 {
			b := t.old[t.scan]
			t.old[t.scan] = oaBucket{}
			oaPlace(t.buckets, t.shift, b.key, b.ref-1)
			t.oldLeft--
			t.scan = (t.scan + 1) & mask
			stride--
		}
	}
	if t.oldLeft == 0 {
		t.old = nil
	}
}

// unindex removes key's bucket with the standard linear-probing
// backward-shift deletion, so probe chains stay dense and no tombstones
// accumulate across epochs of eviction churn. Deletions interleaved
// with a rehash first drain it — deletes only come from the linear
// Sweep/EvictIf scans, which dwarf the remaining migration anyway.
func (t *PCSTable) unindex(key uint64) {
	if t.old != nil {
		t.migrate(len(t.old))
	}
	mask := uint64(len(t.buckets) - 1)
	i := cellHash(key) >> t.shift
	for !(t.buckets[i].key == key && t.buckets[i].ref != 0) {
		i = (i + 1) & mask
	}
	for {
		t.buckets[i] = oaBucket{}
		j := i
		for {
			j = (j + 1) & mask
			b := t.buckets[j]
			if b.ref == 0 {
				return
			}
			// The entry at j may slide back into the hole at i only if
			// its home bucket is cyclically outside (i, j] — otherwise
			// the move would detach it from its probe chain.
			if h := cellHash(b.key) >> t.shift; (j-h)&mask >= (j-i)&mask {
				t.buckets[i] = b
				i = j
				break
			}
		}
	}
}

// reslot repoints the bucket of key at a new dense slot (after a
// swap-remove moved it). Only called with no rehash in flight — unindex
// runs first in removeAt and drains any.
func (t *PCSTable) reslot(key uint64, slot uint32) {
	mask := uint64(len(t.buckets) - 1)
	for i := cellHash(key) >> t.shift; ; i = (i + 1) & mask {
		if b := t.buckets[i]; b.key == key && b.ref != 0 {
			t.buckets[i].ref = slot + 1
			return
		}
	}
}

// removeAt evicts the cell at dense position i by swap-remove: the
// last cell takes the freed slot and its bucket is repointed, so
// compaction is O(1) with no tombstones in the dense slices either.
func (t *PCSTable) removeAt(i int) {
	t.unindex(t.keys[i])
	last := len(t.cells) - 1
	if i != last {
		t.reslot(t.keys[last], uint32(i))
		t.cells[i] = t.cells[last]
		t.keys[i] = t.keys[last]
	}
	t.cells = t.cells[:last]
	t.keys = t.keys[:last]
}

// Sweep visits every cell once, evicting those whose decayed density at
// tick has fallen below eps and calling visit(key, dc) for each
// survivor with its decayed density. Eviction is a swap-remove, so the
// scan is O(cells) with no allocation. Returns the number of cells
// evicted.
func (t *PCSTable) Sweep(d *DecayTable, tick uint64, eps float64, visit func(key uint64, dc float64)) int {
	evicted := 0
	for i := 0; i < len(t.cells); {
		dc := t.cells[i].DcAt(d, tick)
		if dc < eps {
			t.removeAt(i)
			evicted++
			continue // the swapped-in cell now sits at i; revisit it
		}
		if visit != nil {
			visit(t.keys[i], dc)
		}
		i++
	}
	return evicted
}

// EvictIf removes every cell whose key matches pred and returns how
// many were removed. Same swap-remove compaction as Sweep; used to
// purge all cells of a subspace demoted from the SST so its ID can be
// reused without ghost summaries.
func (t *PCSTable) EvictIf(pred func(key uint64) bool) int {
	evicted := 0
	for i := 0; i < len(t.cells); {
		if !pred(t.keys[i]) {
			i++
			continue
		}
		t.removeAt(i)
		evicted++
	}
	return evicted
}

// MapPCSTable is the previous, Go-map-indexed projected-cell table,
// kept as the differential-testing oracle for PCSTable: same dense
// keys/cells layout and identical Get/At/Sweep/EvictIf semantics, with
// the index maintenance delegated to a map[uint64]uint32. The
// randomized table property test drives both implementations through
// interleaved operation sequences and requires identical observable
// state; the microbenchmarks use it as the perf reference the
// open-addressed index is measured against.
type MapPCSTable struct {
	index map[uint64]uint32
	keys  []uint64
	cells []PCS
}

// NewMapPCSTable returns an empty map-indexed oracle table.
func NewMapPCSTable() *MapPCSTable {
	return &MapPCSTable{index: make(map[uint64]uint32)}
}

// Len returns the number of populated cells in the table.
func (t *MapPCSTable) Len() int { return len(t.cells) }

// Get returns the summary for the cell key, creating an empty summary
// stamped at tick if the cell was not yet populated; same contract as
// PCSTable.Get.
func (t *MapPCSTable) Get(key uint64, tick uint64) *PCS {
	if i, ok := t.index[key]; ok {
		return &t.cells[i]
	}
	i := uint32(len(t.cells))
	t.cells = append(t.cells, PCS{Last: tick})
	t.keys = append(t.keys, key)
	t.index[key] = i
	return &t.cells[i]
}

// At returns the key and summary at dense position i (0 ≤ i < Len).
func (t *MapPCSTable) At(i int) (uint64, *PCS) { return t.keys[i], &t.cells[i] }

// removeAt evicts the cell at dense position i by swap-remove.
func (t *MapPCSTable) removeAt(i int) {
	last := len(t.cells) - 1
	delete(t.index, t.keys[i])
	if i != last {
		t.cells[i] = t.cells[last]
		t.keys[i] = t.keys[last]
		t.index[t.keys[i]] = uint32(i)
	}
	t.cells = t.cells[:last]
	t.keys = t.keys[:last]
}

// Sweep visits every cell once, evicting below-eps cells; same contract
// as PCSTable.Sweep.
func (t *MapPCSTable) Sweep(d *DecayTable, tick uint64, eps float64, visit func(key uint64, dc float64)) int {
	evicted := 0
	for i := 0; i < len(t.cells); {
		dc := t.cells[i].DcAt(d, tick)
		if dc < eps {
			t.removeAt(i)
			evicted++
			continue
		}
		if visit != nil {
			visit(t.keys[i], dc)
		}
		i++
	}
	return evicted
}

// EvictIf removes every cell whose key matches pred; same contract as
// PCSTable.EvictIf.
func (t *MapPCSTable) EvictIf(pred func(key uint64) bool) int {
	evicted := 0
	for i := 0; i < len(t.cells); {
		if !pred(t.keys[i]) {
			i++
			continue
		}
		t.removeAt(i)
		evicted++
	}
	return evicted
}

// BCSTable stores the Base Cell Summaries of the full d-dimensional
// space, keyed by the point's interval-index vector. Touch is
// allocation-free for existing cells (the compiler elides the string
// conversion used as a map index); only inserting a new cell
// materializes the key. Not safe for concurrent use; the detector's
// dispatcher goroutine owns it exclusively.
type BCSTable struct {
	dims  int
	cells map[string]*BCS
}

// NewBCSTable returns an empty base-cell table for a d-dimensional
// space.
func NewBCSTable(d int) *BCSTable {
	return &BCSTable{dims: d, cells: make(map[string]*BCS)}
}

// Len returns the number of populated base cells.
func (t *BCSTable) Len() int { return len(t.cells) }

// Touch folds point (length d), whose per-dimension interval indices
// are in coords, into its base cell at tick.
func (t *BCSTable) Touch(d *DecayTable, tick uint64, coords []uint8, point []float64) {
	b, ok := t.cells[string(coords)]
	if !ok {
		b = NewBCS(t.dims)
		b.Last = tick
		t.cells[string(coords)] = b
	}
	b.Touch(d, tick, point)
}

// Sweep visits every base cell once, evicting those whose decayed
// density at tick has fallen below eps and calling visit(key, b, dc)
// for each survivor with its summary and decayed density. key is the
// cell's interval-index vector as an immutable string (one byte per
// dimension) — callers needing a mutable copy convert it themselves,
// so the common no-collect sweep allocates nothing. Returns the number
// of cells evicted.
func (t *BCSTable) Sweep(d *DecayTable, tick uint64, eps float64, visit func(key string, b *BCS, dc float64)) int {
	evicted := 0
	for key, b := range t.cells {
		dc := b.DcAt(d, tick)
		if dc < eps {
			delete(t.cells, key)
			evicted++
			continue
		}
		if visit != nil {
			visit(key, b, dc)
		}
	}
	return evicted
}
