package core

// Summary tables with epoch-sweep support. The streaming hot path only
// ever touches one cell per subspace per point, so lazy decay keeps
// ingestion cost independent of table size — but it also means a cell
// abandoned by a drifting stream is never visited again and its
// near-zero summary lingers forever. The tables below add the missing
// half of the lifecycle: a periodic sweep that visits every summary
// once per epoch, evicts the ones whose decayed weight has fallen below
// a floor ε, and hands every survivor to a caller-supplied visitor so
// the same scan can feed density accounting and SST evolution without a
// second pass over the data.

// PCSTable stores the Projected Cell Summaries of one shard: a packed
// cell-key index over a dense slice of PCS records. The dense layout is
// what makes the epoch sweep a linear scan instead of a map iteration,
// and eviction a swap-remove instead of a tombstone. Not safe for
// concurrent use; each detector shard owns exactly one table.
type PCSTable struct {
	index map[uint64]uint32
	keys  []uint64
	cells []PCS
}

// NewPCSTable returns an empty table.
func NewPCSTable() *PCSTable {
	return &PCSTable{index: make(map[uint64]uint32)}
}

// Len returns the number of populated cells in the table.
func (t *PCSTable) Len() int { return len(t.cells) }

// Get returns the summary for the cell key, creating an empty summary
// stamped at tick if the cell was not yet populated. The returned
// pointer is invalidated by the next Get that inserts or the next
// Sweep; hot loops use it immediately and never retain it.
func (t *PCSTable) Get(key uint64, tick uint64) *PCS {
	if i, ok := t.index[key]; ok {
		return &t.cells[i]
	}
	i := uint32(len(t.cells))
	t.cells = append(t.cells, PCS{Last: tick})
	t.keys = append(t.keys, key)
	t.index[key] = i
	return &t.cells[i]
}

// At returns the key and summary at dense position i (0 ≤ i < Len).
// Positions are stable between sweeps but not across them.
func (t *PCSTable) At(i int) (uint64, *PCS) { return t.keys[i], &t.cells[i] }

// removeAt evicts the cell at dense position i by swap-remove: the
// last cell takes the freed slot and the key index is repointed, so
// compaction is O(1) with no tombstones.
func (t *PCSTable) removeAt(i int) {
	last := len(t.cells) - 1
	delete(t.index, t.keys[i])
	if i != last {
		t.cells[i] = t.cells[last]
		t.keys[i] = t.keys[last]
		t.index[t.keys[i]] = uint32(i)
	}
	t.cells = t.cells[:last]
	t.keys = t.keys[:last]
}

// Sweep visits every cell once, evicting those whose decayed density at
// tick has fallen below eps and calling visit(key, dc) for each
// survivor with its decayed density. Eviction is a swap-remove, so the
// scan is O(cells) with no allocation. Returns the number of cells
// evicted.
func (t *PCSTable) Sweep(d *DecayTable, tick uint64, eps float64, visit func(key uint64, dc float64)) int {
	evicted := 0
	for i := 0; i < len(t.cells); {
		dc := t.cells[i].DcAt(d, tick)
		if dc < eps {
			t.removeAt(i)
			evicted++
			continue // the swapped-in cell now sits at i; revisit it
		}
		if visit != nil {
			visit(t.keys[i], dc)
		}
		i++
	}
	return evicted
}

// EvictIf removes every cell whose key matches pred and returns how
// many were removed. Same swap-remove compaction as Sweep; used to
// purge all cells of a subspace demoted from the SST so its ID can be
// reused without ghost summaries.
func (t *PCSTable) EvictIf(pred func(key uint64) bool) int {
	evicted := 0
	for i := 0; i < len(t.cells); {
		if !pred(t.keys[i]) {
			i++
			continue
		}
		t.removeAt(i)
		evicted++
	}
	return evicted
}

// BCSTable stores the Base Cell Summaries of the full d-dimensional
// space, keyed by the point's interval-index vector. Touch is
// allocation-free for existing cells (the compiler elides the string
// conversion used as a map index); only inserting a new cell
// materializes the key. Not safe for concurrent use; the detector's
// dispatcher goroutine owns it exclusively.
type BCSTable struct {
	dims  int
	cells map[string]*BCS
}

// NewBCSTable returns an empty base-cell table for a d-dimensional
// space.
func NewBCSTable(d int) *BCSTable {
	return &BCSTable{dims: d, cells: make(map[string]*BCS)}
}

// Len returns the number of populated base cells.
func (t *BCSTable) Len() int { return len(t.cells) }

// Touch folds point (length d), whose per-dimension interval indices
// are in coords, into its base cell at tick.
func (t *BCSTable) Touch(d *DecayTable, tick uint64, coords []uint8, point []float64) {
	b, ok := t.cells[string(coords)]
	if !ok {
		b = NewBCS(t.dims)
		b.Last = tick
		t.cells[string(coords)] = b
	}
	b.Touch(d, tick, point)
}

// Sweep visits every base cell once, evicting those whose decayed
// density at tick has fallen below eps and calling visit(key, b, dc)
// for each survivor with its summary and decayed density. key is the
// cell's interval-index vector as an immutable string (one byte per
// dimension) — callers needing a mutable copy convert it themselves,
// so the common no-collect sweep allocates nothing. Returns the number
// of cells evicted.
func (t *BCSTable) Sweep(d *DecayTable, tick uint64, eps float64, visit func(key string, b *BCS, dc float64)) int {
	evicted := 0
	for key, b := range t.cells {
		dc := b.DcAt(d, tick)
		if dc < eps {
			delete(t.cells, key)
			evicted++
			continue
		}
		if visit != nil {
			visit(key, b, dc)
		}
	}
	return evicted
}
