package core

import (
	"math/rand"
	"testing"
)

// TestGrouperPartitions drives Group over randomized key batches and
// checks the run invariants the coalesced fold depends on: every batch
// position appears in exactly one run, each run's positions share one
// key and come back in increasing batch order, and distinct keys map to
// distinct groups. Batch sizes vary across calls to exercise scratch
// reuse and the index resize path.
func TestGrouperPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var g Grouper
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(700)
		span := 1 + rng.Intn(2*n) // small span → heavy duplication, large → mostly unique
		keys := make([]uint64, n)
		for i := range keys {
			// Realistic keys: high subspace-ID bits plus low coordinate
			// bytes, including key 0.
			keys[i] = uint64(rng.Intn(3))<<SubspaceShift | uint64(rng.Intn(span))
		}
		g.Group(keys)

		distinct := map[uint64]bool{}
		for _, k := range keys {
			distinct[k] = true
		}
		if g.Groups() != len(distinct) {
			t.Fatalf("trial %d: %d groups, want %d distinct keys", trial, g.Groups(), len(distinct))
		}
		seen := make([]bool, n)
		for gi := 0; gi < g.Groups(); gi++ {
			key := g.Key(gi)
			prev := -1
			for i := g.First(gi); i >= 0; i = g.Next(i) {
				if keys[i] != key {
					t.Fatalf("trial %d: position %d (key %x) chained into group of key %x", trial, i, keys[i], key)
				}
				if i <= prev {
					t.Fatalf("trial %d: run of key %x visits %d after %d — not in batch order", trial, key, i, prev)
				}
				if seen[i] {
					t.Fatalf("trial %d: position %d visited twice", trial, i)
				}
				seen[i] = true
				prev = i
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("trial %d: position %d missing from every run", trial, i)
			}
		}
	}
}

// TestGrouperZeroAllocs pins the scratch contract: regrouping batches
// of the same size allocates nothing.
func TestGrouperZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var g Grouper
	keys := make([]uint64, 512)
	fill := func() {
		for i := range keys {
			keys[i] = uint64(rng.Intn(64))
		}
	}
	fill()
	g.Group(keys) // size the scratch
	allocs := testing.AllocsPerRun(20, func() {
		fill()
		g.Group(keys)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Group allocates %.1f times per call, want 0", allocs)
	}
}
