package core

import "testing"

// TestPCSTableSweepEvicts checks the swap-remove sweep: decayed cells
// below ε vanish, survivors keep their summaries, and the key index
// stays consistent after compaction.
func TestPCSTableSweepEvicts(t *testing.T) {
	decay := NewDecayTable(0.01)
	tbl := NewPCSTable()
	// Three cells touched at tick 1, one kept warm at tick 5000.
	for _, key := range []uint64{10, 20, 30} {
		tbl.Get(key, 1).Touch(decay, 1, 0.5)
	}
	tbl.Get(20, 1).Touch(decay, 5000, 0.5)

	visited := map[uint64]float64{}
	evicted := tbl.Sweep(decay, 5000, 1e-4, func(key uint64, dc float64) {
		visited[key] = dc
	})
	if evicted != 2 {
		t.Fatalf("evicted %d cells, want 2", evicted)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d after sweep, want 1", tbl.Len())
	}
	if _, ok := visited[20]; !ok || len(visited) != 1 {
		t.Fatalf("survivors = %v, want only key 20", visited)
	}
	// The survivor must still be reachable through the index.
	p := tbl.Get(20, 5000)
	if p.Dc < 1 {
		t.Fatalf("survivor summary lost: Dc = %g", p.Dc)
	}
}

// TestPCSTableSweepCompaction stresses swap-remove with interleaved
// dead/live cells so the swapped-in cell at each eviction slot is
// itself inspected.
func TestPCSTableSweepCompaction(t *testing.T) {
	decay := NewDecayTable(0.01)
	tbl := NewPCSTable()
	const n = 100
	for i := uint64(0); i < n; i++ {
		tick := uint64(1)
		if i%3 == 0 {
			tick = 4000 // every third cell stays warm
		}
		tbl.Get(i, tick).Touch(decay, tick, 1)
	}
	live := 0
	tbl.Sweep(decay, 4000, 1e-4, func(key uint64, dc float64) {
		if key%3 != 0 {
			t.Fatalf("cold cell %d survived the sweep", key)
		}
		live++
	})
	if want := (n + 2) / 3; live != want || tbl.Len() != want {
		t.Fatalf("live = %d, Len = %d, want %d", live, tbl.Len(), want)
	}
	for i := uint64(0); i < n; i += 3 {
		if p := tbl.Get(i, 4000); p.Dc == 0 {
			t.Fatalf("warm cell %d lost its summary after compaction", i)
		}
	}
}

// TestBCSTableSweep checks base-cell eviction and that survivors are
// reported with a usable copy of their interval-index coordinates.
func TestBCSTableSweep(t *testing.T) {
	decay := NewDecayTable(0.01)
	tbl := NewBCSTable(3)
	tbl.Touch(decay, 1, []uint8{1, 2, 3}, []float64{0.1, 0.2, 0.3})
	tbl.Touch(decay, 4000, []uint8{4, 5, 6}, []float64{0.4, 0.5, 0.6})
	var got string
	evicted := tbl.Sweep(decay, 4000, 1e-4, func(key string, b *BCS, dc float64) {
		got = key
		if dc < 0.9 {
			t.Fatalf("warm cell reported with dc = %g", dc)
		}
	})
	if evicted != 1 || tbl.Len() != 1 {
		t.Fatalf("evicted = %d, Len = %d, want 1 and 1", evicted, tbl.Len())
	}
	if got != string([]uint8{4, 5, 6}) {
		t.Fatalf("survivor coords = %v, want [4 5 6]", []byte(got))
	}
}
