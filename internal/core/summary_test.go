package core

import (
	"math"
	"testing"
)

// TestPCSDecayClosedForm drives a PCS through irregular touch times and
// checks that the lazily-decayed density matches the closed form
// Σ 2^(-λ(T-tᵢ)) over all touch ticks tᵢ.
func TestPCSDecayClosedForm(t *testing.T) {
	const lambda = 0.01
	table := NewDecayTable(lambda)
	ticks := []uint64{1, 2, 5, 9, 40, 41, 100, 700}
	mags := []float64{1.5, -0.5, 2, 0, 3, 1, -2, 0.25}

	var p PCS
	p.Last = ticks[0]
	for i, tk := range ticks {
		p.Touch(table, tk, mags[i])
	}
	const T = 1000
	wantDc, wantS, wantQ := 0.0, 0.0, 0.0
	for i, tk := range ticks {
		w := math.Exp2(-lambda * float64(T-tk))
		wantDc += w
		wantS += w * mags[i]
		wantQ += w * mags[i] * mags[i]
	}
	if got := p.DcAt(table, T); math.Abs(got-wantDc) > 1e-9 {
		t.Errorf("DcAt(T) = %.12f, want %.12f", got, wantDc)
	}
	// Bring the summary current at T via a zero-weight read path:
	// decay factors compose, so S and Q at T must also match.
	d := table.At(T - p.Last)
	if got := p.S * d; math.Abs(got-wantS) > 1e-9 {
		t.Errorf("S at T = %.12f, want %.12f", got, wantS)
	}
	if got := p.Q * d; math.Abs(got-wantQ) > 1e-9 {
		t.Errorf("Q at T = %.12f, want %.12f", got, wantQ)
	}
}

func TestDecayTableMatchesExp2(t *testing.T) {
	const lambda = 0.003
	table := NewDecayTable(lambda)
	for _, dt := range []uint64{0, 1, 2, 63, 64, 65, 1000, 1 << 20} {
		want := math.Exp2(-lambda * float64(dt))
		if got := table.At(dt); math.Abs(got-want) > 1e-15 {
			t.Errorf("At(%d) = %v, want %v", dt, got, want)
		}
	}
	if Decay(lambda, 0) != 1 {
		t.Error("Decay(·,0) != 1")
	}
	if table.Lambda() != lambda {
		t.Errorf("Lambda() = %v", table.Lambda())
	}
}

func TestPCSMoments(t *testing.T) {
	table := NewDecayTable(0.01)
	var p PCS
	p.Last = 5
	// All touches at the same tick: no decay, plain sample moments.
	for _, m := range []float64{1, 2, 3} {
		p.Touch(table, 5, m)
	}
	if got := p.Mean(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %v, want 2", got)
	}
	want := math.Sqrt(2.0 / 3.0) // population std of {1,2,3}
	if got := p.Sigma(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Sigma = %v, want %v", got, want)
	}
	var empty PCS
	if empty.Mean() != 0 || empty.Sigma() != 0 {
		t.Error("empty PCS moments not zero")
	}
}

// TestBCSDecayClosedForm checks the per-dimension linear sums decay to
// the closed-form weighted sum, and the centroid is their ratio.
func TestBCSDecayClosedForm(t *testing.T) {
	const lambda = 0.02
	table := NewDecayTable(lambda)
	points := [][]float64{{1, 10}, {2, 20}, {3, 30}}
	ticks := []uint64{3, 50, 51}

	b := NewBCS(2)
	b.Last = ticks[0]
	for i, pt := range points {
		b.Touch(table, ticks[i], pt)
	}
	T := ticks[len(ticks)-1]
	wantDc := 0.0
	wantLS := []float64{0, 0}
	for i, tk := range ticks {
		w := math.Exp2(-lambda * float64(T-tk))
		wantDc += w
		for j := range wantLS {
			wantLS[j] += w * points[i][j]
		}
	}
	if math.Abs(b.Dc-wantDc) > 1e-9 {
		t.Errorf("Dc = %.12f, want %.12f", b.Dc, wantDc)
	}
	cent := make([]float64, 2)
	b.Centroid(cent)
	for j := range cent {
		if want := wantLS[j] / wantDc; math.Abs(cent[j]-want) > 1e-9 {
			t.Errorf("Centroid[%d] = %.12f, want %.12f", j, cent[j], want)
		}
	}
	var zero BCS
	zero.LS = make([]float64, 2)
	zero.Centroid(cent)
	if cent[0] != 0 || cent[1] != 0 {
		t.Error("empty BCS centroid not zero")
	}
}
