package core

import (
	"math/rand"
	"testing"
)

// benchKeys builds a realistic working set: n cell keys spread over a
// few hundred subspaces, visited in shuffled order so the benchmark
// pays real cache misses rather than streaming the dense slices.
func benchKeys(n int) []uint64 {
	rng := rand.New(rand.NewSource(7))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = EncodeCell(uint32(i%1350), []uint8{uint8(i / 1350 % 8), uint8(i / 10800 % 8), uint8(rng.Intn(8))})
	}
	rng.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	return keys
}

// benchTableSize matches the d=20 spotbench working set (~28k cells).
const benchTableSize = 28000

// BenchmarkPCSTableGet measures a hot-path hit on the open-addressed
// table: the one operation every point pays once per SST subspace.
func BenchmarkPCSTableGet(b *testing.B) {
	keys := benchKeys(benchTableSize)
	tbl := NewPCSTable()
	for _, k := range keys {
		tbl.Get(k, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Get(keys[i%len(keys)], 1)
	}
}

// BenchmarkMapPCSTableGet is the map-oracle reference for
// BenchmarkPCSTableGet.
func BenchmarkMapPCSTableGet(b *testing.B) {
	keys := benchKeys(benchTableSize)
	tbl := NewMapPCSTable()
	for _, k := range keys {
		tbl.Get(k, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Get(keys[i%len(keys)], 1)
	}
}

// BenchmarkPCSTableTouch measures the full cell update a point pays per
// subspace: index hit plus decayed-summary fold.
func BenchmarkPCSTableTouch(b *testing.B) {
	keys := benchKeys(benchTableSize)
	decay := NewDecayTable(0.002)
	tbl := NewPCSTable()
	for _, k := range keys {
		tbl.Get(k, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Get(keys[i%len(keys)], 1).Touch(decay, uint64(i)+1, 0.5)
	}
}

// BenchmarkMapPCSTableTouch is the map-oracle reference for
// BenchmarkPCSTableTouch.
func BenchmarkMapPCSTableTouch(b *testing.B) {
	keys := benchKeys(benchTableSize)
	decay := NewDecayTable(0.002)
	tbl := NewMapPCSTable()
	for _, k := range keys {
		tbl.Get(k, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Get(keys[i%len(keys)], 1).Touch(decay, uint64(i)+1, 0.5)
	}
}

// BenchmarkPCSTableInsertEvict measures the churn cycle of a drifting
// stream: fill a table and sweep-evict everything, repeatedly, paying
// growth, incremental rehash and backward-shift deletion.
func BenchmarkPCSTableInsertEvict(b *testing.B) {
	keys := benchKeys(benchTableSize / 4)
	decay := NewDecayTable(0.01)
	tbl := NewPCSTable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		tbl.Get(k, uint64(i)+1).Touch(decay, uint64(i)+1, 0.5)
		if i%len(keys) == len(keys)-1 {
			tbl.Sweep(decay, uint64(i)+100000, 1e-4, nil)
		}
	}
}

// BenchmarkPCSTableSweep measures the no-eviction epoch scan over the
// dense slices — the per-epoch pause floor.
func BenchmarkPCSTableSweep(b *testing.B) {
	keys := benchKeys(benchTableSize)
	decay := NewDecayTable(0.002)
	tbl := NewPCSTable()
	for i, k := range keys {
		tbl.Get(k, uint64(i)+1).Touch(decay, uint64(i)+1, 0.5)
	}
	tick := uint64(len(keys) + 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Sweep(decay, tick, 0, nil)
	}
}

// BenchmarkMapPCSTableSweep is the map-oracle reference for
// BenchmarkPCSTableSweep (the dense scan is shared; the difference is
// noise, tracked to keep the comparison honest).
func BenchmarkMapPCSTableSweep(b *testing.B) {
	keys := benchKeys(benchTableSize)
	decay := NewDecayTable(0.002)
	tbl := NewMapPCSTable()
	for i, k := range keys {
		tbl.Get(k, uint64(i)+1).Touch(decay, uint64(i)+1, 0.5)
	}
	tick := uint64(len(keys) + 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Sweep(decay, tick, 0, nil)
	}
}

// TestPCSTableGetZeroAllocs pins the steady-state contract the hot path
// depends on: Get on an existing cell performs zero heap allocations.
// make microbench runs this gate alongside the benchmarks.
func TestPCSTableGetZeroAllocs(t *testing.T) {
	keys := benchKeys(benchTableSize)
	decay := NewDecayTable(0.002)
	tbl := NewPCSTable()
	for _, k := range keys {
		tbl.Get(k, 1)
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		tbl.Get(keys[i%len(keys)], 1).Touch(decay, 1, 0.5)
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get+Touch allocates %.1f times per op, want 0", allocs)
	}
}
