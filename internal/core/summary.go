package core

import "math"

// decayWeight is the one primitive every fading weight in the engine
// derives from: 2^(-lambda*dt) evaluated as math.Exp2 over the exact
// float64 product. Decay, the DecayTable entries and the DecayTable's
// past-the-table fallback all call it, so a gap computed from table
// entries and the same gap computed by the fallback can never diverge
// by more than Exp2's own rounding — there is no second formula to
// drift against. (Exp2(-0) is exactly 1, so dt == 0 needs no special
// case.)
func decayWeight(lambda float64, dt uint64) float64 {
	return math.Exp2(-lambda * float64(dt))
}

// Decay returns the exponential fading weight 2^(-lambda*dt) applied to
// a summary that was last touched dt ticks ago. lambda is the fading
// factor λ of the paper; larger λ forgets the past faster. The
// effective window size (total decayed weight of an infinite uniform
// stream) is 1/(1-2^-λ).
func Decay(lambda float64, dt uint64) float64 {
	return decayWeight(lambda, dt)
}

// decayTableSize covers the gaps between touches of recurring
// summaries; larger gaps fall back to math.Exp2. Subspace totals are
// touched every tick, but individual cells of a subspace with c
// populated cells recur every ~c ticks — profiles showed the old
// 64-entry table pushing a large share of cell touches onto the
// transcendental fallback, so the table spans 4096 ticks (32 KiB,
// shared read-only across shards; the hot prefix stays cached).
const decayTableSize = 4096

// DecayTable memoizes Decay(lambda, dt) for small dt. Subspace totals
// are touched every tick (dt==1) and hot cells every few ticks, so the
// table turns the hot path's transcendental call into an array load.
// It is immutable after construction and safe to share across shards.
type DecayTable struct {
	lambda float64
	pow    [decayTableSize]float64
}

// NewDecayTable precomputes fading weights for the fading factor lambda.
func NewDecayTable(lambda float64) *DecayTable {
	t := &DecayTable{lambda: lambda}
	for i := range t.pow {
		t.pow[i] = decayWeight(lambda, uint64(i))
	}
	return t
}

// Lambda returns the fading factor the table was built for.
func (t *DecayTable) Lambda() float64 { return t.lambda }

// At returns the fading weight for a gap of dt ticks: a table load
// below decayTableSize, the shared decayWeight primitive past it —
// table entries are built from the same primitive, so the two regimes
// agree bitwise on any gap either could serve.
func (t *DecayTable) At(dt uint64) float64 {
	if dt < decayTableSize {
		return t.pow[dt]
	}
	return decayWeight(t.lambda, dt)
}

// Series returns the closed-form geometric series 1 + f + f² + … +
// f^(m-1) with f = At(1): the total decayed weight, as seen at the last
// tick, of m touches at consecutive ticks. It is the algebra behind run
// folding — a summary receiving one unit per tick for m ticks ends at
// Dc·f^m + Series(m) — evaluated from table powers in O(1) instead of m
// iterated multiply-adds. The closed form agrees with the iterated fold
// only up to floating-point rounding, so the ingestion path (whose
// verdicts must stay bit-identical between the coalesced and pointwise
// orders) uses the exact Horner evaluation in PCS.TouchRun and this
// form backs analysis and tests.
func (t *DecayTable) Series(m uint64) float64 {
	if m == 0 {
		return 0
	}
	f := t.At(1)
	if f == 1 {
		return float64(m)
	}
	return (1 - t.At(m)) / (1 - f)
}

// PCS is the Projected Cell Summary: the per-cell state SPOT keeps for
// every populated cell of every subspace in the SST. All fields decay
// with the fading factor; decay is applied lazily when the cell is next
// touched (update-on-touch), so no background pass ever rewrites the
// table. The magnitude moments S and Q accumulate the projected
// magnitude m of member points (the sum of the point's coordinates over
// the subspace's dimensions), from which the cell's mean and standard
// deviation — the inputs to IRSD — are derived.
type PCS struct {
	Dc   float64 // decayed density (weighted point count)
	S    float64 // decayed sum of member magnitudes
	Q    float64 // decayed sum of squared member magnitudes
	Last uint64  // tick of the last touch
}

// Touch folds one point with magnitude m observed at tick into the
// summary, first bringing the decayed fields current. It performs no
// allocation.
func (p *PCS) Touch(t *DecayTable, tick uint64, m float64) {
	if p.Last != tick {
		d := t.At(tick - p.Last)
		p.Dc *= d
		p.S *= d
		p.Q *= d
		p.Last = tick
	}
	p.Dc++
	p.S += m
	p.Q += m * m
}

// TouchRun folds a whole run of touches on one cell: touch j occurs at
// tick ticks[j] (strictly increasing, all ≥ p.Last) with magnitude
// mags[j], and the post-touch magnitude sum and density are snapshotted
// into ss[j] and dcs[j] (both len ≥ len(ticks)) — the per-point view a
// verdict pass consumes. It is the decayed geometric-series fold of the
// coalesced batch path, evaluated by Horner's rule with the summary
// held in registers across the run: Dc after the run is
// Dc₀·f^Δ + Σⱼ f^δⱼ (DecayTable.Series gives the consecutive-tick
// closed form), but folding it one touch at a time keeps every
// intermediate — and therefore every verdict — bit-identical to
// iterated Touch calls, which a property test pins across random tick
// gaps and the decay-table fallback boundary. No heap allocations.
func (p *PCS) TouchRun(t *DecayTable, ticks []uint64, mags []float64, ss, dcs []float64) {
	mags = mags[:len(ticks)]
	ss = ss[:len(ticks)]
	dcs = dcs[:len(ticks)]
	dc, sv, q, last := p.Dc, p.S, p.Q, p.Last
	for j, tick := range ticks {
		if last != tick {
			f := t.At(tick - last)
			dc *= f
			sv *= f
			q *= f
			last = tick
		}
		m := mags[j]
		dc++
		sv += m
		q += m * m
		ss[j] = sv
		dcs[j] = dc
	}
	p.Dc, p.S, p.Q, p.Last = dc, sv, q, last
}

// DcAt returns the decayed density as seen at tick without mutating the
// summary.
func (p *PCS) DcAt(t *DecayTable, tick uint64) float64 {
	return p.Dc * t.At(tick-p.Last)
}

// Mean returns the decayed mean magnitude of the cell's members.
func (p *PCS) Mean() float64 {
	if p.Dc == 0 {
		return 0
	}
	return p.S / p.Dc
}

// Sigma returns the decayed standard deviation of member magnitudes.
func (p *PCS) Sigma() float64 {
	if p.Dc == 0 {
		return 0
	}
	mu := p.S / p.Dc
	v := p.Q/p.Dc - mu*mu
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// BCS is the Base Cell Summary kept for populated cells of the full
// d-dimensional space. Unlike the scalar PCS it stores per-dimension
// decayed linear sums (LS) and squared sums (SS), so the centroid and
// spread of the cell under any projection can be reconstructed without
// revisiting data — the raw material the epoch sweep snapshots and the
// self-evolving subspace group (internal/sst's TopSparse evolver)
// mines for candidate subspaces.
type BCS struct {
	Dc   float64
	LS   []float64
	SS   []float64
	Last uint64
}

// NewBCS returns an empty base cell summary for a d-dimensional space.
func NewBCS(d int) *BCS {
	return &BCS{LS: make([]float64, d), SS: make([]float64, d)}
}

// Touch folds point (length d) observed at tick into the summary,
// applying pending decay first. For an existing cell it performs no
// allocation.
func (b *BCS) Touch(t *DecayTable, tick uint64, point []float64) {
	if b.Last != tick {
		d := t.At(tick - b.Last)
		b.Dc *= d
		for i := range b.LS {
			b.LS[i] *= d
			b.SS[i] *= d
		}
		b.Last = tick
	}
	b.Dc++
	for i, x := range point {
		b.LS[i] += x
		b.SS[i] += x * x
	}
}

// DcAt returns the decayed density as seen at tick without mutating the
// summary.
func (b *BCS) DcAt(t *DecayTable, tick uint64) float64 {
	return b.Dc * t.At(tick-b.Last)
}

// Centroid writes the decayed centroid of the cell into out.
func (b *BCS) Centroid(out []float64) {
	if b.Dc == 0 {
		for i := range b.LS {
			out[i] = 0
		}
		return
	}
	for i := range b.LS {
		out[i] = b.LS[i] / b.Dc
	}
}
