package core

import "testing"

// FuzzEncodeDecodeCell proves the packed cell-key layout is a lossless
// round-trip for every valid (subspace ID, arity, coordinates) triple:
// DecodeCell recovers exactly what EncodeCell packed, CoordAt agrees
// with the full decode at every position, and re-encoding the decoded
// parts reproduces the original key bit for bit. The fuzzer drives raw
// values; the target folds them into the valid domain (ID ≤
// MaxSubspaceID, arity in [1, MaxSubspaceDims]) the same way template
// construction guarantees it, so any failure is a real layout bug.
func FuzzEncodeDecodeCell(f *testing.F) {
	// Seed corpus: domain corners — zero everything, max everything,
	// single-dimension keys, coordinate bytes that could bleed across
	// the per-dimension byte lanes if the shifts were wrong.
	f.Add(uint32(0), uint8(1), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(uint32(MaxSubspaceID), uint8(MaxSubspaceDims), uint8(255), uint8(255), uint8(255), uint8(255), uint8(255))
	f.Add(uint32(1), uint8(1), uint8(255), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(uint32(123456), uint8(3), uint8(1), uint8(128), uint8(7), uint8(0), uint8(0))
	f.Add(uint32(MaxSubspaceID), uint8(2), uint8(0), uint8(255), uint8(0), uint8(0), uint8(0))
	f.Add(uint32(1<<24), uint8(5), uint8(9), uint8(8), uint8(7), uint8(6), uint8(5)) // ID overflows into the fold

	f.Fuzz(func(t *testing.T, id uint32, arity, c0, c1, c2, c3, c4 uint8) {
		id &= MaxSubspaceID
		n := int(arity)%MaxSubspaceDims + 1
		coords := [MaxSubspaceDims]uint8{c0, c1, c2, c3, c4}

		key := EncodeCell(id, coords[:n])
		var dec [MaxSubspaceDims]uint8
		gotID := DecodeCell(key, n, dec[:n])
		if gotID != id {
			t.Fatalf("DecodeCell(EncodeCell(%d, %v)) returned ID %d", id, coords[:n], gotID)
		}
		for j := 0; j < n; j++ {
			if dec[j] != coords[j] {
				t.Fatalf("coordinate %d: decoded %d, packed %d (key %#x)", j, dec[j], coords[j], key)
			}
			if got := CoordAt(key, j); got != coords[j] {
				t.Fatalf("CoordAt(%#x, %d) = %d, want %d", key, j, got, coords[j])
			}
		}
		// Dimensions beyond the arity must read as zero: the key has no
		// room for stray state that could collide distinct cells.
		for j := n; j < MaxSubspaceDims; j++ {
			if got := CoordAt(key, j); got != 0 {
				t.Fatalf("CoordAt(%#x, %d) = %d beyond arity %d, want 0", key, j, got, n)
			}
		}
		if rekey := EncodeCell(gotID, dec[:n]); rekey != key {
			t.Fatalf("re-encode mismatch: %#x vs %#x", rekey, key)
		}
	})
}
