// Package replica implements warm-standby replication for spotd: a
// Shipper that runs beside a primary server and periodically ships
// verified snapshot generations to standby servers, and a failover
// Client that retries retryable refusals with bounded backoff and
// follows the primary role across a replica set.
//
// The replication contract: each shipped generation carries the
// shipping primary's incarnation (its wire ID plus a per-process
// nonce), a sequence number and the detector tick of the snapshot.
// Within one incarnation both must strictly advance — a standby
// refuses a regression with server.ErrStaleGeneration, the divergence
// signal — while a new incarnation (failover, primary restart) resets
// the baseline and is followed wholesale, because the serving primary
// is authoritative. Standbys apply generations through the restore
// path and checkpoint them immediately, so a standby crash recovers
// warm.
package replica

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"spot/internal/server"
	"spot/internal/snapshot"
)

// DefaultInterval is the ship cadence when ShipperConfig.Interval is
// zero.
const DefaultInterval = time.Second

// ShipperConfig configures a replication shipper.
type ShipperConfig struct {
	// Server is the local server whose tenants are shipped. The shipper
	// only ships while the server holds the primary role, so a shipper
	// configured on a standby lies dormant until promotion.
	Server *server.Server
	// Targets are the standby dial addresses.
	Targets []string
	// Interval is the ship cadence. Default DefaultInterval.
	Interval time.Duration
	// ID overrides the incarnation's base identity; default the
	// server's wire ID. The shipper appends a per-process nonce so a
	// restarted primary starts a fresh incarnation and standbys reset
	// their regression baseline instead of refusing its restarted
	// sequence numbers.
	ID string
	// Client tunes the replication links' I/O deadlines.
	Client server.ClientOptions
	// FaultEveryN, when positive, corrupts every Nth push on the wire —
	// the chaos harness's snapshot-corruption injection. The standby
	// refuses the corrupt generation and the next cadence re-ships it
	// clean.
	FaultEveryN int
	// Logf, when set, receives one line per shipping fault.
	Logf func(format string, args ...any)
}

// target is one standby link's shipper-side state. The shipper
// goroutine owns everything under the Shipper mutex; Status reads it.
type target struct {
	addr  string
	c     *server.Client
	acked map[string]uint64 // tenant → newest acked generation seq

	gens     uint64
	bytes    uint64
	fails    uint64
	lastErr  string
	behind   uint64
	bytesSec float64
}

// generation is one cut snapshot awaiting delivery.
type generation struct {
	seq  uint64
	tick uint64
	snap []byte
}

// Shipper periodically snapshots every tenant of a primary server and
// ships undelivered generations to each standby target. Build with
// NewShipper, stop with Stop.
type Shipper struct {
	cfg ShipperConfig
	id  string

	mu      sync.Mutex
	active  bool
	gens    map[string]*generation // tenant → newest cut generation
	targets []*target
	pushes  uint64 // lifetime push counter, drives FaultEveryN

	stop chan struct{}
	done chan struct{}
}

// NewShipper starts a shipper for cfg.Server. It ships on every
// Interval tick while the server holds the primary role.
func NewShipper(cfg ShipperConfig) (*Shipper, error) {
	if cfg.Server == nil {
		return nil, fmt.Errorf("replica: shipper needs a server")
	}
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("replica: shipper needs at least one target")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.ID == "" {
		cfg.ID = cfg.Server.ID()
	}
	var nonce [4]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, fmt.Errorf("replica: incarnation nonce: %w", err)
	}
	s := &Shipper{
		cfg:  cfg,
		id:   cfg.ID + "/" + hex.EncodeToString(nonce[:]),
		gens: make(map[string]*generation),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for _, addr := range cfg.Targets {
		s.targets = append(s.targets, &target{addr: addr, acked: make(map[string]uint64)})
	}
	cfg.Server.SetReplicationStatus(s.Status)
	go s.run()
	return s, nil
}

// Incarnation returns the identity this shipper stamps on every
// generation: the configured ID plus the per-process nonce.
func (s *Shipper) Incarnation() string { return s.id }

// Stop halts shipping and closes the replication links. Idempotent is
// not required: call exactly once.
func (s *Shipper) Stop() {
	close(s.stop)
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, tg := range s.targets {
		if tg.c != nil {
			tg.c.Close()
			tg.c = nil
		}
	}
}

// run is the shipping loop: one pass per interval tick.
func (s *Shipper) run() {
	defer close(s.done)
	tick := time.NewTicker(s.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.pass()
		}
	}
}

// pass cuts one generation per tenant whose stream advanced and ships
// every generation a target has not acked. Dormant while the server is
// not primary.
func (s *Shipper) pass() {
	primary := s.cfg.Server.Primary()
	s.mu.Lock()
	s.active = primary
	s.mu.Unlock()
	if !primary {
		return
	}
	names := s.cfg.Server.TenantNames()
	sort.Strings(names)
	for _, name := range names {
		s.cut(name)
	}
	start := time.Now()
	shipped := make([]uint64, len(s.targets)) // bytes shipped per target this pass
	for i, tg := range s.targets {
		for _, name := range names {
			s.mu.Lock()
			gen := s.gens[name]
			due := gen != nil && tg.acked[name] < gen.seq
			s.mu.Unlock()
			if due {
				shipped[i] += s.ship(tg, name, gen)
			}
		}
	}
	elapsed := time.Since(start)
	s.mu.Lock()
	for i, tg := range s.targets {
		tg.behind = 0
		for name, gen := range s.gens {
			if acked := tg.acked[name]; gen.seq > acked {
				tg.behind += gen.seq - acked
			}
		}
		if sec := elapsed.Seconds(); sec > 0 && shipped[i] > 0 {
			tg.bytesSec = float64(shipped[i]) / sec
		}
	}
	s.mu.Unlock()
}

// cut snapshots one tenant through its worker queue and, when the
// stream advanced past the last cut, publishes it as the next
// generation. A shed snapshot (saturated queue) just waits for the
// next cadence — replication never preempts serving.
func (s *Shipper) cut(name string) {
	snap, tick, err := s.cfg.Server.SnapshotTenant(name)
	if err != nil {
		s.logf("replica: snapshot %s: %v", name, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.gens[name]
	if prev != nil && tick <= prev.tick {
		return // nothing new to ship
	}
	next := &generation{seq: 1, tick: tick, snap: snap}
	if prev != nil {
		next.seq = prev.seq + 1
	}
	s.gens[name] = next
}

// ship delivers one generation to one target and returns the payload
// bytes on success. Failures close the link (it redials next pass),
// record the error, and leave the generation unacked for re-shipping.
func (s *Shipper) ship(tg *target, name string, gen *generation) uint64 {
	s.mu.Lock()
	s.pushes++
	corrupt := s.cfg.FaultEveryN > 0 && s.pushes%uint64(s.cfg.FaultEveryN) == 0
	s.mu.Unlock()

	fail := func(err error) uint64 {
		s.logf("replica: ship %s gen %d to %s: %v", name, gen.seq, tg.addr, err)
		s.mu.Lock()
		tg.fails++
		tg.lastErr = err.Error()
		if tg.c != nil {
			tg.c.Close()
			tg.c = nil
		}
		s.mu.Unlock()
		return 0
	}

	s.mu.Lock()
	c := tg.c
	s.mu.Unlock()
	if c == nil {
		dialed, err := server.DialOptions(tg.addr, s.cfg.Client)
		if err != nil {
			return fail(err)
		}
		// The mis-wiring guard: never ship state into a server that
		// believes it is primary — that is split brain, and the push
		// would be refused anyway. Checked once per link establishment.
		info, err := dialed.PingInfo()
		if err != nil {
			dialed.Close()
			return fail(err)
		}
		if info.Role != server.RoleStandby {
			dialed.Close()
			return fail(fmt.Errorf("target %s (%s) holds the %s role", tg.addr, info.ID, info.Role))
		}
		s.mu.Lock()
		tg.c = dialed
		s.mu.Unlock()
		c = dialed
	}

	payload := gen.snap
	if corrupt {
		// Chaos injection: flip one byte mid-snapshot via the fault
		// reader, so the standby's verification path is exercised on a
		// real wire push. The clean payload re-ships next pass.
		r := snapshot.NewBitFlipReader(bytes.NewReader(gen.snap), int64(len(gen.snap)/2), 0x20)
		bad, err := io.ReadAll(r)
		if err != nil {
			return fail(err)
		}
		payload = bad
	}
	if err := c.Replicate(name, s.id, gen.seq, gen.tick, payload); err != nil {
		return fail(err)
	}
	s.mu.Lock()
	tg.acked[name] = gen.seq
	tg.gens++
	tg.bytes += uint64(len(payload))
	tg.lastErr = ""
	s.mu.Unlock()
	return uint64(len(payload))
}

// Status reports the shipper's health in the shape the server's stats
// endpoint surfaces.
func (s *Shipper) Status() server.ReplicationStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := server.ReplicationStatus{
		Active:         s.active,
		IntervalMillis: s.cfg.Interval.Milliseconds(),
	}
	for _, tg := range s.targets {
		st.Targets = append(st.Targets, server.ReplTargetStatus{
			Addr:         tg.addr,
			GensShipped:  tg.gens,
			BytesShipped: tg.bytes,
			ShipFailures: tg.fails,
			Behind:       tg.behind,
			BytesPerSec:  tg.bytesSec,
			LastError:    tg.lastErr,
		})
	}
	return st
}

// logf writes one diagnostic line when a logger is configured.
func (s *Shipper) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
