package replica

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"spot/internal/server"
	"spot/internal/stream"
)

// testStream builds a small detector config with warmup off.
func testStream(dims int) stream.Config {
	cfg := stream.DefaultConfig(dims)
	cfg.Scoring = true
	cfg.TopK = 4
	cfg.Warmup = 0
	return cfg
}

// genPoints produces a deterministic flat stream with planted outliers.
func genPoints(seed int64, n, dims int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	flat := make([]float64, n*dims)
	for i := 0; i < n; i++ {
		for d := 0; d < dims; d++ {
			v := 0.3 + 0.1*rng.Float64()
			if i%37 == 19 {
				v = rng.Float64()
			}
			flat[i*dims+d] = v
		}
	}
	return flat
}

// startServer serves a server on loopback with shutdown at cleanup.
func startServer(t *testing.T, opts server.Options, tenants []server.TenantConfig) (*server.Server, string) {
	t.Helper()
	s, err := server.New(opts, tenants)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		<-serveDone
	})
	return s, ln.Addr().String()
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestShipperReplicatesToStandby pins the happy path end to end: a
// primary's stream lands on the standby within the ship cadence, the
// standby's state is the primary's exact detector state (same tick,
// immediately durable), and the shipper's health counters surface
// through the primary's stats endpoint.
func TestShipperReplicatesToStandby(t *testing.T) {
	const dims, batch, batches = 3, 25, 4
	cfg := testStream(dims)
	pri, priAddr := startServer(t, server.Options{ID: "pri"},
		[]server.TenantConfig{{Name: "r", Stream: cfg}})
	sb, sbAddr := startServer(t, server.Options{ID: "sb", Role: server.RoleStandby},
		[]server.TenantConfig{{Name: "r", Stream: cfg, Dir: t.TempDir()}})

	sh, err := NewShipper(ShipperConfig{
		Server:   pri,
		Targets:  []string{sbAddr},
		Interval: 10 * time.Millisecond,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Stop()
	if !strings.HasPrefix(sh.Incarnation(), "pri/") {
		t.Fatalf("incarnation %q does not extend the server ID", sh.Incarnation())
	}

	c, err := server.Dial(priAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	flat := genPoints(21, batch*batches, dims)
	for i := 0; i < batches; i++ {
		if _, err := c.Ingest("r", flat[i*batch*dims:(i+1)*batch*dims], batch, server.IngestOptions{}); err != nil {
			t.Fatal(err)
		}
	}

	want := uint64(batch * batches)
	waitFor(t, 5*time.Second, "standby to catch up", func() bool {
		ts, _ := sb.Tenant("r")
		return ts.Tick == want
	})
	ts, _ := sb.Tenant("r")
	if ts.ReplPrimary != sh.Incarnation() {
		t.Fatalf("standby tracks incarnation %q, want %q", ts.ReplPrimary, sh.Incarnation())
	}
	if ts.Checkpoint.Generations == 0 || !ts.Checkpoint.Verified {
		t.Fatalf("replicated state not durable on standby: %+v", ts.Checkpoint)
	}

	// The shipper's health reaches the primary's stats endpoint.
	waitFor(t, 5*time.Second, "replication status to drain", func() bool {
		st := sh.Status()
		return st.Active && len(st.Targets) == 1 && st.Targets[0].GensShipped > 0 && st.Targets[0].Behind == 0
	})
	priSt, ok := pri.Tenant("r")
	_ = priSt
	if !ok {
		t.Fatal("primary lost its tenant")
	}
	c2, err := server.Dial(priAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st, err := c2.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Replication.Active || len(st.Replication.Targets) != 1 || st.Replication.Targets[0].BytesShipped == 0 {
		t.Fatalf("stats endpoint missing replication health: %+v", st.Replication)
	}
}

// TestShipperFaultInjectionRecovers pins the corruption path: with
// every second push corrupted on the wire, the standby refuses the bad
// generations (counted as corrupt receives and ship failures) yet
// still converges to the primary's tick, because the next cadence
// re-ships clean.
func TestShipperFaultInjectionRecovers(t *testing.T) {
	const dims, batch = 3, 25
	cfg := testStream(dims)
	pri, priAddr := startServer(t, server.Options{ID: "pri"},
		[]server.TenantConfig{{Name: "r", Stream: cfg}})
	sb, sbAddr := startServer(t, server.Options{ID: "sb", Role: server.RoleStandby},
		[]server.TenantConfig{{Name: "r", Stream: cfg}})

	sh, err := NewShipper(ShipperConfig{
		Server:      pri,
		Targets:     []string{sbAddr},
		Interval:    10 * time.Millisecond,
		FaultEveryN: 2,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Stop()

	c, err := server.Dial(priAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	flat := genPoints(22, batch*6, dims)
	for i := 0; i < 6; i++ {
		if _, err := c.Ingest("r", flat[i*batch*dims:(i+1)*batch*dims], batch, server.IngestOptions{}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(15 * time.Millisecond) // let cadences interleave with pushes
	}

	waitFor(t, 5*time.Second, "standby to converge past corruption", func() bool {
		ts, _ := sb.Tenant("r")
		return ts.Tick == uint64(batch*6)
	})
	ts, _ := sb.Tenant("r")
	if ts.ReplCorrupt == 0 {
		t.Fatal("no corrupt push ever reached the standby — fault injection inert")
	}
	if st := sh.Status(); st.Targets[0].ShipFailures == 0 {
		t.Fatal("shipper recorded no failures despite injected corruption")
	}
}

// TestShipperRefusesPrimaryTarget pins the split-brain guard: a target
// that believes it is primary is never shipped into; the fault is
// recorded and the target's ack state stays empty.
func TestShipperRefusesPrimaryTarget(t *testing.T) {
	const dims, batch = 2, 20
	cfg := testStream(dims)
	pri, priAddr := startServer(t, server.Options{ID: "pri"},
		[]server.TenantConfig{{Name: "r", Stream: cfg}})
	other, otherAddr := startServer(t, server.Options{ID: "other"}, // primary, mis-wired as target
		[]server.TenantConfig{{Name: "r", Stream: cfg}})

	sh, err := NewShipper(ShipperConfig{
		Server:   pri,
		Targets:  []string{otherAddr},
		Interval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Stop()

	c, err := server.Dial(priAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	flat := genPoints(23, batch, dims)
	if _, err := c.Ingest("r", flat, batch, server.IngestOptions{}); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 5*time.Second, "guard to record the mis-wiring", func() bool {
		st := sh.Status()
		return len(st.Targets) == 1 && st.Targets[0].ShipFailures > 0
	})
	st := sh.Status()
	if st.Targets[0].GensShipped != 0 {
		t.Fatalf("shipped %d generations into a primary", st.Targets[0].GensShipped)
	}
	if !strings.Contains(st.Targets[0].LastError, "primary") {
		t.Fatalf("guard error does not name the role: %q", st.Targets[0].LastError)
	}
	ts, _ := other.Tenant("r")
	if ts.ReplAccepted != 0 || ts.Tick != 0 {
		t.Fatalf("mis-wired primary absorbed replication: %+v", ts)
	}
}

// TestShipperDormantUntilPromoted pins the role gate on the shipping
// side: a shipper beside a standby ships nothing, then starts shipping
// the moment its server is promoted.
func TestShipperDormantUntilPromoted(t *testing.T) {
	const dims, batch = 2, 20
	cfg := testStream(dims)
	mid, _ := startServer(t, server.Options{ID: "mid", Role: server.RoleStandby},
		[]server.TenantConfig{{Name: "r", Stream: cfg}})
	sb, sbAddr := startServer(t, server.Options{ID: "sb", Role: server.RoleStandby},
		[]server.TenantConfig{{Name: "r", Stream: cfg}})

	sh, err := NewShipper(ShipperConfig{
		Server:   mid,
		Targets:  []string{sbAddr},
		Interval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Stop()

	time.Sleep(50 * time.Millisecond)
	if st := sh.Status(); st.Active || st.Targets[0].GensShipped != 0 {
		t.Fatalf("standby's shipper is not dormant: %+v", st)
	}

	mid.Promote()
	// Drive the now-primary forward so there is something to ship.
	// (Ingest through the wire so the tick advances at a batch boundary.)
	cMid, err := server.Dial(mustAddr(t, mid))
	if err != nil {
		t.Fatal(err)
	}
	defer cMid.Close()
	flat := genPoints(24, batch, dims)
	if _, err := cMid.Ingest("r", flat, batch, server.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "promoted server to start shipping", func() bool {
		ts, _ := sb.Tenant("r")
		return ts.Tick == uint64(batch)
	})
}

// mustAddr returns a serving server's dial address.
func mustAddr(t *testing.T, s *server.Server) string {
	t.Helper()
	a := s.Addr()
	if a == nil {
		t.Fatal("server has no listener")
	}
	return a.String()
}

// TestFailoverFollowsPromotion pins the client half of failover: a
// client given the replica set in arbitrary order finds the primary by
// typed refusal, and when the primary drains away and the standby is
// promoted, the same client follows — with every verdict along the way
// bit-identical to an uninterrupted oracle.
func TestFailoverFollowsPromotion(t *testing.T) {
	const dims, batch, batches = 3, 25, 8
	cfg := testStream(dims)
	flat := genPoints(25, batch*batches, dims)

	oracle, err := stream.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	want := make([]bool, batch*batches)
	oracle.ProcessBatch(flat, want)

	priA, addrA := startServer(t, server.Options{ID: "a"},
		[]server.TenantConfig{{Name: "r", Stream: cfg}})
	sbB, addrB := startServer(t, server.Options{ID: "b", Role: server.RoleStandby},
		[]server.TenantConfig{{Name: "r", Stream: cfg}})

	sh, err := NewShipper(ShipperConfig{Server: priA, Targets: []string{addrB}, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	stopShipper := func() { sh.Stop() }
	defer func() { stopShipper() }()

	// Standby listed first: the client must discover the primary.
	fc, err := NewClient(Config{Addrs: []string{addrB, addrA}, BaseBackoff: 5 * time.Millisecond, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	check := func(i int) {
		t.Helper()
		res, err := fc.Ingest("r", flat[i*batch*dims:(i+1)*batch*dims], batch, server.IngestOptions{})
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if res.T0 != uint64(i*batch) {
			t.Fatalf("batch %d: T0 %d, want %d", i, res.T0, i*batch)
		}
		for j, v := range res.Verdicts {
			if v != want[i*batch+j] {
				t.Fatalf("batch %d point %d diverged from oracle", i, j)
			}
		}
	}

	for i := 0; i < batches/2; i++ {
		check(i)
	}
	if info, err := fc.PingInfo(); err != nil || info.ID != "a" {
		t.Fatalf("client did not settle on the primary: %+v, %v", info, err)
	}

	// Let replication drain completely, then fail over: stop the
	// shipper, drain A, promote B.
	waitFor(t, 5*time.Second, "standby to catch up before failover", func() bool {
		ts, _ := sbB.Tenant("r")
		return ts.Tick == uint64(batches/2*batch)
	})
	stopShipper()
	stopShipper = func() {}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	priA.Shutdown(ctx)
	cb, err := server.Dial(addrB)
	if err != nil {
		t.Fatal(err)
	}
	if err := cb.Promote(); err != nil {
		t.Fatal(err)
	}
	cb.Close()

	// The tick must have survived the failover exactly (lag was zero).
	if tick, err := fc.Resync("r"); err != nil || tick != uint64(batches/2*batch) {
		t.Fatalf("post-failover resync: tick %d, %v, want %d", tick, err, batches/2*batch)
	}
	for i := batches / 2; i < batches; i++ {
		check(i)
	}
	if info, err := fc.PingInfo(); err != nil || info.ID != "b" {
		t.Fatalf("client did not follow the promotion: %+v, %v", info, err)
	}
}

// TestFailoverAmbiguousIngestNotRetried pins the retry-safety line: an
// ingest whose connection times out with the reply outstanding must
// surface ErrPossiblyApplied without a blind resend, while idempotent
// reads retry through the same fault.
func TestFailoverAmbiguousIngestNotRetried(t *testing.T) {
	// A hung server: accepts, swallows bytes, never replies.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}(c)
		}
	}()

	fc, err := NewClient(Config{
		Addrs:       []string{ln.Addr().String()},
		Client:      server.ClientOptions{ReadTimeout: 50 * time.Millisecond},
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	flat := genPoints(26, 10, 2)
	start := time.Now()
	_, err = fc.Ingest("r", flat, 10, server.IngestOptions{})
	if !errors.Is(err, ErrPossiblyApplied) {
		t.Fatalf("ambiguous ingest: got %v, want ErrPossiblyApplied", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("ambiguous ingest took %v — it must fail on the first timeout, not retry", elapsed)
	}

	// The idempotent read path retries through the same fault and
	// exhausts its attempts with the underlying timeout, not the
	// ambiguity sentinel.
	_, err = fc.Resync("r")
	if errors.Is(err, ErrPossiblyApplied) {
		t.Fatalf("idempotent read surfaced ErrPossiblyApplied: %v", err)
	}
	if !errors.Is(err, server.ErrTimeout) {
		t.Fatalf("resync against hung server: got %v, want exhausted ErrTimeout", err)
	}
}

// TestFailoverRetriesShedThenSucceeds pins the backoff path at the
// classification level and against a live server: a shed refusal is
// retryable on the same candidate, and classification separates every
// typed error into its contract class.
func TestFailoverRetriesShedThenSucceeds(t *testing.T) {
	cases := []struct {
		err  error
		want outcome
	}{
		{nil, done},
		{server.ErrBadRequest, done},
		{server.ErrUnknownTenant, done},
		{server.ErrConflict, done},
		{server.ErrInternal, done},
		{server.ErrShed, retrySame},
		{server.ErrDeadline, retrySame},
		{server.ErrNotPrimary, rotate},
		{server.ErrDraining, rotate},
		{server.ErrTimeout, ambiguous},
		{errors.New("connection reset by peer"), ambiguous},
	}
	for _, tc := range cases {
		if got := classify(tc.err); got != tc.want {
			t.Errorf("classify(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}
