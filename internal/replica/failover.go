package replica

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"spot/internal/server"
)

// ErrPossiblyApplied marks a request whose connection failed after the
// request may have reached the server — a timeout or connection reset
// with the reply outstanding. The failover client never silently
// retries such a request: a blind resend could double-apply the batch.
// Callers resolve the ambiguity against the detector's tick (Resync)
// and replay deterministically from there.
var ErrPossiblyApplied = errors.New("replica: request may have been applied")

// Config tunes a failover client.
type Config struct {
	// Addrs are the replica set's dial addresses, primary position
	// unknown: the client discovers the primary by typed refusal
	// (server.ErrNotPrimary rotates to the next candidate) and follows
	// it across promotions the same way.
	Addrs []string
	// Client tunes each underlying connection's I/O deadlines.
	Client server.ClientOptions
	// MaxAttempts bounds one call's tries across backoff and rotation.
	// Default 8.
	MaxAttempts int
	// BaseBackoff is the first retry's delay, doubled each retry up to
	// MaxBackoff, with jitter. Defaults 25ms and 1s.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff growth.
	MaxBackoff time.Duration
	// Seed seeds the jitter source so chaos runs replay exactly; 0
	// takes a fixed default.
	Seed int64
}

func (c *Config) defaults() {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 25 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Client is a failover-aware spotd client over a replica set. Each
// call dials (or reuses) a connection to the current candidate,
// retries retryable typed refusals with bounded exponential backoff
// and jitter, rotates candidates when the current one is unreachable,
// draining or a standby, and surfaces ErrPossiblyApplied instead of
// retrying when a state-changing request failed ambiguously mid-flight.
type Client struct {
	cfg Config

	mu  sync.Mutex
	c   *server.Client
	idx int // current candidate in cfg.Addrs
	rng *rand.Rand
}

// NewClient builds a failover client over the replica set. No
// connection is made until the first call.
func NewClient(cfg Config) (*Client, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("replica: client needs at least one address")
	}
	cfg.defaults()
	return &Client{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Close closes the current connection, if any.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.c != nil {
		err := c.c.Close()
		c.c = nil
		return err
	}
	return nil
}

// Addr returns the address of the candidate the client currently
// targets — after a successful call, the serving primary.
func (c *Client) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.Addrs[c.idx]
}

// conn returns the current connection, dialing if needed.
func (c *Client) conn() (*server.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.c != nil {
		return c.c, nil
	}
	dialed, err := server.DialOptions(c.cfg.Addrs[c.idx], c.cfg.Client)
	if err != nil {
		return nil, err
	}
	c.c = dialed
	return dialed, nil
}

// drop discards the current connection and optionally rotates to the
// next candidate.
func (c *Client) drop(rotate bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.c != nil {
		c.c.Close()
		c.c = nil
	}
	if rotate {
		c.idx = (c.idx + 1) % len(c.cfg.Addrs)
	}
}

// backoff sleeps the attempt's jittered exponential delay.
func (c *Client) backoff(attempt int) {
	d := c.cfg.BaseBackoff << uint(attempt)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	c.mu.Lock()
	jitter := 0.5 + 0.5*c.rng.Float64()
	c.mu.Unlock()
	time.Sleep(time.Duration(float64(d) * jitter))
}

// outcome classifies one attempt's error.
type outcome int

const (
	done      outcome = iota // success or permanent error: return to caller
	retrySame                // typed not-applied refusal: back off, same candidate
	rotate                   // candidate cannot serve: drop it, try the next
	ambiguous                // transport fault mid-request: applied state unknown
)

// classify maps one attempt's error to the retry action. The split is
// the retry-safety contract: only errors that prove the server did not
// apply the request are retried; transport faults after the request
// was written are ambiguous.
func classify(err error) outcome {
	switch {
	case err == nil,
		errors.Is(err, server.ErrBadRequest),
		errors.Is(err, server.ErrUnknownTenant),
		errors.Is(err, server.ErrConflict),
		errors.Is(err, server.ErrInternal):
		return done
	case errors.Is(err, server.ErrShed),
		errors.Is(err, server.ErrDeadline):
		// The server replied with a typed not-applied refusal; the same
		// candidate will accept once load drains.
		return retrySame
	case errors.Is(err, server.ErrNotPrimary),
		errors.Is(err, server.ErrDraining):
		// This replica cannot serve the request at all: follow the
		// promotion (or the drain) to the next candidate.
		return rotate
	default:
		// Dial failures, timeouts, resets. Whether the request reached
		// the server is unknown at this layer.
		return ambiguous
	}
}

// call runs one request through the retry loop. dialFailed is reported
// separately from in-flight transport faults: a request that was never
// written is always safe to retry, even when mutating.
func (c *Client) call(mutating bool, do func(sc *server.Client) error) error {
	var last error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.backoff(attempt - 1)
		}
		sc, err := c.conn()
		if err != nil {
			// Nothing was written: rotate and retry regardless of the
			// request's mutability.
			last = err
			c.drop(true)
			continue
		}
		err = do(sc)
		switch classify(err) {
		case done:
			return err
		case retrySame:
			last = err
		case rotate:
			last = err
			c.drop(true)
		case ambiguous:
			c.drop(true)
			if mutating {
				return fmt.Errorf("%w: %v", ErrPossiblyApplied, err)
			}
			last = err
		}
	}
	return fmt.Errorf("replica: %d attempts exhausted: %w", c.cfg.MaxAttempts, last)
}

// Ingest streams one batch into the tenant on the serving primary.
// Typed not-applied refusals (shed, deadline, standby, draining) are
// retried with backoff and failover; an ambiguous in-flight failure
// returns ErrPossiblyApplied without retrying — resolve it with Resync
// and replay deterministically from the server's tick.
func (c *Client) Ingest(tenant string, flat []float64, points int, o server.IngestOptions) (server.IngestResult, error) {
	var res server.IngestResult
	err := c.call(true, func(sc *server.Client) error {
		var err error
		res, err = sc.Ingest(tenant, flat, points, o)
		return err
	})
	return res, err
}

// PingInfo returns the identity of the replica the client currently
// targets, with retry and failover. Idempotent, so ambiguous failures
// are retried.
func (c *Client) PingInfo() (server.PingInfo, error) {
	var info server.PingInfo
	err := c.call(false, func(sc *server.Client) error {
		var err error
		info, err = sc.PingInfo()
		return err
	})
	return info, err
}

// Resync returns the tenant's current detector tick on the serving
// primary — the resolution step after ErrPossiblyApplied: a tick that
// already covers the ambiguous batch proves it was applied; one that
// does not proves it was not, and the client replays from there. The
// tick is read from the primary specifically — a standby answers stats
// too, but its tick may trail inside the replication-lag window, and
// replaying against the primary from a stale position would fork the
// stream. Reads are idempotent, so ambiguous failures are retried.
func (c *Client) Resync(tenant string) (uint64, error) {
	var tick uint64
	err := c.call(false, func(sc *server.Client) error {
		info, err := sc.PingInfo()
		if err != nil {
			return err
		}
		if info.Role != server.RolePrimary {
			return fmt.Errorf("%w: %s holds the %s role", server.ErrNotPrimary, info.ID, info.Role)
		}
		ts, err := sc.TenantStats(tenant)
		if err == nil {
			tick = ts.Tick
		}
		return err
	})
	return tick, err
}
