package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"spot/internal/snapshot"
	"spot/internal/stream"
)

// request kinds handled by a tenant worker.
const (
	reqIngest uint8 = iota
	reqSnapshot
	reqRestore
	reqCheckpoint
	reqReplicate
)

// request is one unit of admitted work. Every admitted request gets
// exactly one response on resp — the worker drains its queue fully
// before exiting, so an accepted batch is never silently dropped.
type request struct {
	kind     uint8
	flat     []float64
	n        int
	scored   bool
	deadline time.Time // zero: no deadline
	snap     []byte    // reqRestore / reqReplicate payload
	replID   string    // reqReplicate: shipping primary's incarnation
	replSeq  uint64    // reqReplicate: generation sequence number
	replTick uint64    // reqReplicate: detector tick of the snapshot
	resp     chan response
}

// response is the worker's reply. code 0 means success.
type response struct {
	code     uint8
	msg      string
	t0       uint64
	verdicts []bool
	scores   []float64
	snap     []byte
	path     string
}

// TenantConfig declares one tenant detector the server hosts.
type TenantConfig struct {
	// Name addresses the tenant on the wire; required, at most 255
	// bytes.
	Name string
	// Stream is the tenant's detector configuration. Tenants with the
	// same Lambda share one immutable decay table (the server fills
	// Stream.Decay when unset).
	Stream stream.Config
	// Dir, when non-empty, is the tenant's checkpoint directory: the
	// server recovers from its newest verifiable generation on startup
	// and checkpoints into it on the configured cadence. Empty runs
	// the tenant without durability.
	Dir string
	// Keep is how many checkpoint generations to retain; <1 keeps 1.
	Keep int
}

// tenant couples one detector with the robustness machinery around
// it: the bounded admission queue, the single worker goroutine that
// exclusively drives the detector, the checkpoint keeper and the
// published status snapshot.
type tenant struct {
	name   string
	cfg    stream.Config
	opts   Options
	keeper *snapshot.Keeper

	// det is owned by the worker goroutine after start.
	det *stream.Detector

	// mu guards admission against queue close during drain.
	mu      sync.RWMutex
	closing bool
	queue   chan *request

	// Worker-owned checkpoint cadence state.
	sinceCkpt uint64
	lastCkpt  time.Time

	// saveWrap, when set (tests), wraps the writer each checkpoint
	// Save streams through — the checkpoint-under-load fault-injection
	// hook.
	saveWrap func(io.Writer) io.Writer

	// Worker-owned replication tracking: the last accepted generation,
	// keyed by the shipping primary's incarnation. A push from the same
	// incarnation must strictly advance both sequence number and tick;
	// a new incarnation (failover, primary restart) resets the baseline
	// and is followed wholesale.
	replID   string
	replSeq  uint64
	replTick uint64

	// Published state, read by any goroutine.
	stats        atomic.Pointer[stream.Stats]
	accepted     atomic.Uint64
	shed         atomic.Uint64
	deadlineMiss atomic.Uint64
	panics       atomic.Uint64
	ckptFails    atomic.Uint64
	lastCkptErr  atomic.Pointer[string]

	// Replication-receive counters (standby side).
	replAccepted atomic.Uint64
	replStale    atomic.Uint64
	replCorrupt  atomic.Uint64
	replLastID   atomic.Pointer[string]
	replLastSeq  atomic.Uint64
	replLastTick atomic.Uint64

	// ckptGen caches the newest durable checkpoint generation — written
	// by this tenant's own saves, so verified by construction — for the
	// ping identity reply, which must stay queue-free and cheap.
	ckptGen atomic.Uint64

	recoveredTick uint64
	recoveredPath string

	done chan struct{}
}

// newTenant builds a tenant: recover-from-checkpoint (newest
// verifiable generation) when a checkpoint directory is configured and
// holds one, fresh detector otherwise.
func newTenant(tc TenantConfig, opts Options) (*tenant, error) {
	if tc.Name == "" || len(tc.Name) > maxNameLen {
		return nil, fmt.Errorf("server: tenant name %q invalid", tc.Name)
	}
	t := &tenant{
		name:  tc.Name,
		cfg:   tc.Stream,
		opts:  opts,
		queue: make(chan *request, opts.QueueDepth),
		done:  make(chan struct{}),
	}
	if tc.Dir != "" {
		k, err := snapshot.NewKeeper(tc.Dir, tc.Keep)
		if err != nil {
			return nil, fmt.Errorf("server: tenant %s: %w", tc.Name, err)
		}
		t.keeper = k
		path, err := k.Load(func(r io.Reader) error {
			d, err := stream.Restore(r, t.cfg)
			if err != nil {
				return err
			}
			t.det = d
			return nil
		})
		switch {
		case err == nil:
			t.recoveredTick = t.det.Tick()
			t.recoveredPath = path
		case snapshot.IsNoCheckpoint(err):
			// Fresh start — either a new tenant or every retained
			// generation failed verification; the per-generation
			// reasons surface through keeper.Info in stats.
		default:
			return nil, fmt.Errorf("server: tenant %s: %w", tc.Name, err)
		}
	}
	if t.det == nil {
		d, err := stream.New(t.cfg)
		if err != nil {
			return nil, fmt.Errorf("server: tenant %s: %w", tc.Name, err)
		}
		t.det = d
	}
	if t.keeper != nil {
		if info, err := t.keeper.Info(); err == nil && info.Verified {
			t.ckptGen.Store(info.LatestSeq)
		}
	}
	t.lastCkpt = time.Now()
	t.publish()
	return t, nil
}

// start launches the worker goroutine.
func (t *tenant) start() { go t.run() }

// admit enqueues a request under admission control. A full queue sheds
// with ErrShed — the typed backpressure contract: the daemon never
// buffers beyond the configured depth, and nothing of a shed request
// was applied. ErrDraining after the drain began.
func (t *tenant) admit(req *request) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closing {
		return ErrDraining
	}
	select {
	case t.queue <- req:
		t.accepted.Add(1)
		return nil
	default:
		t.shed.Add(1)
		return ErrShed
	}
}

// closeQueue stops admission and closes the queue so the worker drains
// and exits. Idempotent.
func (t *tenant) closeQueue() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closing {
		return
	}
	t.closing = true
	close(t.queue)
}

// run is the worker loop: the only goroutine that ever touches the
// detector, so every checkpoint, snapshot and restore observes it at
// a batch boundary with its shard workers idle. On drain it answers
// every remaining admitted request, takes a final checkpoint, and
// closes the detector.
func (t *tenant) run() {
	defer close(t.done)
	for req := range t.queue {
		t.handle(req)
	}
	if t.keeper != nil && t.sinceCkpt > 0 {
		t.finalCheckpoint()
	}
	t.det.Close()
	t.publish()
}

// finalCheckpoint takes the drain-time save with the same panic
// containment as request handling, so a poisoned save path cannot
// prevent the drain from closing the detector.
func (t *tenant) finalCheckpoint() {
	defer func() {
		if r := recover(); r != nil {
			t.panics.Add(1)
			msg := fmt.Sprint(r)
			t.lastCkptErr.Store(&msg)
		}
	}()
	t.checkpoint()
}

// handle serves one admitted request with per-request panic
// containment: a panic anywhere below becomes a CodeInternal response
// and the worker keeps serving — one poisoned request cannot take the
// tenant down.
func (t *tenant) handle(req *request) {
	defer func() {
		if r := recover(); r != nil {
			t.panics.Add(1)
			req.resp <- response{code: CodeInternal, msg: fmt.Sprint(r)}
		}
	}()
	if !req.deadline.IsZero() && time.Now().After(req.deadline) {
		// The deadline elapsed while queued: reply retryable-typed
		// without touching the detector, so a retry elsewhere cannot
		// double-apply the batch.
		t.deadlineMiss.Add(1)
		req.resp <- response{code: CodeDeadline}
		return
	}
	switch req.kind {
	case reqIngest:
		t.ingest(req)
	case reqSnapshot:
		var buf bytes.Buffer
		if err := t.det.Snapshot(&buf); err != nil {
			req.resp <- response{code: CodeInternal, msg: err.Error()}
			return
		}
		req.resp <- response{snap: buf.Bytes(), t0: t.det.Tick()}
	case reqRestore:
		t.restore(req)
	case reqReplicate:
		t.replicate(req)
	case reqCheckpoint:
		if t.keeper == nil {
			req.resp <- response{code: CodeBadRequest, msg: "tenant has no checkpoint directory"}
			return
		}
		path, err := t.checkpoint()
		if err != nil {
			req.resp <- response{code: CodeInternal, msg: err.Error()}
			return
		}
		req.resp <- response{path: path}
	default:
		req.resp <- response{code: CodeBadRequest, msg: "unknown request kind"}
	}
}

// ingest runs one admitted batch through the detector and replies with
// verdicts (and scores when requested), then checkpoints if the
// cadence came due — at this exact batch boundary, while other tenants
// keep ingesting.
func (t *tenant) ingest(req *request) {
	t0 := t.det.Tick()
	out := make([]bool, req.n)
	var scores []float64
	var err error
	if req.scored {
		scores = make([]float64, req.n)
		_, err = t.det.ProcessBatchScoredErr(req.flat, out, scores)
	} else {
		_, err = t.det.ProcessBatchErr(req.flat, out)
	}
	if err != nil {
		req.resp <- response{code: streamErrCode(err), msg: err.Error()}
		return
	}
	t.sinceCkpt += uint64(req.n)
	req.resp <- response{t0: t0, verdicts: out, scores: scores}
	t.publish()
	t.maybeCheckpoint()
}

// restore swaps in a detector rebuilt from a migrated snapshot — the
// receiving half of live migration. The old detector is closed (its
// goroutines joined) only after the new one decoded cleanly, and the
// restored state is immediately checkpointed so a crash right after
// migration recovers the migrated stream, not the pre-migration one.
func (t *tenant) restore(req *request) {
	d, err := stream.Restore(bytes.NewReader(req.snap), t.cfg)
	if err != nil {
		code := uint8(CodeBadRequest)
		if errors.Is(err, stream.ErrConfigMismatch) {
			code = CodeConflict
		}
		req.resp <- response{code: code, msg: err.Error()}
		return
	}
	t.det.Close()
	t.det = d
	t.sinceCkpt = 0
	if t.keeper != nil {
		if _, err := t.checkpoint(); err != nil {
			// The migrated state is live but not yet durable; the
			// failure is recorded and the next cadence retries.
			t.sinceCkpt = 1
		}
	}
	t.publish()
	req.resp <- response{}
}

// replicate applies one shipped snapshot generation — the standby's
// receiving half of warm-standby replication. The snapshot's framing
// and section CRCs are verified before anything is touched, then the
// generation is checked against the last one accepted from the same
// primary incarnation: a regressing sequence number or tick is the
// divergence signal and is refused with CodeStale, leaving the current
// state live. A new incarnation (failover or primary restart) resets
// the baseline and is followed wholesale, even backwards — the serving
// primary is authoritative. Accepted generations ride the restore
// path, so they are immediately checkpointed when the standby has a
// keeper: a standby crash recovers warm.
func (t *tenant) replicate(req *request) {
	if err := snapshot.Verify(bytes.NewReader(req.snap)); err != nil {
		t.replCorrupt.Add(1)
		req.resp <- response{code: CodeBadRequest, msg: fmt.Sprintf("replicated snapshot failed verification: %v", err)}
		return
	}
	if req.replID == t.replID && t.replID != "" {
		if req.replSeq <= t.replSeq {
			t.replStale.Add(1)
			req.resp <- response{code: CodeStale, msg: fmt.Sprintf("generation %d regresses held %d", req.replSeq, t.replSeq)}
			return
		}
		if req.replTick < t.replTick {
			t.replStale.Add(1)
			req.resp <- response{code: CodeStale, msg: fmt.Sprintf("tick %d regresses held %d", req.replTick, t.replTick)}
			return
		}
	}
	d, err := stream.Restore(bytes.NewReader(req.snap), t.cfg)
	if err != nil {
		code := uint8(CodeBadRequest)
		if errors.Is(err, stream.ErrConfigMismatch) {
			code = CodeConflict
		}
		req.resp <- response{code: code, msg: err.Error()}
		return
	}
	if d.Tick() != req.replTick {
		// The shipped header lied about the state it carries — refuse
		// rather than track a tick the detector does not hold.
		d.Close()
		req.resp <- response{code: CodeBadRequest, msg: fmt.Sprintf("snapshot tick %d does not match declared %d", d.Tick(), req.replTick)}
		return
	}
	t.det.Close()
	t.det = d
	t.replID = req.replID
	t.replSeq = req.replSeq
	t.replTick = req.replTick
	id := req.replID
	t.replLastID.Store(&id)
	t.replLastSeq.Store(req.replSeq)
	t.replLastTick.Store(req.replTick)
	t.replAccepted.Add(1)
	t.sinceCkpt = 0
	if t.keeper != nil {
		if _, err := t.checkpoint(); err != nil {
			t.sinceCkpt = 1
		}
	}
	t.publish()
	req.resp <- response{}
}

// maybeCheckpoint saves a generation when either cadence — points
// ingested or wall time since the last save — has come due. A failed
// save is recorded and serving continues: the previous generations
// are intact by the keeper's rename discipline, and the next boundary
// retries.
func (t *tenant) maybeCheckpoint() {
	if t.keeper == nil || t.sinceCkpt == 0 {
		return
	}
	due := t.opts.CheckpointPoints > 0 && t.sinceCkpt >= t.opts.CheckpointPoints
	if !due && t.opts.CheckpointInterval > 0 && time.Since(t.lastCkpt) >= t.opts.CheckpointInterval {
		due = true
	}
	if due {
		t.checkpoint()
	}
}

// checkpoint saves one generation through the keeper's
// write-temp-fsync-rename discipline and resets the cadence clock on
// success.
func (t *tenant) checkpoint() (string, error) {
	path, _, err := t.keeper.Save(func(w io.Writer) error {
		if t.saveWrap != nil {
			w = t.saveWrap(w)
		}
		return t.det.Snapshot(w)
	})
	if err != nil {
		t.ckptFails.Add(1)
		msg := err.Error()
		t.lastCkptErr.Store(&msg)
		return "", err
	}
	if seq, ok := t.keeper.NewestSeq(); ok {
		t.ckptGen.Store(seq)
	}
	t.sinceCkpt = 0
	t.lastCkpt = time.Now()
	t.publish()
	return path, nil
}

// publish refreshes the tenant's lock-free status snapshot; worker
// goroutine only.
func (t *tenant) publish() {
	st := t.det.Stats()
	t.stats.Store(&st)
}

// streamErrCode maps the detector's typed ingest errors to wire codes.
// Shape and input-contract violations are the caller's bug; ErrClosed
// only surfaces mid-drain.
func streamErrCode(err error) uint8 {
	switch {
	case errors.Is(err, stream.ErrClosed):
		return CodeDraining
	case errors.Is(err, stream.ErrBatchLength),
		errors.Is(err, stream.ErrNonFinite),
		errors.Is(err, stream.ErrScoringDisabled):
		return CodeBadRequest
	default:
		return CodeInternal
	}
}

// TenantStatus is one tenant's health as reported by the stats
// endpoint.
type TenantStatus struct {
	// Name is the tenant's wire name.
	Name string
	// Tick is the number of points the detector has ingested.
	Tick uint64
	// QueueLen and QueueCap describe the admission queue right now.
	QueueLen int
	QueueCap int
	// Accepted, Shed, DeadlineMisses and Panics are lifetime request
	// counters: admitted into the queue, rejected by backpressure,
	// expired before processing, contained worker panics.
	Accepted       uint64
	Shed           uint64
	DeadlineMisses uint64
	Panics         uint64
	// CheckpointFailures counts Saves that failed (previous
	// generations stay intact); LastCheckpointError is the most recent
	// failure's message.
	CheckpointFailures  uint64
	LastCheckpointError string
	// RecoveredTick and RecoveredPath describe startup recovery: the
	// tick the tenant resumed from and the generation it restored.
	// Zero/empty when the tenant started fresh.
	RecoveredTick uint64
	RecoveredPath string
	// ReplAccepted, ReplStale and ReplCorrupt count replication pushes
	// received as a standby: applied, refused for regressing a held
	// generation, refused for failing integrity verification.
	ReplAccepted uint64
	ReplStale    uint64
	ReplCorrupt  uint64
	// ReplPrimary, ReplSeq and ReplTick describe the last accepted
	// replication generation: the shipping primary's incarnation, its
	// sequence number, and the detector tick it carried.
	ReplPrimary string
	ReplSeq     uint64
	ReplTick    uint64
	// Checkpoint is the keeper's newest-generation metadata (zero when
	// the tenant runs without durability).
	Checkpoint snapshot.Info
	// Stream is the detector's full Stats snapshot as of the last
	// batch boundary, calibration counters included.
	Stream stream.Stats
}

// status assembles the tenant's health snapshot; safe from any
// goroutine (the stream stats are the worker's last published copy,
// the keeper metadata comes from the filesystem).
func (t *tenant) status() TenantStatus {
	ts := TenantStatus{
		Name:               t.name,
		QueueLen:           len(t.queue),
		QueueCap:           cap(t.queue),
		Accepted:           t.accepted.Load(),
		Shed:               t.shed.Load(),
		DeadlineMisses:     t.deadlineMiss.Load(),
		Panics:             t.panics.Load(),
		CheckpointFailures: t.ckptFails.Load(),
		RecoveredTick:      t.recoveredTick,
		RecoveredPath:      t.recoveredPath,
		ReplAccepted:       t.replAccepted.Load(),
		ReplStale:          t.replStale.Load(),
		ReplCorrupt:        t.replCorrupt.Load(),
		ReplSeq:            t.replLastSeq.Load(),
		ReplTick:           t.replLastTick.Load(),
	}
	if id := t.replLastID.Load(); id != nil {
		ts.ReplPrimary = *id
	}
	if msg := t.lastCkptErr.Load(); msg != nil {
		ts.LastCheckpointError = *msg
	}
	if st := t.stats.Load(); st != nil {
		ts.Stream = *st
		ts.Tick = st.Tick
	}
	if t.keeper != nil {
		if info, err := t.keeper.Info(); err == nil {
			ts.Checkpoint = info
		}
	}
	return ts
}
