package server

import (
	"errors"
	"strings"
	"testing"

	"spot/internal/stream"
)

// primarySnap drives a primary server's tenant forward by nbatches and
// exports its snapshot plus the tick it was taken at.
func primarySnap(t *testing.T, c *Client, flat []float64, batch, dims, nbatches int) ([]byte, uint64) {
	t.Helper()
	var tick uint64
	for i := 0; i < nbatches; i++ {
		res, err := c.Ingest("r", flat[i*batch*dims:(i+1)*batch*dims], batch, IngestOptions{})
		if err != nil {
			t.Fatal(err)
		}
		tick = res.T0 + uint64(batch)
	}
	snap, err := c.Snapshot("r")
	if err != nil {
		t.Fatal(err)
	}
	return snap, tick
}

// TestPingIdentity pins the extended ping reply: ID, role and the
// newest verified checkpoint generation, without touching any worker
// queue.
func TestPingIdentity(t *testing.T) {
	const dims, batch = 2, 20
	cfg := testStream(dims)
	_, addr := startServer(t, Options{ID: "alpha"}, []TenantConfig{{Name: "r", Stream: cfg, Dir: t.TempDir()}})
	c := dial(t, addr)

	info, err := c.PingInfo()
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "alpha" || info.Role != RolePrimary {
		t.Fatalf("ping identity = %+v, want ID alpha role primary", info)
	}
	if info.Generation != 0 {
		t.Fatalf("fresh server reports generation %d, want 0", info.Generation)
	}

	// A forced checkpoint advances the reported generation.
	flat := genPoints(7, batch, dims)
	if _, err := c.Ingest("r", flat, batch, IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint("r"); err != nil {
		t.Fatal(err)
	}
	info, err = c.PingInfo()
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation == 0 {
		t.Fatal("checkpointed server still reports generation 0")
	}
}

// TestStandbyRefusesIngestUntilPromoted pins the role gate and the
// explicit failover step: a standby refuses ingest with the typed
// ErrNotPrimary (nothing applied), Promote flips it exactly once, and
// after promotion the same connection's ingest serves normally.
func TestStandbyRefusesIngestUntilPromoted(t *testing.T) {
	const dims, batch = 2, 20
	cfg := testStream(dims)
	s, addr := startServer(t, Options{ID: "bravo", Role: RoleStandby}, []TenantConfig{{Name: "r", Stream: cfg}})
	c := dial(t, addr)

	flat := genPoints(9, batch, dims)
	if _, err := c.Ingest("r", flat, batch, IngestOptions{}); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("ingest into standby: got %v, want ErrNotPrimary", err)
	}
	ts, _ := s.Tenant("r")
	if ts.Tick != 0 {
		t.Fatalf("refused ingest advanced the detector to tick %d", ts.Tick)
	}
	if info, _ := c.PingInfo(); info.Role != RoleStandby {
		t.Fatalf("ping role = %v, want standby", info.Role)
	}

	if err := c.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := c.Promote(); err != nil { // idempotent
		t.Fatal(err)
	}
	st, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "primary" || st.Promotions != 1 {
		t.Fatalf("after double promote: role %s promotions %d, want primary/1", st.Role, st.Promotions)
	}
	if _, err := c.Ingest("r", flat, batch, IngestOptions{}); err != nil {
		t.Fatalf("ingest after promotion: %v", err)
	}
}

// TestReplicatePush pins the standby's receive path end to end: an
// accepted generation swaps the detector in at the declared tick and is
// immediately checkpointed; pushes that regress the held generation
// from the same incarnation are refused with ErrStaleGeneration while a
// new incarnation resets the baseline; corrupt snapshots are refused
// before anything is touched; and a primary target refuses the push
// outright with ErrNotStandby.
func TestReplicatePush(t *testing.T) {
	const dims, batch, batches = 3, 25, 6
	cfg := testStream(dims)
	flat := genPoints(11, batch*batches, dims)

	_, priAddr := startServer(t, Options{ID: "pri"}, []TenantConfig{{Name: "r", Stream: cfg}})
	sb, sbAddr := startServer(t, Options{ID: "sb", Role: RoleStandby}, []TenantConfig{{Name: "r", Stream: cfg, Dir: t.TempDir()}})
	cp, cs := dial(t, priAddr), dial(t, sbAddr)

	// Shipping into a primary is mis-wiring, refused typed.
	snap1, tick1 := primarySnap(t, cp, flat, batch, dims, batches/2)
	if err := cp.Replicate("r", "pri-1", 1, tick1, snap1); !errors.Is(err, ErrNotStandby) {
		t.Fatalf("replicate into primary: got %v, want ErrNotStandby", err)
	}

	// First generation lands and is immediately durable.
	if err := cs.Replicate("r", "pri-1", 1, tick1, snap1); err != nil {
		t.Fatal(err)
	}
	ts, _ := sb.Tenant("r")
	if ts.Tick != tick1 || ts.ReplAccepted != 1 || ts.ReplSeq != 1 || ts.ReplPrimary != "pri-1" {
		t.Fatalf("after first push: %+v", ts)
	}
	if ts.Checkpoint.Generations == 0 || !ts.Checkpoint.Verified {
		t.Fatalf("accepted generation not checkpointed: %+v", ts.Checkpoint)
	}

	// Same incarnation must strictly advance: a replayed or regressing
	// sequence number is the divergence signal.
	if err := cs.Replicate("r", "pri-1", 1, tick1, snap1); !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("replayed generation: got %v, want ErrStaleGeneration", err)
	}

	snap2, tick2 := primarySnap(t, cp, flat[batches/2*batch*dims:], batch, dims, batches/2)
	if err := cs.Replicate("r", "pri-1", 2, tick2, snap2); err != nil {
		t.Fatal(err)
	}
	// A later sequence number carrying an older tick is equally stale.
	if err := cs.Replicate("r", "pri-1", 3, tick1, snap1); !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("regressing tick: got %v, want ErrStaleGeneration", err)
	}

	// Corrupt bytes are refused before anything is touched.
	if err := cs.Replicate("r", "pri-1", 3, tick2, snap2[:len(snap2)-5]); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("corrupt snapshot: got %v, want ErrBadRequest", err)
	}
	// A header lying about the state it carries is refused too.
	if err := cs.Replicate("r", "pri-1", 3, tick2+1, snap2); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("mismatched declared tick: got %v, want ErrBadRequest", err)
	}

	// A new incarnation (the primary restarted) resets the baseline and
	// is followed even backwards: the serving primary is authoritative.
	if err := cs.Replicate("r", "pri-2", 1, tick1, snap1); err != nil {
		t.Fatalf("new incarnation refused: %v", err)
	}
	ts, _ = sb.Tenant("r")
	if ts.Tick != tick1 || ts.ReplPrimary != "pri-2" || ts.ReplSeq != 1 {
		t.Fatalf("after incarnation reset: %+v", ts)
	}
	if ts.ReplStale != 2 || ts.ReplCorrupt != 1 {
		t.Fatalf("refusal counters: stale %d corrupt %d, want 2/1", ts.ReplStale, ts.ReplCorrupt)
	}
}

// TestSnapshotTenantInProcess pins the shipper's in-process snapshot
// entry: it goes through the worker queue like a wire request, returns
// the tick the snapshot was taken at, and refuses before Serve.
func TestSnapshotTenantInProcess(t *testing.T) {
	const dims, batch = 2, 20
	cfg := testStream(dims)

	unstarted, err := New(Options{}, []TenantConfig{{Name: "r", Stream: cfg}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := unstarted.SnapshotTenant("r"); !errors.Is(err, ErrNotServing) {
		t.Fatalf("snapshot before Serve: got %v, want ErrNotServing", err)
	}

	s, addr := startServer(t, Options{}, []TenantConfig{{Name: "r", Stream: cfg}})
	c := dial(t, addr)
	flat := genPoints(3, batch, dims)
	if _, err := c.Ingest("r", flat, batch, IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	snap, tick, err := s.SnapshotTenant("r")
	if err != nil {
		t.Fatal(err)
	}
	if tick != batch {
		t.Fatalf("snapshot tick %d, want %d", tick, batch)
	}
	d, err := stream.Restore(strings.NewReader(string(snap)), cfg)
	if err != nil {
		t.Fatalf("in-process snapshot does not restore: %v", err)
	}
	defer d.Close()
	if d.Tick() != uint64(batch) {
		t.Fatalf("restored tick %d, want %d", d.Tick(), batch)
	}
	if _, _, err := s.SnapshotTenant("nope"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant: got %v, want ErrUnknownTenant", err)
	}
}
