package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ClientOptions tunes a client connection's I/O deadlines. Zero
// values take the documented defaults; a negative value disables that
// deadline (the pre-deadline behavior: a hung server blocks forever).
type ClientOptions struct {
	// DialTimeout bounds the TCP connect. Default 10s.
	DialTimeout time.Duration
	// ReadTimeout bounds waiting for one reply frame after a request
	// was written, the hung-server guard. Snapshot transfers of large
	// tenants ride the same budget — size it for the biggest state you
	// migrate. Default 30s.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one request frame. Default 30s.
	WriteTimeout time.Duration
}

func (o *ClientOptions) defaults() {
	if o.DialTimeout == 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.ReadTimeout == 0 {
		o.ReadTimeout = 30 * time.Second
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 30 * time.Second
	}
}

// Client speaks the spotd wire protocol over one TCP connection.
// Requests on a single client are serialized (one in flight at a
// time); open several clients for parallelism. All methods surface
// the server's typed refusals as the package's typed errors — ErrShed
// and ErrDeadline mean nothing was applied and the call is safe to
// retry.
//
// Transport faults are terminal: after any I/O-level error (ErrTimeout
// included) the connection is closed and every subsequent call fails
// fast, because a late reply to a timed-out request would otherwise be
// mis-matched to the next one. Dial a fresh client to re-establish;
// whether the failed request was applied is unknowable at this layer —
// the replica package's failover client encodes that distinction.
type Client struct {
	opts ClientOptions

	mu     sync.Mutex
	c      net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	broken error // first transport fault; poisons all later calls
}

// Dial connects to a spotd server with default deadlines.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, ClientOptions{})
}

// DialOptions connects to a spotd server with explicit deadlines.
func DialOptions(addr string, opts ClientOptions) (*Client, error) {
	opts.defaults()
	var c net.Conn
	var err error
	if opts.DialTimeout > 0 {
		c, err = net.DialTimeout("tcp", addr, opts.DialTimeout)
	} else {
		c, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, wrapTimeout(err)
	}
	return &Client{opts: opts, c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.c.Close() }

// wrapTimeout folds net-level timeouts into the typed ErrTimeout so
// callers can branch without knowing net.Error.
func wrapTimeout(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	return err
}

// roundTrip sends one frame and reads the reply, decoding error frames
// into typed errors. Writes and reads run under the configured
// deadlines; any transport fault closes and poisons the connection.
func (c *Client) roundTrip(typ uint8, head, body []byte) (uint8, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return 0, nil, fmt.Errorf("server: connection previously failed: %w", c.broken)
	}
	fail := func(err error) (uint8, []byte, error) {
		err = wrapTimeout(err)
		c.broken = err
		c.c.Close()
		return 0, nil, err
	}
	if c.opts.WriteTimeout > 0 {
		c.c.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout))
	}
	if err := writeFrame(c.bw, typ, head, body); err != nil {
		return fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return fail(err)
	}
	if c.opts.ReadTimeout > 0 {
		c.c.SetReadDeadline(time.Now().Add(c.opts.ReadTimeout))
	}
	rtyp, payload, err := readFrame(c.br)
	if err != nil {
		return fail(err)
	}
	if rtyp == msgError {
		return 0, nil, decodeError(payload)
	}
	return rtyp, payload, nil
}

// IngestOptions tunes one Ingest call.
type IngestOptions struct {
	// Scored requests ensemble scores alongside verdicts; the tenant
	// must have Scoring configured.
	Scored bool
	// Deadline is the request's time budget: if the tenant worker has
	// not reached the batch when it expires, the server replies
	// ErrDeadline without applying anything. Zero: no deadline.
	Deadline time.Duration
}

// IngestResult is a successful batch's outcome.
type IngestResult struct {
	// T0 is the stream tick before the batch: point i of the batch is
	// stream tick T0+i+1. A client replaying after a crash compares T0
	// against the recovered tick to find where to resume.
	T0 uint64
	// Verdicts holds one projected-outlier verdict per point.
	Verdicts []bool
	// Scores holds the ensemble scores when Scored was requested, nil
	// otherwise.
	Scores []float64
}

// Ingest streams one batch of points points (len(flat) = points*dims,
// row-major) into a tenant and returns its verdicts.
func (c *Client) Ingest(tenant string, flat []float64, points int, o IngestOptions) (IngestResult, error) {
	if points < 1 || len(flat)%points != 0 {
		return IngestResult{}, fmt.Errorf("%w: %d values over %d points", ErrBadRequest, len(flat), points)
	}
	head, err := appendName(nil, tenant)
	if err != nil {
		return IngestResult{}, err
	}
	var flags uint8
	if o.Scored {
		flags |= 1
	}
	head = append(head, flags)
	head = binary.LittleEndian.AppendUint32(head, uint32(o.Deadline/time.Millisecond))
	head = binary.LittleEndian.AppendUint32(head, uint32(points))
	body := appendF64s(make([]byte, 0, 8*len(flat)), flat)
	rtyp, payload, err := c.roundTrip(msgIngest, head, body)
	if err != nil {
		return IngestResult{}, err
	}
	if rtyp != msgVerdicts {
		return IngestResult{}, fmt.Errorf("%w: unexpected reply type %#x", ErrInternal, rtyp)
	}
	b := wireBuf{data: payload}
	res := IngestResult{T0: b.u64()}
	n := int(b.u32())
	scored := b.u8()
	if b.err != nil || n != points {
		return IngestResult{}, fmt.Errorf("%w: malformed verdict frame", ErrInternal)
	}
	bits := b.take((n + 7) / 8)
	if bits == nil {
		return IngestResult{}, fmt.Errorf("%w: malformed verdict frame", ErrInternal)
	}
	res.Verdicts = make([]bool, n)
	for i := range res.Verdicts {
		res.Verdicts[i] = bits[i>>3]&(1<<(uint(i)&7)) != 0
	}
	if scored == 1 {
		res.Scores = make([]float64, n)
		b.f64s(res.Scores)
		if b.err != nil {
			return IngestResult{}, fmt.Errorf("%w: malformed score frame", ErrInternal)
		}
	}
	return res, nil
}

// PingInfo is a ping reply's server identity: who answered, in which
// replication role, and the newest verified checkpoint generation it
// holds — enough to find the primary in a failover list and to detect
// a mis-wired replication target before shipping state into it.
type PingInfo struct {
	// ID is the server's wire identity (spotd -id).
	ID string
	// Role is the server's current replication role.
	Role Role
	// Generation is the newest verified checkpoint generation across
	// the server's tenants (zero without durability).
	Generation uint64
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.PingInfo()
	return err
}

// PingInfo checks liveness and returns the server's identity, role
// and newest verified checkpoint generation.
func (c *Client) PingInfo() (PingInfo, error) {
	_, payload, err := c.roundTrip(msgPing, nil, nil)
	if err != nil {
		return PingInfo{}, err
	}
	b := wireBuf{data: payload}
	info := PingInfo{Role: Role(b.u8()), Generation: b.u64()}
	info.ID = b.name()
	if b.err != nil {
		return PingInfo{}, fmt.Errorf("%w: malformed ping reply", ErrInternal)
	}
	return info, nil
}

// Promote flips the server to the primary role — the explicit
// failover step. Idempotent on a server already primary.
func (c *Client) Promote() error {
	_, _, err := c.roundTrip(msgPromote, nil, nil)
	return err
}

// Replicate ships one snapshot generation into a standby tenant: the
// sending half of warm-standby replication. primaryID names the
// shipping primary's incarnation; seq and tick must strictly advance
// between pushes of the same incarnation or the standby refuses with
// ErrStaleGeneration (the divergence signal). A primary target refuses
// with ErrNotStandby; a corrupt snapshot with ErrBadRequest.
func (c *Client) Replicate(tenant, primaryID string, seq, tick uint64, snap []byte) error {
	head, err := appendName(nil, tenant)
	if err != nil {
		return err
	}
	if head, err = appendName(head, primaryID); err != nil {
		return err
	}
	head = binary.LittleEndian.AppendUint64(head, seq)
	head = binary.LittleEndian.AppendUint64(head, tick)
	_, _, err = c.roundTrip(msgReplicate, head, snap)
	return err
}

// TenantStats fetches one tenant's status.
func (c *Client) TenantStats(tenant string) (TenantStatus, error) {
	head, err := appendName(nil, tenant)
	if err != nil {
		return TenantStatus{}, err
	}
	_, payload, err := c.roundTrip(msgStats, head, nil)
	if err != nil {
		return TenantStatus{}, err
	}
	var ts TenantStatus
	if err := json.Unmarshal(payload, &ts); err != nil {
		return TenantStatus{}, fmt.Errorf("%w: %v", ErrInternal, err)
	}
	return ts, nil
}

// ServerStats fetches the server-wide status.
func (c *Client) ServerStats() (Status, error) {
	_, payload, err := c.roundTrip(msgStats, []byte{0}, nil)
	if err != nil {
		return Status{}, err
	}
	var st Status
	if err := json.Unmarshal(payload, &st); err != nil {
		return Status{}, fmt.Errorf("%w: %v", ErrInternal, err)
	}
	return st, nil
}

// Snapshot streams the tenant's full detector state out — the sending
// half of live migration. The snapshot is taken at a batch boundary by
// the tenant's own worker, so it is exactly the state an uninterrupted
// detector would checkpoint there.
func (c *Client) Snapshot(tenant string) ([]byte, error) {
	head, err := appendName(nil, tenant)
	if err != nil {
		return nil, err
	}
	rtyp, payload, err := c.roundTrip(msgSnapshot, head, nil)
	if err != nil {
		return nil, err
	}
	if rtyp != msgSnapRep {
		return nil, fmt.Errorf("%w: unexpected reply type %#x", ErrInternal, rtyp)
	}
	return payload, nil
}

// Restore replaces the tenant's detector state with a snapshot taken
// elsewhere — the receiving half of live migration. The tenant's
// configuration must match the snapshot (ErrConflict otherwise), and
// on success the migrated state is immediately checkpointed.
func (c *Client) Restore(tenant string, snap []byte) error {
	head, err := appendName(nil, tenant)
	if err != nil {
		return err
	}
	_, _, err = c.roundTrip(msgRestore, head, snap)
	return err
}

// Checkpoint forces a durable checkpoint now and returns its path on
// the server.
func (c *Client) Checkpoint(tenant string) (string, error) {
	head, err := appendName(nil, tenant)
	if err != nil {
		return "", err
	}
	_, payload, err := c.roundTrip(msgCheckpoint, head, nil)
	if err != nil {
		return "", err
	}
	return string(payload), nil
}
