package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client speaks the spotd wire protocol over one TCP connection.
// Requests on a single client are serialized (one in flight at a
// time); open several clients for parallelism. All methods surface
// the server's typed refusals as the package's typed errors — ErrShed
// and ErrDeadline mean nothing was applied and the call is safe to
// retry.
type Client struct {
	mu sync.Mutex
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// Dial connects to a spotd server.
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.c.Close() }

// roundTrip sends one frame and reads the reply, decoding error frames
// into typed errors.
func (c *Client) roundTrip(typ uint8, head, body []byte) (uint8, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.bw, typ, head, body); err != nil {
		return 0, nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, nil, err
	}
	rtyp, payload, err := readFrame(c.br)
	if err != nil {
		return 0, nil, err
	}
	if rtyp == msgError {
		return 0, nil, decodeError(payload)
	}
	return rtyp, payload, nil
}

// IngestOptions tunes one Ingest call.
type IngestOptions struct {
	// Scored requests ensemble scores alongside verdicts; the tenant
	// must have Scoring configured.
	Scored bool
	// Deadline is the request's time budget: if the tenant worker has
	// not reached the batch when it expires, the server replies
	// ErrDeadline without applying anything. Zero: no deadline.
	Deadline time.Duration
}

// IngestResult is a successful batch's outcome.
type IngestResult struct {
	// T0 is the stream tick before the batch: point i of the batch is
	// stream tick T0+i+1. A client replaying after a crash compares T0
	// against the recovered tick to find where to resume.
	T0 uint64
	// Verdicts holds one projected-outlier verdict per point.
	Verdicts []bool
	// Scores holds the ensemble scores when Scored was requested, nil
	// otherwise.
	Scores []float64
}

// Ingest streams one batch of points points (len(flat) = points*dims,
// row-major) into a tenant and returns its verdicts.
func (c *Client) Ingest(tenant string, flat []float64, points int, o IngestOptions) (IngestResult, error) {
	if points < 1 || len(flat)%points != 0 {
		return IngestResult{}, fmt.Errorf("%w: %d values over %d points", ErrBadRequest, len(flat), points)
	}
	head, err := appendName(nil, tenant)
	if err != nil {
		return IngestResult{}, err
	}
	var flags uint8
	if o.Scored {
		flags |= 1
	}
	head = append(head, flags)
	head = binary.LittleEndian.AppendUint32(head, uint32(o.Deadline/time.Millisecond))
	head = binary.LittleEndian.AppendUint32(head, uint32(points))
	body := appendF64s(make([]byte, 0, 8*len(flat)), flat)
	rtyp, payload, err := c.roundTrip(msgIngest, head, body)
	if err != nil {
		return IngestResult{}, err
	}
	if rtyp != msgVerdicts {
		return IngestResult{}, fmt.Errorf("%w: unexpected reply type %#x", ErrInternal, rtyp)
	}
	b := wireBuf{data: payload}
	res := IngestResult{T0: b.u64()}
	n := int(b.u32())
	scored := b.u8()
	if b.err != nil || n != points {
		return IngestResult{}, fmt.Errorf("%w: malformed verdict frame", ErrInternal)
	}
	bits := b.take((n + 7) / 8)
	if bits == nil {
		return IngestResult{}, fmt.Errorf("%w: malformed verdict frame", ErrInternal)
	}
	res.Verdicts = make([]bool, n)
	for i := range res.Verdicts {
		res.Verdicts[i] = bits[i>>3]&(1<<(uint(i)&7)) != 0
	}
	if scored == 1 {
		res.Scores = make([]float64, n)
		b.f64s(res.Scores)
		if b.err != nil {
			return IngestResult{}, fmt.Errorf("%w: malformed score frame", ErrInternal)
		}
	}
	return res, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, _, err := c.roundTrip(msgPing, nil, nil)
	return err
}

// TenantStats fetches one tenant's status.
func (c *Client) TenantStats(tenant string) (TenantStatus, error) {
	head, err := appendName(nil, tenant)
	if err != nil {
		return TenantStatus{}, err
	}
	_, payload, err := c.roundTrip(msgStats, head, nil)
	if err != nil {
		return TenantStatus{}, err
	}
	var ts TenantStatus
	if err := json.Unmarshal(payload, &ts); err != nil {
		return TenantStatus{}, fmt.Errorf("%w: %v", ErrInternal, err)
	}
	return ts, nil
}

// ServerStats fetches the server-wide status.
func (c *Client) ServerStats() (Status, error) {
	_, payload, err := c.roundTrip(msgStats, []byte{0}, nil)
	if err != nil {
		return Status{}, err
	}
	var st Status
	if err := json.Unmarshal(payload, &st); err != nil {
		return Status{}, fmt.Errorf("%w: %v", ErrInternal, err)
	}
	return st, nil
}

// Snapshot streams the tenant's full detector state out — the sending
// half of live migration. The snapshot is taken at a batch boundary by
// the tenant's own worker, so it is exactly the state an uninterrupted
// detector would checkpoint there.
func (c *Client) Snapshot(tenant string) ([]byte, error) {
	head, err := appendName(nil, tenant)
	if err != nil {
		return nil, err
	}
	rtyp, payload, err := c.roundTrip(msgSnapshot, head, nil)
	if err != nil {
		return nil, err
	}
	if rtyp != msgSnapRep {
		return nil, fmt.Errorf("%w: unexpected reply type %#x", ErrInternal, rtyp)
	}
	return payload, nil
}

// Restore replaces the tenant's detector state with a snapshot taken
// elsewhere — the receiving half of live migration. The tenant's
// configuration must match the snapshot (ErrConflict otherwise), and
// on success the migrated state is immediately checkpointed.
func (c *Client) Restore(tenant string, snap []byte) error {
	head, err := appendName(nil, tenant)
	if err != nil {
		return err
	}
	_, _, err = c.roundTrip(msgRestore, head, snap)
	return err
}

// Checkpoint forces a durable checkpoint now and returns its path on
// the server.
func (c *Client) Checkpoint(tenant string) (string, error) {
	head, err := appendName(nil, tenant)
	if err != nil {
		return "", err
	}
	_, payload, err := c.roundTrip(msgCheckpoint, head, nil)
	if err != nil {
		return "", err
	}
	return string(payload), nil
}
