package server

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spot/internal/stream"
)

// testStream builds a small scoring detector config with warmup off so
// verdicts appear quickly.
func testStream(dims int) stream.Config {
	cfg := stream.DefaultConfig(dims)
	cfg.Scoring = true
	cfg.TopK = 4
	cfg.Warmup = 0
	return cfg
}

// genPoints produces a deterministic flat stream of n points with a
// few planted outliers so verdicts are non-trivial.
func genPoints(seed int64, n, dims int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	flat := make([]float64, n*dims)
	for i := 0; i < n; i++ {
		for d := 0; d < dims; d++ {
			v := 0.3 + 0.1*rng.Float64()
			if i%37 == 19 {
				v = rng.Float64() // planted outlier: uniform over [0,1)
			}
			flat[i*dims+d] = v
		}
	}
	return flat
}

// startServer builds and serves a server on a loopback listener,
// returning the dial address. The server is shut down at test cleanup.
func startServer(t *testing.T, opts Options, tenants []TenantConfig) (*Server, string) {
	t.Helper()
	s, err := New(opts, tenants)
	if err != nil {
		t.Fatal(err)
	}
	return serveExisting(t, s)
}

// serveExisting serves an already-built server on a loopback listener
// with cleanup, for tests that install hooks before start.
func serveExisting(t *testing.T, s *Server) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		<-serveDone
	})
	return s, ln.Addr().String()
}

// dial connects a client, closed at test cleanup.
func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestIngestMatchesOracle is the core serving contract: verdicts and
// scores returned over the wire are bit-identical to a directly-driven
// detector consuming the same stream.
func TestIngestMatchesOracle(t *testing.T) {
	const dims, batch, batches = 4, 25, 8
	cfg := testStream(dims)
	_, addr := startServer(t, Options{}, []TenantConfig{{Name: "a", Stream: cfg}})
	c := dial(t, addr)

	oracle, err := stream.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	flat := genPoints(1, batch*batches, dims)
	for i := 0; i < batches; i++ {
		chunk := flat[i*batch*dims : (i+1)*batch*dims]
		res, err := c.Ingest("a", chunk, batch, IngestOptions{Scored: true})
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if res.T0 != uint64(i*batch) {
			t.Fatalf("batch %d: T0 %d, want %d", i, res.T0, i*batch)
		}
		wantV := make([]bool, batch)
		wantS := make([]float64, batch)
		if _, err := oracle.ProcessBatchScoredErr(chunk, wantV, wantS); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < batch; j++ {
			if res.Verdicts[j] != wantV[j] {
				t.Fatalf("batch %d point %d: verdict %v, oracle %v", i, j, res.Verdicts[j], wantV[j])
			}
			if res.Scores[j] != wantS[j] {
				t.Fatalf("batch %d point %d: score %v, oracle %v", i, j, res.Scores[j], wantS[j])
			}
		}
	}

	st, err := c.TenantStats("a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Tick != batch*batches || st.Accepted != batches {
		t.Fatalf("tenant stats: tick %d accepted %d, want %d/%d", st.Tick, st.Accepted, batch*batches, batches)
	}
}

// TestUnscoredIngest covers the verdict-only wire path (no score
// section in the reply).
func TestUnscoredIngest(t *testing.T) {
	cfg := testStream(3)
	cfg.Scoring = false
	cfg.TopK = 0
	_, addr := startServer(t, Options{}, []TenantConfig{{Name: "p", Stream: cfg}})
	c := dial(t, addr)

	flat := genPoints(2, 50, 3)
	res, err := c.Ingest("p", flat, 50, IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores != nil {
		t.Fatalf("unscored ingest returned scores")
	}
	if len(res.Verdicts) != 50 {
		t.Fatalf("got %d verdicts, want 50", len(res.Verdicts))
	}
}

// TestTypedRefusals pins the wire error taxonomy for caller bugs:
// unknown tenants, malformed batches, input-contract violations and
// scoring requests against unscored tenants.
func TestTypedRefusals(t *testing.T) {
	cfg := testStream(4)
	cfg.Scoring = false
	cfg.TopK = 0
	_, addr := startServer(t, Options{}, []TenantConfig{{Name: "a", Stream: cfg}})
	c := dial(t, addr)

	if _, err := c.Ingest("ghost", genPoints(3, 2, 4), 2, IngestOptions{}); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant: got %v", err)
	}
	if _, err := c.TenantStats("ghost"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant stats: got %v", err)
	}
	// Wrong shape: 3 values cannot be 2 points of 4 dims.
	if _, err := c.Ingest("a", []float64{1, 2, 3}, 2, IngestOptions{}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("bad shape: got %v", err)
	}
	// Right shape for 1 point of 3 dims, but the tenant is 4-dim.
	if _, err := c.Ingest("a", []float64{1, 2, 3}, 1, IngestOptions{}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("dims mismatch: got %v", err)
	}
	// NaN violates the detector's input contract; the typed stream
	// error maps to BadRequest and nothing is applied.
	bad := []float64{0.1, 0.2, 0.3, 0.4}
	bad[2] = nanValue()
	if _, err := c.Ingest("a", bad, 1, IngestOptions{}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("non-finite point: got %v", err)
	}
	// Scoring against an unscored tenant.
	good := []float64{0.1, 0.2, 0.3, 0.4}
	if _, err := c.Ingest("a", good, 1, IngestOptions{Scored: true}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("scored ingest on unscored tenant: got %v", err)
	}
	st, err := c.TenantStats("a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Tick != 0 {
		t.Fatalf("refused requests advanced the stream to tick %d", st.Tick)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after refusals: %v", err)
	}
}

// nanValue hides the NaN from constant folding.
func nanValue() float64 {
	zero := 0.0
	return zero / zero
}

// TestMalformedFrame feeds the server a frame with an invalid declared
// length: the server replies with the typed refusal, counts the fault,
// and drops only that connection.
func TestMalformedFrame(t *testing.T) {
	s, addr := startServer(t, Options{}, []TenantConfig{{Name: "a", Stream: testStream(2)}})

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Declared payload length 0 is below the type-byte minimum.
	if _, err := raw.Write([]byte{0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgError {
		t.Fatalf("got reply type %#x, want error frame", typ)
	}
	if err := decodeError(payload); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("malformed frame: got %v", err)
	}
	if got := s.badFrames.Load(); got != 1 {
		t.Fatalf("badFrames = %d, want 1", got)
	}
	// The rest of the server is unharmed.
	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	st, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.BadFrames != 1 || st.Draining {
		t.Fatalf("server status after malformed frame: %+v", st)
	}
}

// TestSharedDecayTenants checks that tenants sharing a Lambda (and so
// one decay table) still produce verdicts identical to isolated
// oracles — sharing is an allocation optimisation, never a coupling.
func TestSharedDecayTenants(t *testing.T) {
	cfgA, cfgB := testStream(3), testStream(3)
	_, addr := startServer(t, Options{}, []TenantConfig{
		{Name: "a", Stream: cfgA},
		{Name: "b", Stream: cfgB},
	})
	c := dial(t, addr)

	flatA := genPoints(10, 120, 3)
	flatB := genPoints(11, 120, 3)
	oa, err := stream.New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	defer oa.Close()
	ob, err := stream.New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	defer ob.Close()

	for i := 0; i < 4; i++ {
		chunkA := flatA[i*30*3 : (i+1)*30*3]
		chunkB := flatB[i*30*3 : (i+1)*30*3]
		resA, err := c.Ingest("a", chunkA, 30, IngestOptions{})
		if err != nil {
			t.Fatal(err)
		}
		resB, err := c.Ingest("b", chunkB, 30, IngestOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wantA, wantB := make([]bool, 30), make([]bool, 30)
		oa.ProcessBatch(chunkA, wantA)
		ob.ProcessBatch(chunkB, wantB)
		for j := 0; j < 30; j++ {
			if resA.Verdicts[j] != wantA[j] || resB.Verdicts[j] != wantB[j] {
				t.Fatalf("batch %d point %d: tenant verdicts diverged from isolated oracles", i, j)
			}
		}
	}
}

// TestDrainAndRecover is the in-process half of the crash-recovery
// contract: a graceful Shutdown answers every admitted batch, takes a
// final checkpoint, and a new server over the same directory resumes
// at the drained tick with bit-identical verdicts on the suffix.
func TestDrainAndRecover(t *testing.T) {
	const dims, batch = 3, 40
	cfg := testStream(dims)
	dir := filepath.Join(t.TempDir(), "ckpt")
	flat := genPoints(7, 4*batch, dims)

	oracle, err := stream.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	want := make([]bool, 4*batch)
	oracle.ProcessBatch(flat, want)

	s1, err := New(Options{}, []TenantConfig{{Name: "a", Stream: cfg, Dir: dir, Keep: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done1 := make(chan error, 1)
	go func() { done1 <- s1.Serve(ln) }()
	c1, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := c1.Ingest("a", flat[i*batch*dims:(i+1)*batch*dims], batch, IngestOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range res.Verdicts {
			if v != want[i*batch+j] {
				t.Fatalf("pre-drain batch %d point %d diverged", i, j)
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done1; err != nil {
		t.Fatalf("serve returned %v", err)
	}
	// Requests after the drain are refused, typed.
	if _, err := c1.Ingest("a", flat[:batch*dims], batch, IngestOptions{}); err == nil {
		t.Fatal("ingest after drain succeeded")
	}
	c1.Close()

	// A new server over the same directory resumes at the drained tick.
	s2, addr := startServer(t, Options{}, []TenantConfig{{Name: "a", Stream: cfg, Dir: dir, Keep: 2}})
	ts, ok := s2.Tenant("a")
	if !ok {
		t.Fatal("tenant missing after recovery")
	}
	if ts.RecoveredTick != 2*batch {
		t.Fatalf("recovered at tick %d, want %d", ts.RecoveredTick, 2*batch)
	}
	if ts.RecoveredPath == "" || !ts.Checkpoint.Verified {
		t.Fatalf("recovery metadata incomplete: %+v", ts)
	}
	c2 := dial(t, addr)
	for i := 2; i < 4; i++ {
		res, err := c2.Ingest("a", flat[i*batch*dims:(i+1)*batch*dims], batch, IngestOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.T0 != uint64(i*batch) {
			t.Fatalf("post-recovery batch %d: T0 %d, want %d", i, res.T0, i*batch)
		}
		for j, v := range res.Verdicts {
			if v != want[i*batch+j] {
				t.Fatalf("post-recovery batch %d point %d diverged from uninterrupted oracle", i, j)
			}
		}
	}
}

// TestShutdownIdempotent pins that a second Shutdown returns
// immediately without error.
func TestShutdownIdempotent(t *testing.T) {
	s, _ := startServer(t, Options{}, []TenantConfig{{Name: "a", Stream: testStream(2)}})
	ctx := context.Background()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestNewValidation covers constructor refusals: no tenants, duplicate
// names, oversized names, invalid stream configs.
func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}, nil); err == nil {
		t.Fatal("no tenants accepted")
	}
	cfg := testStream(2)
	if _, err := New(Options{}, []TenantConfig{
		{Name: "dup", Stream: cfg}, {Name: "dup", Stream: cfg},
	}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate tenants: got %v", err)
	}
	if _, err := New(Options{}, []TenantConfig{{Name: "", Stream: cfg}}); err == nil {
		t.Fatal("empty tenant name accepted")
	}
	bad := cfg
	bad.Dims = 0
	if _, err := New(Options{}, []TenantConfig{{Name: "a", Stream: bad}}); err == nil {
		t.Fatal("invalid stream config accepted")
	}
}
