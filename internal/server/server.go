package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"spot/internal/core"
)

// Role is a server's position in a replication pair: a primary serves
// ingest and ships snapshot generations; a standby refuses ingest with
// CodeNotPrimary and accepts replication pushes until promoted.
type Role uint8

// The two server roles. RolePrimary is the zero value, so an
// unconfigured server behaves exactly as before replication existed.
const (
	RolePrimary Role = iota
	RoleStandby
)

// String names the role for stats and logs.
func (r Role) String() string {
	if r == RoleStandby {
		return "standby"
	}
	return "primary"
}

// ErrNotServing marks an in-process request (e.g. a replication
// shipper's snapshot) made before Serve started the tenant workers.
var ErrNotServing = errors.New("server: not serving yet")

// Options tunes the server's robustness machinery; zero values take
// the documented defaults.
type Options struct {
	// QueueDepth is each tenant's admission-queue capacity: the most
	// ingest batches that may be queued before new ones shed with
	// CodeShed. Default 64.
	QueueDepth int
	// CheckpointPoints checkpoints a tenant after this many ingested
	// points since its last save. 0 disables the points cadence.
	CheckpointPoints uint64
	// CheckpointInterval checkpoints a tenant when this much wall time
	// passed since its last save and new points arrived. 0 disables
	// the time cadence. With both cadences zero, tenants with a
	// checkpoint directory still checkpoint on drain and migration.
	CheckpointInterval time.Duration
	// MaxDeadline caps a client-requested deadline budget. Default 1m.
	MaxDeadline time.Duration
	// ID names this server on the wire: ping replies and replication
	// pushes carry it so clients and standbys can detect mis-wiring.
	// Default "spotd".
	ID string
	// Role is the server's starting replication role. RolePrimary (the
	// zero value) serves ingest; RoleStandby refuses it until Promote.
	Role Role
}

func (o *Options) defaults() {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.MaxDeadline <= 0 {
		o.MaxDeadline = time.Minute
	}
	if o.ID == "" {
		o.ID = "spotd"
	}
}

// Server hosts a registry of tenant detectors behind the wire
// protocol. Build with New, start with Serve or ListenAndServe, stop
// with Shutdown.
type Server struct {
	opts    Options
	tenants map[string]*tenant

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining atomic.Bool
	started  bool

	connWG sync.WaitGroup

	// role flips exactly once, standby → primary, on Promote.
	role atomic.Uint32

	// replStatus, when set, reports the replication shipper's health
	// into the stats endpoint (SetReplicationStatus).
	replStatus atomic.Pointer[func() ReplicationStatus]

	badFrames  atomic.Uint64
	connPanics atomic.Uint64
	promotions atomic.Uint64
}

// New builds a server hosting the given tenants. Each tenant with a
// checkpoint directory recovers from its newest verifiable generation;
// tenants sharing a Lambda share one immutable decay table.
func New(opts Options, tenants []TenantConfig) (*Server, error) {
	opts.defaults()
	if len(tenants) == 0 {
		return nil, errors.New("server: no tenants configured")
	}
	s := &Server{
		opts:    opts,
		tenants: make(map[string]*tenant, len(tenants)),
		conns:   make(map[net.Conn]struct{}),
	}
	decays := make(map[float64]*core.DecayTable)
	for _, tc := range tenants {
		if _, dup := s.tenants[tc.Name]; dup {
			return nil, fmt.Errorf("server: duplicate tenant %q", tc.Name)
		}
		if tc.Stream.Decay == nil {
			d, ok := decays[tc.Stream.Lambda]
			if !ok {
				d = core.NewDecayTable(tc.Stream.Lambda)
				decays[tc.Stream.Lambda] = d
			}
			tc.Stream.Decay = d
		}
		t, err := newTenant(tc, opts)
		if err != nil {
			return nil, err
		}
		s.tenants[tc.Name] = t
	}
	s.role.Store(uint32(opts.Role))
	return s, nil
}

// ID returns the server's wire identity.
func (s *Server) ID() string { return s.opts.ID }

// Role returns the server's current replication role.
func (s *Server) Role() Role { return Role(s.role.Load()) }

// Primary reports whether the server currently holds the primary role.
func (s *Server) Primary() bool { return s.Role() == RolePrimary }

// Promote flips the server to the primary role — the explicit
// failover step after the old primary died. Idempotent; once primary,
// a server never demotes itself (restart it as a standby instead), so
// there is no window where neither side serves ingest.
func (s *Server) Promote() {
	if s.role.Swap(uint32(RolePrimary)) != uint32(RolePrimary) {
		s.promotions.Add(1)
	}
}

// TenantNames lists the hosted tenants (stable registry, any order).
func (s *Server) TenantNames() []string {
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	return names
}

// SnapshotTenant takes one tenant's full snapshot at a batch boundary
// through its worker queue — the in-process entry the replication
// shipper uses. Returns the snapshot bytes and the detector tick they
// were taken at. Subject to the same admission control as wire
// requests: a saturated queue sheds with ErrShed and the caller
// retries on its next cadence.
func (s *Server) SnapshotTenant(name string) ([]byte, uint64, error) {
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if !started {
		return nil, 0, ErrNotServing
	}
	t, ok := s.tenants[name]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrUnknownTenant, name)
	}
	req := &request{kind: reqSnapshot, resp: make(chan response, 1)}
	if err := t.admit(req); err != nil {
		return nil, 0, err
	}
	resp := <-req.resp
	if resp.code != 0 {
		return nil, 0, codeErr(resp.code, resp.msg)
	}
	return resp.snap, resp.t0, nil
}

// SetReplicationStatus installs the callback the stats endpoint uses
// to report the replication shipper's health (the shipper lives above
// the server, so the server cannot observe it directly).
func (s *Server) SetReplicationStatus(fn func() ReplicationStatus) {
	s.replStatus.Store(&fn)
}

// Tenant returns a tenant's status, or false when the server does not
// host it.
func (s *Server) Tenant(name string) (TenantStatus, bool) {
	t, ok := s.tenants[name]
	if !ok {
		return TenantStatus{}, false
	}
	return t.status(), true
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown closes it. Each
// tenant worker starts on the first Serve call.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	if s.draining.Load() {
		// Shutdown won the race before the listener was stored and so
		// could not close it; honour the drain here.
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	if !s.started {
		s.started = true
		for _, t := range s.tenants {
			t.start()
		}
	}
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go s.handleConn(c)
	}
}

// Addr returns the listener's address, nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown drains the server: stop accepting, refuse new requests
// with CodeDraining, let every tenant worker finish its admitted
// queue (no accepted batch is dropped), take final checkpoints, close
// the detectors, then close lingering connections. The context bounds
// the wait; on expiry remaining connections are closed immediately
// (tenant queues are still drained — the workers own the data path
// and always run to completion).
func (s *Server) Shutdown(ctx context.Context) error {
	if s.draining.Swap(true) {
		return nil // second Shutdown: already draining
	}
	s.mu.Lock()
	ln := s.ln
	started := s.started
	// Claim the workers so a Serve racing with this Shutdown cannot
	// start them a second time.
	s.started = true
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// Stop admission and let each worker drain its queue, final
	// checkpoint included. If Serve never ran, start the workers now
	// purely to drain: they run the same close-out path (final
	// checkpoint, detector close) over an empty queue.
	for _, t := range s.tenants {
		t.closeQueue()
	}
	if !started {
		for _, t := range s.tenants {
			t.start()
		}
	}
	var err error
	for _, t := range s.tenants {
		select {
		case <-t.done:
		case <-ctx.Done():
			err = ctx.Err()
		}
	}
	// Wake handlers blocked reading the next frame (an in-flight
	// response write still completes — the deadline only cuts reads),
	// then wait for them, forcing the remaining connections closed
	// when the context expires.
	s.mu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	idle := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(idle)
	}()
	select {
	case <-idle:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return err
}

// handleConn serves one connection: read a frame, dispatch, reply,
// repeat — with panic containment so one poisoned connection reports
// CodeInternal and dies alone instead of taking the daemon down.
func (s *Server) handleConn(c net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	bw := bufio.NewWriter(c)
	defer func() {
		if r := recover(); r != nil {
			s.connPanics.Add(1)
			writeFrame(bw, msgError, errFrame(CodeInternal, fmt.Sprint(r)), nil)
			bw.Flush()
		}
	}()
	br := bufio.NewReader(c)
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			// A clean disconnect, a drain-time read-deadline wakeup or
			// a closed socket is not a protocol fault; a malformed
			// frame is, and gets the typed refusal before the
			// connection dies.
			var ne net.Error
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) &&
				!(errors.As(err, &ne) && ne.Timeout()) {
				s.badFrames.Add(1)
				if errors.Is(err, ErrBadRequest) {
					writeFrame(bw, msgError, errFrame(CodeBadRequest, err.Error()), nil)
					bw.Flush()
				}
			}
			return
		}
		s.dispatch(bw, typ, payload)
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// replyErr writes an error frame.
func replyErr(w io.Writer, code uint8, msg string) {
	writeFrame(w, msgError, errFrame(code, msg), nil)
}

// dispatch decodes and serves one request frame.
func (s *Server) dispatch(w io.Writer, typ uint8, payload []byte) {
	switch typ {
	case msgPing:
		s.servePing(w)
	case msgIngest:
		s.serveIngest(w, payload)
	case msgStats:
		s.serveStats(w, payload)
	case msgSnapshot:
		s.serveWorker(w, payload, &request{kind: reqSnapshot})
	case msgCheckpoint:
		s.serveWorker(w, payload, &request{kind: reqCheckpoint})
	case msgRestore:
		s.serveRestore(w, payload)
	case msgReplicate:
		s.serveReplicate(w, payload)
	case msgPromote:
		s.Promote()
		writeFrame(w, msgOK, nil, nil)
	default:
		replyErr(w, CodeBadRequest, fmt.Sprintf("unknown message type %#x", typ))
	}
}

// servePing replies with the server's identity: role, the newest
// verified checkpoint generation across tenants, and the wire ID —
// enough for a client to find the primary and for a shipper to detect
// mis-wiring before shipping state. Pings never touch a worker queue,
// so liveness stays observable under full overload.
func (s *Server) servePing(w io.Writer) {
	var gen uint64
	for _, t := range s.tenants {
		if g := t.ckptGen.Load(); g > gen {
			gen = g
		}
	}
	p := make([]byte, 0, 10+len(s.opts.ID))
	p = append(p, uint8(s.Role()))
	p = binary.LittleEndian.AppendUint64(p, gen)
	p = append(p, uint8(len(s.opts.ID)))
	p = append(p, s.opts.ID...)
	writeFrame(w, msgOK, p, nil)
}

// serveReplicate applies one shipped snapshot generation to a standby
// tenant: name, primary incarnation, sequence number, tick, then the
// raw snapshot bytes. The role gate runs here; integrity verification
// and the regression check run on the tenant worker so they are exact.
func (s *Server) serveReplicate(w io.Writer, payload []byte) {
	b := wireBuf{data: payload}
	name := b.name()
	primary := b.name()
	seq := b.u64()
	tick := b.u64()
	if b.err != nil {
		replyErr(w, CodeBadRequest, b.err.Error())
		return
	}
	if s.Role() != RoleStandby {
		replyErr(w, CodeNotStandby, s.opts.ID)
		return
	}
	t := s.lookup(w, name)
	if t == nil {
		return
	}
	snap := append([]byte{}, b.rest()...)
	resp := s.submit(w, t, &request{kind: reqReplicate, snap: snap, replID: primary, replSeq: seq, replTick: tick})
	if resp == nil {
		return
	}
	writeFrame(w, msgOK, nil, nil)
}

// lookup resolves a tenant or replies with the typed refusal; the
// draining check runs first so a drain is reported as such even for
// unknown tenants.
func (s *Server) lookup(w io.Writer, name string) *tenant {
	if s.draining.Load() {
		replyErr(w, CodeDraining, "")
		return nil
	}
	t, ok := s.tenants[name]
	if !ok {
		replyErr(w, CodeUnknownTenant, name)
		return nil
	}
	return t
}

// submit admits a request to the tenant's queue and relays the
// worker's single response. Admission refusals (shed, draining) are
// typed and immediate — the backpressure a loaded daemon exerts
// instead of buffering without bound.
func (s *Server) submit(w io.Writer, t *tenant, req *request) *response {
	req.resp = make(chan response, 1)
	if err := t.admit(req); err != nil {
		if errors.Is(err, ErrShed) {
			replyErr(w, CodeShed, "")
		} else {
			replyErr(w, CodeDraining, "")
		}
		return nil
	}
	resp := <-req.resp
	if resp.code != 0 {
		replyErr(w, resp.code, resp.msg)
		return nil
	}
	return &resp
}

// serveIngest decodes an ingest frame, admits it, and encodes the
// verdict response.
func (s *Server) serveIngest(w io.Writer, payload []byte) {
	b := wireBuf{data: payload}
	name := b.name()
	flags := b.u8()
	deadlineMillis := b.u32()
	n := int(b.u32())
	if b.err != nil {
		replyErr(w, CodeBadRequest, b.err.Error())
		return
	}
	if s.Role() != RolePrimary {
		// A standby's detector state is owned by the replication stream;
		// letting clients ingest into it would fork the history the
		// primary ships. Typed refusal: fail over, nothing was applied.
		replyErr(w, CodeNotPrimary, s.opts.ID)
		return
	}
	t := s.lookup(w, name)
	if t == nil {
		return
	}
	if n < 1 || n > MaxBatchPoints {
		replyErr(w, CodeBadRequest, fmt.Sprintf("batch of %d points (max %d)", n, MaxBatchPoints))
		return
	}
	want := n * t.cfg.Dims
	if rem := len(payload) - b.off; rem != want*8 {
		replyErr(w, CodeBadRequest, fmt.Sprintf("batch payload holds %d bytes, want %d points x %d dims", rem, n, t.cfg.Dims))
		return
	}
	flat := make([]float64, want)
	b.f64s(flat)
	req := &request{
		kind:   reqIngest,
		flat:   flat,
		n:      n,
		scored: flags&1 != 0,
	}
	if deadlineMillis > 0 {
		budget := time.Duration(deadlineMillis) * time.Millisecond
		if budget > s.opts.MaxDeadline {
			budget = s.opts.MaxDeadline
		}
		req.deadline = time.Now().Add(budget)
	}
	resp := s.submit(w, t, req)
	if resp == nil {
		return
	}
	// Verdicts travel as a bitset; scores (when requested) follow.
	head := make([]byte, 0, 13)
	head = binary.LittleEndian.AppendUint64(head, resp.t0)
	head = binary.LittleEndian.AppendUint32(head, uint32(n))
	scored := uint8(0)
	if resp.scores != nil {
		scored = 1
	}
	head = append(head, scored)
	body := make([]byte, (n+7)/8, (n+7)/8+8*len(resp.scores))
	for i, v := range resp.verdicts {
		if v {
			body[i>>3] |= 1 << (uint(i) & 7)
		}
	}
	body = appendF64s(body, resp.scores)
	writeFrame(w, msgVerdicts, head, body)
}

// serveWorker serves the single-tenant worker requests that carry
// only a name (snapshot-out, checkpoint).
func (s *Server) serveWorker(w io.Writer, payload []byte, req *request) {
	b := wireBuf{data: payload}
	name := b.name()
	if b.err != nil {
		replyErr(w, CodeBadRequest, b.err.Error())
		return
	}
	t := s.lookup(w, name)
	if t == nil {
		return
	}
	resp := s.submit(w, t, req)
	if resp == nil {
		return
	}
	switch req.kind {
	case reqSnapshot:
		writeFrame(w, msgSnapRep, nil, resp.snap)
	default:
		writeFrame(w, msgOK, nil, []byte(resp.path))
	}
}

// serveRestore decodes a migrate-in frame: tenant name followed by the
// raw snapshot bytes, handed to the worker to swap in atomically.
func (s *Server) serveRestore(w io.Writer, payload []byte) {
	b := wireBuf{data: payload}
	name := b.name()
	if b.err != nil {
		replyErr(w, CodeBadRequest, b.err.Error())
		return
	}
	t := s.lookup(w, name)
	if t == nil {
		return
	}
	snap := append([]byte{}, b.rest()...)
	resp := s.submit(w, t, &request{kind: reqRestore, snap: snap})
	if resp == nil {
		return
	}
	writeFrame(w, msgOK, nil, nil)
}

// ReplicationStatus is the replication shipper's health as surfaced
// through the stats endpoint. The shipper (internal/replica) fills it
// via SetReplicationStatus; a server without a shipper reports a zero
// value with Active false.
type ReplicationStatus struct {
	// Active reports whether a shipper is running and currently
	// shipping (i.e. the server holds the primary role).
	Active bool
	// Interval is the configured ship cadence in milliseconds.
	IntervalMillis int64
	// Targets holds one entry per configured standby address.
	Targets []ReplTargetStatus
}

// ReplTargetStatus is one standby link's shipping health.
type ReplTargetStatus struct {
	// Addr is the standby's dial address.
	Addr string
	// GensShipped and BytesShipped are lifetime delivery counters.
	GensShipped  uint64
	BytesShipped uint64
	// ShipFailures counts failed deliveries (dial, refusal, timeout).
	ShipFailures uint64
	// Behind is the replication lag in generations: how many snapshot
	// generations the primary has cut that this standby has not acked.
	Behind uint64
	// BytesPerSec is the recent shipping throughput.
	BytesPerSec float64
	// LastError is the most recent delivery failure, empty when the
	// link is healthy.
	LastError string
}

// Status is the server-wide health snapshot the stats endpoint
// reports.
type Status struct {
	// ID and Role identify the server in a replication pair.
	ID   string
	Role string
	// Draining reports whether Shutdown has begun.
	Draining bool
	// Conns is the number of open client connections.
	Conns int
	// BadFrames and ConnPanics are lifetime counters of malformed
	// frames and contained connection-handler panics; Promotions counts
	// standby-to-primary role flips.
	BadFrames  uint64
	ConnPanics uint64
	Promotions uint64
	// Replication is the shipper's health when this server replicates
	// to standbys (zero with Active false otherwise).
	Replication ReplicationStatus
	// Tenants holds every tenant's status, keyed by name.
	Tenants map[string]TenantStatus
}

// status assembles the server-wide snapshot.
func (s *Server) status() Status {
	s.mu.Lock()
	conns := len(s.conns)
	s.mu.Unlock()
	st := Status{
		ID:         s.opts.ID,
		Role:       s.Role().String(),
		Draining:   s.draining.Load(),
		Conns:      conns,
		BadFrames:  s.badFrames.Load(),
		ConnPanics: s.connPanics.Load(),
		Promotions: s.promotions.Load(),
		Tenants:    make(map[string]TenantStatus, len(s.tenants)),
	}
	if fn := s.replStatus.Load(); fn != nil {
		st.Replication = (*fn)()
	}
	for name, t := range s.tenants {
		st.Tenants[name] = t.status()
	}
	return st
}

// serveStats replies with the JSON status: one tenant's when the
// request names one, server-wide for an empty name. Stats never pass
// through an admission queue, so health stays observable under full
// overload.
func (s *Server) serveStats(w io.Writer, payload []byte) {
	b := wireBuf{data: payload}
	nameLen := int(b.u8())
	name := string(b.take(nameLen))
	if b.err != nil {
		replyErr(w, CodeBadRequest, b.err.Error())
		return
	}
	var body []byte
	var err error
	if name == "" {
		body, err = json.Marshal(s.status())
	} else {
		t, ok := s.tenants[name]
		if !ok {
			replyErr(w, CodeUnknownTenant, name)
			return
		}
		body, err = json.Marshal(t.status())
	}
	if err != nil {
		replyErr(w, CodeInternal, err.Error())
		return
	}
	writeFrame(w, msgStatsRep, nil, body)
}
