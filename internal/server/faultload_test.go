package server

import (
	"errors"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"spot/internal/snapshot"
	"spot/internal/stream"
)

// TestCheckpointFaultUnderLoad injects mid-write failures into the
// checkpoint path while ingest continues: every failed Save leaves the
// previous generation intact and loadable, serving never stops, and
// once the fault clears the next cadence saves cleanly. This is the
// disk-full / torn-write drill for the serving daemon.
func TestCheckpointFaultUnderLoad(t *testing.T) {
	const dims, batch = 2, 8
	cfg := testStream(dims)
	cfg.Scoring = false
	cfg.TopK = 0
	dir := t.TempDir()

	s, err := New(
		// Points cadence of one batch: every batch boundary attempts a
		// save, so faults hit under continuous load.
		Options{CheckpointPoints: batch},
		[]TenantConfig{{Name: "a", Stream: cfg, Dir: dir, Keep: 3}},
	)
	if err != nil {
		t.Fatal(err)
	}
	var failing atomic.Bool
	s.tenants["a"].saveWrap = func(w io.Writer) io.Writer {
		if failing.Load() {
			// First 64 bytes pass, then every write fails: a torn
			// checkpoint, cut mid-stream.
			return &snapshot.FaultWriter{W: w, Limit: 64}
		}
		return w
	}
	_, addr := serveExisting(t, s)
	c := dial(t, addr)

	flat := genPoints(30, 6*batch, dims)
	ingest := func(i int) {
		t.Helper()
		res, err := c.Ingest("a", flat[i*batch*dims:(i+1)*batch*dims], batch, IngestOptions{})
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if res.T0 != uint64(i*batch) {
			t.Fatalf("batch %d: T0 %d, want %d", i, res.T0, i*batch)
		}
	}

	// The cadence save runs on the worker after the ingest reply, so
	// status assertions wait for it to land.
	eventually := func(desc string, ok func(TenantStatus) bool) TenantStatus {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			st, _ := s.Tenant("a")
			if ok(st) {
				return st
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s: %+v", desc, st)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Batch 0 lands a clean generation.
	ingest(0)
	st := eventually("baseline checkpoint", func(st TenantStatus) bool {
		return st.Checkpoint.Generations == 1 && st.Checkpoint.Verified
	})
	baseSeq := st.Checkpoint.LatestSeq

	// Batches 1-3 ingest against a failing disk: every cadence save is
	// torn mid-write, yet serving continues and the baseline generation
	// stays the newest verifiable one.
	failing.Store(true)
	for i := 1; i <= 3; i++ {
		ingest(i)
	}
	st = eventually("three recorded save failures", func(st TenantStatus) bool {
		return st.CheckpointFailures >= 3
	})
	if !strings.Contains(st.LastCheckpointError, "injected") {
		t.Fatalf("last checkpoint error %q does not name the injected fault", st.LastCheckpointError)
	}
	if st.Checkpoint.LatestSeq != baseSeq || !st.Checkpoint.Verified {
		t.Fatalf("baseline generation disturbed by failed saves: %+v", st.Checkpoint)
	}
	if st.Tick != 4*batch {
		t.Fatalf("tick %d after faulted batches, want %d", st.Tick, 4*batch)
	}

	// The surviving generation is genuinely loadable mid-fault: a
	// fresh keeper restores the baseline state (tick = one batch).
	k, err := snapshot.NewKeeper(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	var rec *stream.Detector
	if _, err := k.Load(func(r io.Reader) error {
		d, err := stream.Restore(r, cfg)
		if err != nil {
			return err
		}
		rec = d
		return nil
	}); err != nil {
		t.Fatalf("load during fault window: %v", err)
	}
	if rec.Tick() != batch {
		t.Fatalf("recovered tick %d, want %d (the baseline generation)", rec.Tick(), batch)
	}
	rec.Close()

	// Fault clears: the very next cadence boundary saves a fresh
	// generation past the baseline.
	failing.Store(false)
	ingest(4)
	st = eventually("post-fault generation", func(st TenantStatus) bool {
		return st.Checkpoint.LatestSeq > baseSeq && st.Checkpoint.Verified
	})

	// A direct forced checkpoint surfaces the injected error as a typed
	// internal refusal while the fault is live.
	failing.Store(true)
	if _, err := c.Checkpoint("a"); !errors.Is(err, ErrInternal) {
		t.Fatalf("forced checkpoint under fault: got %v, want ErrInternal", err)
	}
	failing.Store(false)
	if _, err := c.Checkpoint("a"); err != nil {
		t.Fatalf("forced checkpoint after fault cleared: %v", err)
	}
}
