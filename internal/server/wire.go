// Package server implements spotd's serving layer: a long-running
// daemon that ingests batched points for one or more tenant detectors
// over a length-prefixed binary TCP protocol and wraps every ingest
// path in robustness machinery — a bounded admission queue with typed
// backpressure, per-request deadlines, panic containment per
// connection, periodic crash-safe checkpointing through
// snapshot.Keeper, automatic newest-verifiable-generation recovery on
// startup, live snapshot migration between hosts, and graceful drain
// on shutdown.
//
// Concurrency model: the stream.Detector is single-goroutine by
// contract, so each tenant owns exactly one worker goroutine that is
// the sole driver of its detector. Connections are handled
// concurrently; an ingest request is admitted into the tenant's
// bounded queue (or shed immediately when full — the daemon never
// buffers without bound) and the worker replies through a per-request
// channel. Checkpoints, migration snapshots and restores run on the
// same worker goroutine, so they always observe the detector at a
// batch boundary with its shard workers idle — the exact quiescence
// Snapshot requires — while other tenants keep ingesting.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Frame layout: u32 little-endian payload length (including the type
// byte), u8 message type, payload. The length cap bounds what a
// malformed or adversarial peer can make the daemon allocate.
const (
	// MaxFrame bounds one frame's declared length. Snapshot transfers
	// (migration) ride the same framing, so the cap is sized for
	// checkpoints, not just batches.
	MaxFrame = 64 << 20
	// MaxBatchPoints bounds the points of one ingest request; larger
	// streams chunk client-side. Keeps a single request's admission
	// cost predictable.
	MaxBatchPoints = 65536
	// maxNameLen bounds a tenant name on the wire.
	maxNameLen = 255
)

// Request message types.
const (
	msgIngest     uint8 = 0x01
	msgStats      uint8 = 0x02
	msgSnapshot   uint8 = 0x03 // migrate out: stream the tenant's snapshot
	msgRestore    uint8 = 0x04 // migrate in: replace tenant state from a snapshot
	msgCheckpoint uint8 = 0x05 // force a durable checkpoint now
	msgPing       uint8 = 0x06 // heartbeat; the reply carries server identity/role
	msgReplicate  uint8 = 0x07 // primary → standby: ship one snapshot generation
	msgPromote    uint8 = 0x08 // flip a standby to primary (idempotent on a primary)
)

// Response message types.
const (
	msgVerdicts uint8 = 0x81
	msgStatsRep uint8 = 0x82
	msgSnapRep  uint8 = 0x83
	msgOK       uint8 = 0x84
	msgError    uint8 = 0x85
)

// Wire error codes: the retry contract a client programs against.
// Shed and Deadline are retryable (nothing was applied); Draining
// means retry against another replica; NotPrimary means fail over to
// the replica currently holding the primary role; BadRequest,
// UnknownTenant and Conflict are caller bugs; Stale and NotStandby are
// the replication layer's divergence/mis-wiring refusals; Internal is
// a contained server fault.
const (
	CodeBadRequest    uint8 = 1
	CodeUnknownTenant uint8 = 2
	CodeShed          uint8 = 3
	CodeDeadline      uint8 = 4
	CodeDraining      uint8 = 5
	CodeInternal      uint8 = 6
	CodeConflict      uint8 = 7
	CodeNotPrimary    uint8 = 8
	CodeNotStandby    uint8 = 9
	CodeStale         uint8 = 10
)

// Typed client-side errors, one per wire code a caller branches on.
var (
	// ErrShed marks an ingest rejected by admission control: the
	// tenant's queue was full. Nothing was applied; back off and retry.
	ErrShed = errors.New("server: overloaded, batch shed")
	// ErrDeadline marks a request whose deadline budget expired before
	// the tenant worker reached it. Nothing was applied.
	ErrDeadline = errors.New("server: deadline exceeded before processing")
	// ErrDraining marks a request refused because the server is
	// shutting down.
	ErrDraining = errors.New("server: draining")
	// ErrUnknownTenant marks a request naming a tenant the server does
	// not host.
	ErrUnknownTenant = errors.New("server: unknown tenant")
	// ErrBadRequest marks a malformed request (frame, shape, or a
	// batch violating the detector's input contract).
	ErrBadRequest = errors.New("server: bad request")
	// ErrConflict marks a restore whose snapshot does not match the
	// tenant's configuration.
	ErrConflict = errors.New("server: snapshot/config conflict")
	// ErrNotPrimary marks an ingest refused because the server holds
	// the standby role. Nothing was applied; fail over to the primary.
	ErrNotPrimary = errors.New("server: standby does not serve ingest")
	// ErrNotStandby marks a replication push refused because the target
	// holds the primary role — shipping into a primary is mis-wiring
	// (or split brain), never applied.
	ErrNotStandby = errors.New("server: primary does not accept replication")
	// ErrStaleGeneration marks a replication push whose generation
	// regresses one the standby already holds from the same primary
	// incarnation — the divergence signal. Nothing was applied.
	ErrStaleGeneration = errors.New("server: stale replication generation")
	// ErrInternal marks a contained server-side fault (e.g. a panic
	// caught by the connection or worker containment).
	ErrInternal = errors.New("server: internal error")
	// ErrTimeout marks a client-side I/O deadline expiring — dialing,
	// writing the request, or waiting for the reply. The connection is
	// closed; whether the request was applied is unknown unless it was
	// never written.
	ErrTimeout = errors.New("server: i/o timeout")
)

// codeErr maps a wire code to its typed error.
func codeErr(code uint8, msg string) error {
	var base error
	switch code {
	case CodeBadRequest:
		base = ErrBadRequest
	case CodeUnknownTenant:
		base = ErrUnknownTenant
	case CodeShed:
		base = ErrShed
	case CodeDeadline:
		base = ErrDeadline
	case CodeDraining:
		base = ErrDraining
	case CodeConflict:
		base = ErrConflict
	case CodeNotPrimary:
		base = ErrNotPrimary
	case CodeNotStandby:
		base = ErrNotStandby
	case CodeStale:
		base = ErrStaleGeneration
	default:
		base = ErrInternal
	}
	if msg == "" {
		return base
	}
	return fmt.Errorf("%w: %s", base, msg)
}

// writeFrame emits one frame: length, type, payload. The payload may
// be split across two slices so callers can prepend a small header to
// a large body without copying it.
func writeFrame(w io.Writer, typ uint8, head, body []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(1+len(head)+len(body)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(head) > 0 {
		if _, err := w.Write(head); err != nil {
			return err
		}
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame, enforcing the length cap. The returned
// payload excludes the type byte.
func readFrame(r io.Reader) (uint8, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	if n < 1 || n > MaxFrame {
		return 0, nil, fmt.Errorf("%w: frame length %d", ErrBadRequest, n)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// wireBuf is a cursor over a frame payload with the same sticky-error
// discipline as the snapshot codec's Section: reads past the end arm
// the error and return zeros, and the caller validates once.
type wireBuf struct {
	data []byte
	off  int
	err  error
}

func (b *wireBuf) take(n int) []byte {
	if b.err != nil {
		return nil
	}
	if b.off+n > len(b.data) || b.off+n < b.off {
		b.err = fmt.Errorf("%w: truncated payload", ErrBadRequest)
		return nil
	}
	s := b.data[b.off : b.off+n]
	b.off += n
	return s
}

func (b *wireBuf) u8() uint8 {
	if s := b.take(1); s != nil {
		return s[0]
	}
	return 0
}

func (b *wireBuf) u16() uint16 {
	if s := b.take(2); s != nil {
		return binary.LittleEndian.Uint16(s)
	}
	return 0
}

func (b *wireBuf) u32() uint32 {
	if s := b.take(4); s != nil {
		return binary.LittleEndian.Uint32(s)
	}
	return 0
}

func (b *wireBuf) u64() uint64 {
	if s := b.take(8); s != nil {
		return binary.LittleEndian.Uint64(s)
	}
	return 0
}

// name reads a u8-length-prefixed tenant name.
func (b *wireBuf) name() string {
	n := int(b.u8())
	return string(b.take(n))
}

// rest returns the unread remainder of the payload.
func (b *wireBuf) rest() []byte {
	s := b.data[b.off:]
	b.off = len(b.data)
	return s
}

// f64s decodes n little-endian float64s into dst (len(dst) == n).
func (b *wireBuf) f64s(dst []float64) {
	s := b.take(8 * len(dst))
	if s == nil {
		return
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(s[8*i:]))
	}
}

// appendName appends a u8-length-prefixed tenant name.
func appendName(dst []byte, name string) ([]byte, error) {
	if len(name) == 0 || len(name) > maxNameLen {
		return dst, fmt.Errorf("%w: tenant name length %d", ErrBadRequest, len(name))
	}
	dst = append(dst, uint8(len(name)))
	return append(dst, name...), nil
}

// appendF64s appends little-endian float64 bit patterns.
func appendF64s(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// errFrame encodes an error response payload.
func errFrame(code uint8, msg string) []byte {
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	p := make([]byte, 0, 3+len(msg))
	p = append(p, code)
	p = binary.LittleEndian.AppendUint16(p, uint16(len(msg)))
	return append(p, msg...)
}

// decodeError decodes an error response payload into its typed error.
func decodeError(payload []byte) error {
	b := wireBuf{data: payload}
	code := b.u8()
	n := int(b.u16())
	msg := string(b.take(n))
	if b.err != nil {
		return fmt.Errorf("%w: malformed error frame", ErrInternal)
	}
	return codeErr(code, msg)
}
