package server

import (
	"errors"
	"net"
	"testing"
	"time"
)

// TestClientReadTimeout pins the hung-server guard: a server that
// accepts the request but never replies must surface the typed
// ErrTimeout within the configured budget instead of blocking
// roundTrip forever, and the poisoned connection must fail every
// subsequent call fast instead of mis-matching a late reply.
func TestClientReadTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Hung server: accept, swallow bytes, never reply.
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}(c)
		}
	}()

	c, err := DialOptions(ln.Addr().String(), ClientOptions{ReadTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	err = c.Ping()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("ping against hung server: got %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, want ~100ms", elapsed)
	}
	// The connection is poisoned: later calls fail immediately with the
	// recorded fault, they do not hang again.
	start = time.Now()
	if err := c.Ping(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("ping on poisoned connection: got %v, want wrapped ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("poisoned call took %v, want immediate", elapsed)
	}
}

// TestClientTimeoutDisabled pins the opt-out: negative timeouts
// restore the undeadlined behavior, so a slow-but-alive exchange under
// a generous window still completes.
func TestClientTimeoutDisabled(t *testing.T) {
	_, addr := startServer(t, Options{}, []TenantConfig{{Name: "a", Stream: testStream(2)}})
	c, err := DialOptions(addr, ClientOptions{DialTimeout: -1, ReadTimeout: -1, WriteTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("undeadlined ping: %v", err)
	}
}

// TestClientDialTimeoutTyped pins that dial-phase failures surface
// before anything was written — the one transport error a caller may
// always retry blindly.
func TestClientDialTimeoutTyped(t *testing.T) {
	// A listener with nobody accepting still completes TCP connects
	// (kernel backlog), so use a closed port for the immediate-failure
	// path instead.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := DialOptions(addr, ClientOptions{DialTimeout: time.Second}); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}
