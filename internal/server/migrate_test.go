package server

import (
	"errors"
	"testing"

	"spot/internal/stream"
)

// TestLiveMigration moves a tenant between two running servers
// mid-stream: snapshot out of A at a batch boundary, restore into B,
// continue the stream there. The stitched verdict sequence must be
// bit-identical to one uninterrupted oracle detector.
func TestLiveMigration(t *testing.T) {
	const dims, batch, batches = 3, 30, 8
	cfg := testStream(dims)
	flat := genPoints(40, batch*batches, dims)

	oracle, err := stream.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	want := make([]bool, batch*batches)
	oracle.ProcessBatch(flat, want)

	sA, addrA := startServer(t, Options{}, []TenantConfig{{Name: "m", Stream: cfg}})
	sB, addrB := startServer(t, Options{}, []TenantConfig{{Name: "m", Stream: cfg, Dir: t.TempDir()}})
	cA, cB := dial(t, addrA), dial(t, addrB)

	check := func(c *Client, i int) {
		t.Helper()
		res, err := c.Ingest("m", flat[i*batch*dims:(i+1)*batch*dims], batch, IngestOptions{})
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if res.T0 != uint64(i*batch) {
			t.Fatalf("batch %d: T0 %d, want %d", i, res.T0, i*batch)
		}
		for j, v := range res.Verdicts {
			if v != want[i*batch+j] {
				t.Fatalf("batch %d point %d diverged from uninterrupted oracle", i, j)
			}
		}
	}

	// First half on A.
	for i := 0; i < batches/2; i++ {
		check(cA, i)
	}

	// Migrate: snapshot out of A, restore into B.
	snap, err := cA.Snapshot("m")
	if err != nil {
		t.Fatal(err)
	}
	if err := cB.Restore("m", snap); err != nil {
		t.Fatal(err)
	}

	// The migrated state was immediately made durable on B.
	tsB, _ := sB.Tenant("m")
	if tsB.Checkpoint.Generations == 0 || !tsB.Checkpoint.Verified {
		t.Fatalf("migrated state not checkpointed on B: %+v", tsB.Checkpoint)
	}
	if tsB.Tick != uint64(batches/2*batch) {
		t.Fatalf("B resumed at tick %d, want %d", tsB.Tick, batches/2*batch)
	}

	// Second half on B, verdicts stitched seamlessly.
	for i := batches / 2; i < batches; i++ {
		check(cB, i)
	}

	// A is untouched by the export: still serving at its own tick.
	tsA, _ := sA.Tenant("m")
	if tsA.Tick != uint64(batches/2*batch) {
		t.Fatalf("A's tick moved to %d during migration", tsA.Tick)
	}
}

// TestMigrationConfigConflict pins the conflict contract: restoring a
// snapshot into a tenant whose configuration does not match is refused
// with the typed ErrConflict and leaves the target untouched.
func TestMigrationConfigConflict(t *testing.T) {
	const dims, batch = 3, 20
	cfg := testStream(dims)
	other := testStream(dims)
	other.Phi = cfg.Phi * 2

	_, addrA := startServer(t, Options{}, []TenantConfig{{Name: "m", Stream: cfg}})
	_, addrB := startServer(t, Options{}, []TenantConfig{{Name: "m", Stream: other}})
	cA, cB := dial(t, addrA), dial(t, addrB)

	if _, err := cA.Ingest("m", genPoints(41, batch, dims), batch, IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	snap, err := cA.Snapshot("m")
	if err != nil {
		t.Fatal(err)
	}
	if err := cB.Restore("m", snap); !errors.Is(err, ErrConflict) {
		t.Fatalf("mismatched restore: got %v, want ErrConflict", err)
	}
	ts, err := cB.TenantStats("m")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Tick != 0 {
		t.Fatalf("refused restore advanced B to tick %d", ts.Tick)
	}
	// Garbage bytes are a bad request, not a conflict.
	if err := cB.Restore("m", []byte("not a snapshot")); errors.Is(err, ErrConflict) || err == nil {
		t.Fatalf("garbage restore: got %v", err)
	}
}
