package server

import (
	"errors"
	"io"
	"sort"
	"sync"
	"testing"
	"time"
)

// gateWriter blocks every Write until released, signalling entry once
// — the deterministic way to pin a tenant worker inside a checkpoint
// while admission keeps running.
type gateWriter struct {
	w       io.Writer
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateWriter) Write(b []byte) (int, error) {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return g.w.Write(b)
}

// stallTenant installs a gateWriter as the tenant's checkpoint hook
// and submits a checkpoint so the worker blocks inside Save. Must run
// before the server starts serving (the hook is worker-read).
func stallTenant(t *testing.T, s *Server, name string) *gateWriter {
	t.Helper()
	gate := &gateWriter{entered: make(chan struct{}), release: make(chan struct{})}
	s.tenants[name].saveWrap = func(w io.Writer) io.Writer {
		gate.w = w
		return gate
	}
	return gate
}

// TestOverloadSheds is the backpressure property test: with the worker
// pinned and the admission queue saturated, exactly QueueDepth ingests
// are admitted and every other one is shed with the typed ErrShed —
// nothing buffers beyond the configured depth and nothing admitted is
// dropped. After release, the admitted batches complete with
// contiguous, non-overlapping tick ranges.
func TestOverloadSheds(t *testing.T) {
	const depth, hammer, batch, dims = 2, 12, 5, 2
	cfg := testStream(dims)
	cfg.Scoring = false
	cfg.TopK = 0
	s, err := New(
		Options{QueueDepth: depth},
		[]TenantConfig{{Name: "a", Stream: cfg, Dir: t.TempDir()}},
	)
	if err != nil {
		t.Fatal(err)
	}
	gate := stallTenant(t, s, "a")
	_, addr := serveExisting(t, s)

	// Pin the worker inside a forced checkpoint.
	ckptDone := make(chan error, 1)
	go func() {
		c, err := Dial(addr)
		if err != nil {
			ckptDone <- err
			return
		}
		defer c.Close()
		_, err = c.Checkpoint("a")
		ckptDone <- err
	}()
	<-gate.entered

	// Saturate: hammer concurrent single-batch ingests from independent
	// connections while the worker cannot drain.
	flat := genPoints(20, batch, dims)
	type outcome struct {
		t0  uint64
		err error
	}
	results := make(chan outcome, hammer)
	for i := 0; i < hammer; i++ {
		go func() {
			c, err := Dial(addr)
			if err != nil {
				results <- outcome{err: err}
				return
			}
			defer c.Close()
			res, err := c.Ingest("a", flat, batch, IngestOptions{})
			results <- outcome{t0: res.T0, err: err}
		}()
	}

	// Collect the sheds first: everything beyond the queue depth is
	// refused immediately even though the worker is stuck.
	var shed int
	var t0s []uint64
	deadline := time.After(10 * time.Second)
	collected := 0
	released := false
	for collected < hammer {
		select {
		case r := <-results:
			collected++
			switch {
			case errors.Is(r.err, ErrShed):
				shed++
			case r.err == nil:
				t0s = append(t0s, r.t0)
			default:
				t.Fatalf("unexpected ingest outcome: %v", r.err)
			}
			// Once every shed has reported, unpin the worker so the
			// admitted batches can finish.
			if !released && collected == hammer-depth {
				released = true
				close(gate.release)
			}
		case <-deadline:
			t.Fatalf("timed out: %d/%d outcomes, %d shed", collected, hammer, shed)
		}
	}
	if err := <-ckptDone; err != nil {
		t.Fatalf("pinned checkpoint failed: %v", err)
	}

	if shed != hammer-depth {
		t.Fatalf("shed %d ingests, want %d (queue depth %d)", shed, hammer-depth, depth)
	}
	if len(t0s) != depth {
		t.Fatalf("%d ingests admitted, want %d", len(t0s), depth)
	}
	// No silent drops and no double-applies: the admitted batches cover
	// exactly ticks [0, depth*batch) back to back.
	sort.Slice(t0s, func(i, j int) bool { return t0s[i] < t0s[j] })
	for i, t0 := range t0s {
		if t0 != uint64(i*batch) {
			t.Fatalf("admitted batch %d starts at tick %d, want %d", i, t0, i*batch)
		}
	}

	st, ok := s.Tenant("a")
	if !ok {
		t.Fatal("tenant missing")
	}
	// Accepted counts the checkpoint request plus the admitted ingests.
	if st.Shed != uint64(hammer-depth) || st.Accepted != depth+1 {
		t.Fatalf("counters: accepted %d shed %d, want %d/%d", st.Accepted, st.Shed, depth+1, hammer-depth)
	}
	if st.Tick != depth*batch {
		t.Fatalf("tick %d, want %d (shed batches must not apply)", st.Tick, depth*batch)
	}
	if st.QueueCap != depth {
		t.Fatalf("queue cap %d, want %d", st.QueueCap, depth)
	}
}

// TestQueuedDeadlineExpires pins the deadline contract: a batch whose
// budget expires while queued behind a stuck worker is answered with
// the typed ErrDeadline and never touches the detector.
func TestQueuedDeadlineExpires(t *testing.T) {
	cfg := testStream(2)
	cfg.Scoring = false
	cfg.TopK = 0
	s, err := New(Options{}, []TenantConfig{{Name: "a", Stream: cfg, Dir: t.TempDir()}})
	if err != nil {
		t.Fatal(err)
	}
	gate := stallTenant(t, s, "a")
	_, addr := serveExisting(t, s)

	ckptDone := make(chan error, 1)
	go func() {
		c, err := Dial(addr)
		if err != nil {
			ckptDone <- err
			return
		}
		defer c.Close()
		_, err = c.Checkpoint("a")
		ckptDone <- err
	}()
	<-gate.entered

	// The ingest sits behind the pinned checkpoint until long after its
	// 1ms budget.
	ingestDone := make(chan error, 1)
	go func() {
		c, err := Dial(addr)
		if err != nil {
			ingestDone <- err
			return
		}
		defer c.Close()
		_, err = c.Ingest("a", genPoints(21, 3, 2), 3, IngestOptions{Deadline: time.Millisecond})
		ingestDone <- err
	}()
	time.Sleep(50 * time.Millisecond)
	close(gate.release)
	if err := <-ckptDone; err != nil {
		t.Fatalf("pinned checkpoint failed: %v", err)
	}
	if err := <-ingestDone; !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired ingest: got %v, want ErrDeadline", err)
	}

	st, _ := s.Tenant("a")
	if st.Tick != 0 {
		t.Fatalf("expired batch advanced the stream to tick %d", st.Tick)
	}
	if st.DeadlineMisses != 1 {
		t.Fatalf("deadline misses %d, want 1", st.DeadlineMisses)
	}
	// The tenant still serves.
	c := dial(t, addr)
	if _, err := c.Ingest("a", genPoints(22, 3, 2), 3, IngestOptions{}); err != nil {
		t.Fatalf("ingest after deadline miss: %v", err)
	}
}

// TestWorkerPanicContained pins per-request panic containment: a
// checkpoint hook that panics becomes a CodeInternal reply, the panic
// counter ticks, and the worker keeps serving the tenant.
func TestWorkerPanicContained(t *testing.T) {
	cfg := testStream(2)
	cfg.Scoring = false
	cfg.TopK = 0
	s, err := New(Options{}, []TenantConfig{{Name: "a", Stream: cfg, Dir: t.TempDir()}})
	if err != nil {
		t.Fatal(err)
	}
	s.tenants["a"].saveWrap = func(w io.Writer) io.Writer {
		panic("poisoned checkpoint")
	}
	_, addr := serveExisting(t, s)
	c := dial(t, addr)

	_, err = c.Checkpoint("a")
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("panicking checkpoint: got %v, want ErrInternal", err)
	}
	// The worker survived; ingest still works on the same connection.
	if _, err := c.Ingest("a", genPoints(23, 4, 2), 4, IngestOptions{}); err != nil {
		t.Fatalf("ingest after contained panic: %v", err)
	}
	st, _ := s.Tenant("a")
	if st.Panics != 1 {
		t.Fatalf("panic counter %d, want 1", st.Panics)
	}
}
