package snapshot

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzSnapshotRoundTrip feeds arbitrary bytes — seeded with valid
// snapshot streams — through the section reader. The invariant: the
// decoder either walks the whole stream with every CRC matching, or
// fails with one of the typed snapshot errors. It never panics and
// never allocates anywhere near the claimed size of a lying length
// field (the t.Skip-free walk under the fuzzer's memory limit enforces
// that indirectly).
func FuzzSnapshotRoundTrip(f *testing.F) {
	seed := func(build func(w *Writer)) {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			f.Fatal(err)
		}
		build(w)
		f.Add(buf.Bytes())
	}
	seed(func(w *Writer) {
		w.Close()
	})
	seed(func(w *Writer) {
		w.Begin(1)
		w.U32(7)
		w.F64(3.5)
		w.End()
		w.Close()
	})
	seed(func(w *Writer) {
		w.Begin(1)
		w.Bytes32([]byte("payload"))
		w.End()
		w.Begin(2)
		for i := 0; i < 64; i++ {
			w.U64(uint64(i) * 0x9E3779B97F4A7C15)
		}
		w.End()
		w.Close()
	})
	f.Add([]byte(Magic))
	f.Add([]byte("SPOTSNP1\x01\x00\x00\x00\xff\xff\xff\xff\x00\x00\x00\x00\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			requireTyped(t, err)
			return
		}
		for {
			sec, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				requireTyped(t, err)
				return
			}
			// Drain the section through the field readers; a sticky
			// decode error must be typed too.
			for sec.Remaining() > 0 && sec.Err() == nil {
				switch sec.Remaining() % 3 {
				case 0:
					sec.Bytes32()
				case 1:
					sec.U8()
				default:
					sec.U64()
				}
			}
			if err := sec.Err(); err != nil {
				requireTyped(t, err)
			}
		}
	})
}

// requireTyped fails the fuzz case unless err wraps one of the typed
// snapshot errors.
func requireTyped(t *testing.T, err error) {
	t.Helper()
	for _, want := range []error{ErrBadMagic, ErrVersion, ErrChecksum, ErrTruncated, ErrCorrupt} {
		if errors.Is(err, want) {
			return
		}
	}
	t.Fatalf("untyped decode error: %v", err)
}
