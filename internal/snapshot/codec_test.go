package snapshot

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

// writeSample emits a two-section stream exercising every field type
// and returns its bytes.
func writeSample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.Begin(1)
	w.U8(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.U16(0xBEEF)
	w.U32(0xDEADBEEF)
	w.U64(1 << 60)
	w.F64(-0.0)
	w.F64(math.Inf(1))
	w.F64(math.Pi)
	w.Bytes32([]byte("hello"))
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	w.Begin(2)
	w.U32(3)
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Bytes() != int64(buf.Len()) {
		t.Fatalf("Bytes() = %d, buffer holds %d", w.Bytes(), buf.Len())
	}
	return buf.Bytes()
}

func TestCodecRoundTrip(t *testing.T) {
	raw := writeSample(t)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	sec, err := r.Next()
	if err != nil || sec.ID != 1 {
		t.Fatalf("first section: %v, %v", sec, err)
	}
	if v := sec.U8(); v != 0xAB {
		t.Fatalf("U8 = %#x", v)
	}
	if !sec.Bool() || sec.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if v := sec.U16(); v != 0xBEEF {
		t.Fatalf("U16 = %#x", v)
	}
	if v := sec.U32(); v != 0xDEADBEEF {
		t.Fatalf("U32 = %#x", v)
	}
	if v := sec.U64(); v != 1<<60 {
		t.Fatalf("U64 = %#x", v)
	}
	if v := sec.F64(); math.Float64bits(v) != math.Float64bits(-0.0) {
		t.Fatalf("F64 lost the signed zero: %v", v)
	}
	if v := sec.F64(); !math.IsInf(v, 1) {
		t.Fatalf("F64 = %v, want +Inf", v)
	}
	if v := sec.F64(); v != math.Pi {
		t.Fatalf("F64 = %v, want pi", v)
	}
	if b := sec.Bytes32(); string(b) != "hello" {
		t.Fatalf("Bytes32 = %q", b)
	}
	if sec.Err() != nil || sec.Remaining() != 0 {
		t.Fatalf("after full read: err=%v remaining=%d", sec.Err(), sec.Remaining())
	}
	sec, err = r.Next()
	if err != nil || sec.ID != 2 {
		t.Fatalf("second section: %v, %v", sec, err)
	}
	if n := sec.Count(4); n != 0 {
		// 3 elements × 4 bytes exceeds the 0 remaining payload bytes.
		t.Fatalf("Count accepted an impossible element count: %d", n)
	}
	if !errors.Is(sec.Err(), ErrCorrupt) {
		t.Fatalf("Count underflow: %v, want ErrCorrupt", sec.Err())
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("after end marker: %v, want io.EOF", err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next after EOF: %v, want io.EOF", err)
	}
}

func TestCodecHeaderFaults(t *testing.T) {
	raw := writeSample(t)

	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xFF
	if _, err := NewReader(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("mangled magic: %v, want ErrBadMagic", err)
	}

	bad = append([]byte(nil), raw...)
	bad[len(Magic)] = 99
	if _, err := NewReader(bytes.NewReader(bad)); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: %v, want ErrVersion", err)
	}

	if _, err := NewReader(bytes.NewReader(raw[:5])); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header: %v, want ErrTruncated", err)
	}
}

func TestCodecSectionFaults(t *testing.T) {
	raw := writeSample(t)
	hdr := len(Magic) + 4

	// Truncation anywhere after the header → ErrTruncated somewhere in
	// the section walk, never a clean EOF.
	for cut := hdr; cut < len(raw); cut++ {
		r, err := NewReader(NewTruncatedReader(bytes.NewReader(raw), int64(cut)))
		if err != nil {
			t.Fatalf("truncate@%d: header: %v", cut, err)
		}
		var last error
		for {
			_, err := r.Next()
			if err != nil {
				last = err
				break
			}
		}
		if last == io.EOF {
			t.Fatalf("truncate@%d decoded as a complete stream", cut)
		}
		if !errors.Is(last, ErrTruncated) && !errors.Is(last, ErrChecksum) && !errors.Is(last, ErrCorrupt) {
			t.Fatalf("truncate@%d: %v, want a typed error", cut, last)
		}
	}

	// A bit flip anywhere in a section → ErrChecksum or ErrCorrupt
	// (a flipped length field can fail structurally before the CRC runs).
	for off := hdr; off < len(raw); off++ {
		r, err := NewReader(NewBitFlipReader(bytes.NewReader(raw), int64(off), 0x10))
		if err != nil {
			t.Fatalf("flip@%d: header: %v", off, err)
		}
		var last error
		for {
			_, err := r.Next()
			if err != nil {
				last = err
				break
			}
		}
		if last == io.EOF {
			t.Fatalf("flip@%d went unnoticed", off)
		}
		if !errors.Is(last, ErrChecksum) && !errors.Is(last, ErrCorrupt) && !errors.Is(last, ErrTruncated) {
			t.Fatalf("flip@%d: %v, want a typed error", off, last)
		}
	}
}

// TestCodecLyingLength: a section that declares a huge payload on a
// short stream must fail with a typed error without allocating the
// claimed size (the chunked reader buffers at most ~1MB extra).
func TestCodecLyingLength(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Hand-craft a section header claiming maxSectionSize payload bytes.
	raw = append(raw, 1, 0, 0, 0) // id = 1
	raw = append(raw, 0, 0, 0, 0x80, 0, 0, 0, 0)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("lying length: %v, want ErrTruncated", err)
	}
	// Over the cap → rejected before any read.
	raw = raw[:len(raw)-8]
	raw = append(raw, 1, 0, 0, 0x80, 0, 0, 0, 0) // maxSectionSize+1
	r, err = NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length: %v, want ErrCorrupt", err)
	}
	_ = w
}

// TestCodecStickySectionError: after one out-of-bounds read every
// further field read returns zero and the original error sticks.
func TestCodecStickySectionError(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.Begin(7)
	w.U8(1)
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	sec.U64() // past the 1-byte payload
	first := sec.Err()
	if !errors.Is(first, ErrCorrupt) {
		t.Fatalf("overread: %v, want ErrCorrupt", first)
	}
	if v := sec.U32(); v != 0 {
		t.Fatalf("read after sticky error returned %d", v)
	}
	if sec.Err() != first {
		t.Fatal("sticky error was replaced")
	}
}

// TestWriterFaults: a failing underlying writer surfaces through
// End/Close and sticks.
func TestWriterFaults(t *testing.T) {
	// Fail inside the header.
	if _, err := NewWriter(&FaultWriter{W: io.Discard, Limit: 4}); !errors.Is(err, ErrInjected) {
		t.Fatalf("header fault: %v, want ErrInjected", err)
	}
	// Fail inside a section body.
	w, err := NewWriter(&FaultWriter{W: io.Discard, Limit: 20})
	if err != nil {
		t.Fatal(err)
	}
	w.Begin(1)
	for i := 0; i < 8; i++ {
		w.U64(uint64(i))
	}
	if err := w.End(); !errors.Is(err, ErrInjected) {
		t.Fatalf("section fault: %v, want ErrInjected", err)
	}
	if err := w.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Close after fault: %v, want the sticky ErrInjected", err)
	}
}
