package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// saveBlob writes one checkpoint generation holding payload inside the
// snapshot framing, so Load-side CRC verification has real structure
// to chew on.
func saveBlob(t *testing.T, k *Keeper, payload string) string {
	t.Helper()
	p, n, err := k.Save(func(f io.Writer) error {
		w, err := NewWriter(f)
		if err != nil {
			return err
		}
		w.Begin(1)
		w.Bytes32([]byte(payload))
		if err := w.End(); err != nil {
			return err
		}
		return w.Close()
	})
	if err != nil {
		t.Fatalf("save %q: %v", payload, err)
	}
	if n <= 0 {
		t.Fatalf("save %q reported %d bytes", payload, n)
	}
	return p
}

// loadBlob restores via the snapshot reader, returning the framed
// payload — and an error for any CRC/framing violation.
func loadBlob(k *Keeper) (string, string, error) {
	var payload string
	p, err := k.Load(func(f io.Reader) error {
		r, err := NewReader(f)
		if err != nil {
			return err
		}
		sec, err := r.Next()
		if err != nil {
			return err
		}
		payload = string(sec.Bytes32())
		if err := sec.Err(); err != nil {
			return err
		}
		for {
			if _, err := r.Next(); err == io.EOF {
				return nil
			} else if err != nil {
				return err
			}
		}
	})
	return p, payload, err
}

func TestKeeperZeroCheckpoints(t *testing.T) {
	k, err := NewKeeper(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := k.Generations(); n != 0 || err != nil {
		t.Fatalf("fresh dir: %d generations, %v", n, err)
	}
	_, _, err = loadBlob(k)
	if !IsNoCheckpoint(err) {
		t.Fatalf("empty load: %v, want ErrNoCheckpoint", err)
	}
	if !strings.Contains(err.Error(), "no checkpoints") {
		t.Fatalf("empty load should say why: %v", err)
	}
}

func TestKeeperRotationAndFallback(t *testing.T) {
	dir := t.TempDir()
	k, err := NewKeeper(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	saveBlob(t, k, "gen0")
	saveBlob(t, k, "gen1")
	p2 := saveBlob(t, k, "gen2")
	if n, _ := k.Generations(); n != 2 {
		t.Fatalf("retention: %d generations kept, want 2", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt-1.spot")); !os.IsNotExist(err) {
		t.Fatal("oldest generation not pruned")
	}
	p, payload, err := loadBlob(k)
	if err != nil || payload != "gen2" || p != p2 {
		t.Fatalf("load: %q from %s, %v", payload, p, err)
	}

	// Corrupt the newest generation: Load must fall back to gen1.
	raw, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x40 // inside the end marker's CRC
	if err := os.WriteFile(p2, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, payload, err = loadBlob(k); err != nil || payload != "gen1" {
		t.Fatalf("fallback: %q, %v — want gen1", payload, err)
	}

	// Corrupt every generation: ErrNoCheckpoint with both reasons.
	if err := os.WriteFile(filepath.Join(dir, "ckpt-2.spot"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = loadBlob(k)
	if !IsNoCheckpoint(err) {
		t.Fatalf("all corrupt: %v, want ErrNoCheckpoint", err)
	}
	for _, gen := range []string{"ckpt-2.spot", "ckpt-3.spot"} {
		if !strings.Contains(err.Error(), gen) {
			t.Fatalf("all-corrupt error does not name %s: %v", gen, err)
		}
	}
}

// TestKeeperDiskFullMidWrite: a write failure part-way through a Save
// must leave every previous generation intact and no temp debris, and
// the next Load restores the previous generation.
func TestKeeperDiskFullMidWrite(t *testing.T) {
	dir := t.TempDir()
	k, err := NewKeeper(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	saveBlob(t, k, "good")

	_, _, err = k.Save(func(f io.Writer) error {
		fw := &FaultWriter{W: f, Limit: 17} // dies mid-section
		w, err := NewWriter(fw)
		if err != nil {
			return err
		}
		w.Begin(1)
		w.Bytes32(bytes.Repeat([]byte("x"), 256))
		if err := w.End(); err != nil {
			return err
		}
		return w.Close()
	})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("disk-full save: %v, want ErrInjected", err)
	}
	if n, _ := k.Generations(); n != 1 {
		t.Fatalf("failed save changed the generation count: %d", n)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp debris left behind: %s", e.Name())
		}
	}
	if _, payload, err := loadBlob(k); err != nil || payload != "good" {
		t.Fatalf("after failed save: %q, %v — want the previous generation", payload, err)
	}

	// The sequence keeps moving: the next successful save is newest.
	saveBlob(t, k, "newer")
	if _, payload, err := loadBlob(k); err != nil || payload != "newer" {
		t.Fatalf("after recovery save: %q, %v", payload, err)
	}
}

// TestKeeperTornRename: a stale temp file from a crashed Save (the
// torn-rename window) is swept on the next NewKeeper and never shadows
// a durable generation; the sequence resumes above the newest one.
func TestKeeperTornRename(t *testing.T) {
	dir := t.TempDir()
	k, err := NewKeeper(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	saveBlob(t, k, "durable")
	// Simulate a crash between write and rename: a complete temp file
	// on disk that never got published.
	torn := filepath.Join(dir, ".ckpt-2.spot.tmp")
	if err := os.WriteFile(torn, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	k2, err := NewKeeper(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived keeper restart")
	}
	if n, _ := k2.Generations(); n != 1 {
		t.Fatalf("generations after restart: %d, want 1", n)
	}
	if _, payload, err := loadBlob(k2); err != nil || payload != "durable" {
		t.Fatalf("restart load: %q, %v", payload, err)
	}
	p := saveBlob(t, k2, "next")
	if !strings.HasSuffix(p, "ckpt-2.spot") {
		t.Fatalf("sequence did not resume above the newest generation: %s", p)
	}
}

// TestKeeperForeignFiles: unrelated files in the checkpoint directory
// are neither counted, pruned, nor loaded.
func TestKeeperForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"README", "ckpt-x.spot", "ckpt-1.other"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("foreign"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	k, err := NewKeeper(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := k.Generations(); n != 0 {
		t.Fatalf("foreign files counted as generations: %d", n)
	}
	for i := 0; i < 3; i++ {
		saveBlob(t, k, fmt.Sprintf("gen%d", i))
	}
	for _, name := range []string{"README", "ckpt-x.spot", "ckpt-1.other"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("foreign file %s was pruned: %v", name, err)
		}
	}
}
