// Package snapshot implements the crash-safe checkpoint layer of the
// SPOT detector: a versioned binary section codec, a checkpoint keeper
// doing atomic write-temp-fsync-rename rotation with verified-fallback
// loading, and fault injectors (FaultWriter/FaultReader) that the
// recovery tests drive short writes, torn renames, bit flips and
// truncation through.
//
// Wire format (version 1):
//
//	header   magic "SPOTSNP1" (8 bytes) · format version (uint32 LE)
//	section  id (uint32) · payload length (uint64) · payload ·
//	         CRC32-IEEE over id+length+payload (uint32)
//	...      more sections
//	end      a section with id EndSection and empty payload
//
// All integers are little-endian; float64s travel as their IEEE-754
// bit patterns, so an encode/decode round trip is bit-exact — the
// property the detector's verdict-bit-identical restore contract is
// built on. Every section carries its own CRC, so corruption is
// localized: a reader knows exactly which section died, and the keeper
// can fall back to an older generation. A stream that ends before the
// end marker is reported as ErrTruncated — a torn write never decodes
// as a shorter-but-valid checkpoint.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Magic identifies a SPOT snapshot stream; it is the first 8 bytes of
// every checkpoint.
const Magic = "SPOTSNP1"

// Version is the current snapshot format version. Readers reject any
// other version with ErrVersion: the format carries full detector
// state whose semantics are pinned by the writing build, so version
// skew is a hard error rather than a best-effort migration (the
// version-skew policy is documented in docs/ARCHITECTURE.md).
//
// History: 1 — initial format; 2 — the stream meta section gained the
// scoring fields (Scoring flag, top-K capacity) and a top-K heap
// section follows the evolver state when scoring retains one; 3 — the
// meta section gained the auto-threshold fields (enabled flag, Risk,
// Level), the top-K section gained the ranking-key rebase anchor, and
// an EVT calibrator section trails the stream when auto-thresholding
// is on.
const Version uint32 = 3

// EndSection is the reserved section ID of the end-of-stream marker.
const EndSection uint32 = 0xFFFFFFFF

// maxSectionSize bounds a single section's declared payload length.
// A corrupt or adversarial length field beyond it is rejected before
// any allocation is attempted.
const maxSectionSize = 1 << 31

// readChunk is the granularity section payloads are read in: a lying
// length field on a truncated stream fails with ErrTruncated after
// buffering at most one extra chunk, never after allocating the full
// claimed size.
const readChunk = 1 << 20

// Typed error taxonomy of the snapshot layer. Callers branch with
// errors.Is; every failure path wraps one of these.
var (
	// ErrBadMagic marks a stream that is not a SPOT snapshot at all.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrVersion marks a snapshot written by an incompatible format
	// version.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrChecksum marks a section whose CRC32 does not match its
	// payload — a bit flip or torn overwrite.
	ErrChecksum = errors.New("snapshot: section checksum mismatch")
	// ErrTruncated marks a stream that ended before its end marker — a
	// short write or truncation.
	ErrTruncated = errors.New("snapshot: truncated stream")
	// ErrCorrupt marks structurally invalid contents: an impossible
	// length field, a field read past a section's end, or section
	// contents that fail semantic validation downstream.
	ErrCorrupt = errors.New("snapshot: corrupt stream")
	// ErrNoCheckpoint is returned by Keeper.Load when no retained
	// generation decodes cleanly (or none exists).
	ErrNoCheckpoint = errors.New("snapshot: no usable checkpoint")
)

// Writer encodes a snapshot stream section by section. Sections are
// buffered in memory until End so their length and CRC can be written
// up front; the underlying writer only ever sees complete sections.
// The first write error sticks and is returned by every subsequent
// End/Close, so callers may defer error handling to Close.
type Writer struct {
	w    io.Writer
	buf  []byte
	id   uint32
	open bool
	n    int64
	err  error
}

// NewWriter writes the snapshot header to w and returns a Writer for
// its sections.
func NewWriter(w io.Writer) (*Writer, error) {
	sw := &Writer{w: w}
	var hdr [len(Magic) + 4]byte
	copy(hdr[:], Magic)
	binary.LittleEndian.PutUint32(hdr[len(Magic):], Version)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	sw.n = int64(len(hdr))
	return sw, nil
}

// Bytes returns the number of bytes emitted to the underlying writer
// so far, including the header and every completed section.
func (w *Writer) Bytes() int64 { return w.n }

// Begin starts buffering a new section with the given ID. Sections may
// not nest; Begin panics if the previous section was not ended —
// that is a programming error in the snapshot producer, not a data
// fault.
func (w *Writer) Begin(id uint32) {
	if w.open {
		panic("snapshot: Begin inside an open section")
	}
	if id == EndSection {
		panic("snapshot: EndSection is reserved for Close")
	}
	w.id = id
	w.open = true
	w.buf = w.buf[:0]
}

// U8 appends one byte to the open section.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte (0 or 1) to the open section.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U16 appends a little-endian uint16 to the open section.
func (w *Writer) U16(v uint16) {
	w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
}

// U32 appends a little-endian uint32 to the open section.
func (w *Writer) U32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// U64 appends a little-endian uint64 to the open section.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// F64 appends a float64 as its IEEE-754 bit pattern, so the value
// round-trips bit-exactly (including NaN payloads and signed zeros).
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes32 appends a uint32-length-prefixed byte string to the open
// section.
func (w *Writer) Bytes32(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// End completes the open section: its framing, payload and CRC are
// flushed to the underlying writer.
func (w *Writer) End() error {
	if !w.open {
		panic("snapshot: End without Begin")
	}
	w.open = false
	if w.err != nil {
		return w.err
	}
	w.err = w.emit(w.id, w.buf)
	return w.err
}

// Close writes the end-of-stream marker. It does not close the
// underlying writer; the caller owns fsync/close of the file.
func (w *Writer) Close() error {
	if w.open {
		panic("snapshot: Close inside an open section")
	}
	if w.err != nil {
		return w.err
	}
	w.err = w.emit(EndSection, nil)
	return w.err
}

// emit frames one section onto the underlying writer.
func (w *Writer) emit(id uint32, payload []byte) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], id)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(payload)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	for _, b := range [][]byte{hdr[:], payload, sum[:]} {
		n, err := w.w.Write(b)
		w.n += int64(n)
		if err != nil {
			return err
		}
	}
	return nil
}

// Reader decodes a snapshot stream section by section, verifying the
// header once and each section's CRC as it is read.
type Reader struct {
	r    io.Reader
	done bool
}

// NewReader validates the snapshot header of r and returns a Reader
// for its sections.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [len(Magic) + 4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if string(hdr[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[len(Magic):]); v != Version {
		return nil, fmt.Errorf("%w: got %d, this build reads %d", ErrVersion, v, Version)
	}
	return &Reader{r: r}, nil
}

// Next reads, CRC-verifies and returns the next section. It returns
// io.EOF after the end-of-stream marker; a stream that ends without
// one yields ErrTruncated, and a CRC mismatch yields ErrChecksum.
func (r *Reader) Next() (*Section, error) {
	if r.done {
		return nil, io.EOF
	}
	var hdr [12]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: section header: %v", ErrTruncated, err)
	}
	id := binary.LittleEndian.Uint32(hdr[0:])
	size := binary.LittleEndian.Uint64(hdr[4:])
	if size > maxSectionSize {
		return nil, fmt.Errorf("%w: section %d declares %d bytes", ErrCorrupt, id, size)
	}
	// Chunked payload read: a lying length on a truncated stream fails
	// after at most one extra chunk of buffering, never by allocating
	// the full claimed size up front.
	payload := make([]byte, 0, min(size, readChunk))
	for uint64(len(payload)) < size {
		chunk := min(size-uint64(len(payload)), readChunk)
		off := len(payload)
		payload = append(payload, make([]byte, chunk)...)
		if _, err := io.ReadFull(r.r, payload[off:]); err != nil {
			return nil, fmt.Errorf("%w: section %d payload: %v", ErrTruncated, id, err)
		}
	}
	var sum [4]byte
	if _, err := io.ReadFull(r.r, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: section %d checksum: %v", ErrTruncated, id, err)
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(payload)
	if crc.Sum32() != binary.LittleEndian.Uint32(sum[:]) {
		return nil, fmt.Errorf("%w: section %d", ErrChecksum, id)
	}
	if id == EndSection {
		r.done = true
		return nil, io.EOF
	}
	return &Section{ID: id, data: payload}, nil
}

// Section is one CRC-verified unit of a snapshot stream. Field reads
// consume the payload in order; the first out-of-bounds read sets a
// sticky error (checked via Err) and every subsequent read returns
// zero, so decode loops stay linear and validate once at the end.
type Section struct {
	// ID is the section's type tag as written by Writer.Begin.
	ID   uint32
	data []byte
	off  int
	err  error
}

// take consumes n payload bytes, arming the sticky error on underflow.
func (s *Section) take(n int) []byte {
	if s.err != nil {
		return nil
	}
	if s.off+n > len(s.data) || s.off+n < s.off {
		s.err = fmt.Errorf("%w: section %d: read past payload end", ErrCorrupt, s.ID)
		return nil
	}
	b := s.data[s.off : s.off+n]
	s.off += n
	return b
}

// Err returns the sticky decode error, nil while every read so far was
// in bounds.
func (s *Section) Err() error { return s.err }

// Remaining returns the number of unread payload bytes.
func (s *Section) Remaining() int { return len(s.data) - s.off }

// U8 consumes one byte.
func (s *Section) U8() uint8 {
	if b := s.take(1); b != nil {
		return b[0]
	}
	return 0
}

// Bool consumes one byte, rejecting values other than 0 and 1 so a
// corrupt flag cannot smuggle extra states past validation.
func (s *Section) Bool() bool {
	v := s.U8()
	if v > 1 && s.err == nil {
		s.err = fmt.Errorf("%w: section %d: boolean byte %d", ErrCorrupt, s.ID, v)
	}
	return v == 1
}

// U16 consumes a little-endian uint16.
func (s *Section) U16() uint16 {
	if b := s.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

// U32 consumes a little-endian uint32.
func (s *Section) U32() uint32 {
	if b := s.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

// U64 consumes a little-endian uint64.
func (s *Section) U64() uint64 {
	if b := s.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

// F64 consumes a float64 bit pattern.
func (s *Section) F64() float64 { return math.Float64frombits(s.U64()) }

// Bytes32 consumes a uint32-length-prefixed byte string. The returned
// slice aliases the section's payload; callers that retain it copy it
// themselves.
func (s *Section) Bytes32() []byte {
	n := s.U32()
	if s.err == nil && int(n) > s.Remaining() {
		s.err = fmt.Errorf("%w: section %d: byte string of %d exceeds payload", ErrCorrupt, s.ID, n)
		return nil
	}
	return s.take(int(n))
}

// Count consumes a uint32 element count and validates it against the
// remaining payload at minSize bytes per element, so a corrupt count
// fails cleanly here instead of sizing a huge allocation downstream.
func (s *Section) Count(minSize int) int {
	n := s.U32()
	if s.err == nil && minSize > 0 && uint64(n)*uint64(minSize) > uint64(s.Remaining()) {
		s.err = fmt.Errorf("%w: section %d: count %d exceeds payload", ErrCorrupt, s.ID, n)
		return 0
	}
	return int(n)
}

// Verify walks a snapshot stream end to end, checking the header and
// every section CRC, without interpreting any section's contents. It
// returns nil when the stream is structurally sound and the typed
// error of the first fault otherwise (ErrBadMagic, ErrVersion,
// ErrChecksum, ErrTruncated, ErrCorrupt). Semantic validity — whether
// the sections decode into a detector — is Restore's job; Verify is
// the cheap integrity probe health endpoints and keepers use.
func Verify(r io.Reader) error {
	sr, err := NewReader(r)
	if err != nil {
		return err
	}
	for {
		if _, err := sr.Next(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}
