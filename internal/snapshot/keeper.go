package snapshot

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ckptPrefix/ckptSuffix frame checkpoint file names: ckpt-<seq>.spot,
// with <seq> a monotonically increasing decimal sequence number.
const (
	ckptPrefix = "ckpt-"
	ckptSuffix = ".spot"
	tmpSuffix  = ".tmp"
)

// Keeper manages a directory of rotated checkpoint generations with
// crash-safe writes and verified fallback on load.
//
// Save streams a new checkpoint through a temp file and only renames it
// into place after the data is fsynced, so a crash at any point leaves
// either the complete new generation or the untouched previous ones —
// never a half-written file under a checkpoint name. Load walks the
// retained generations newest first and restores from the first one
// whose CRCs verify end to end, collecting a per-generation failure
// reason for the ones that don't; if none survives, it reports
// ErrNoCheckpoint with the reasons attached, and the caller degrades
// to a fresh start.
//
// A Keeper is safe for concurrent use: sequence numbers are allocated
// under a mutex, so parallel Saves (e.g. a tenant worker's cadence and
// a replication shipper) each get a distinct generation, and Load,
// Info and Verify only ever observe complete generations because a
// checkpoint appears under its durable name atomically via rename.
type Keeper struct {
	dir  string
	keep int

	mu  sync.Mutex
	seq uint64
}

// NewKeeper opens (creating if needed) a checkpoint directory that
// retains the newest keep generations; keep < 1 is treated as 1. Stale
// temp files from a previous crash are removed, and the sequence
// counter resumes above the newest retained generation.
func NewKeeper(dir string, keep int) (*Keeper, error) {
	if keep < 1 {
		keep = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: keeper dir: %w", err)
	}
	// Sequence numbers start at 1 so generation 0 unambiguously means
	// "none" wherever a generation number travels alone (e.g. the ping
	// identity reply).
	k := &Keeper{dir: dir, keep: keep, seq: 1}
	gens, err := k.generations()
	if err != nil {
		return nil, err
	}
	if n := len(gens); n > 0 {
		k.seq = gens[n-1] + 1
	}
	// A temp file is by definition an interrupted Save; it never holds
	// the newest durable state, so dropping it is always safe.
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: keeper dir: %w", err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), tmpSuffix) && strings.HasPrefix(e.Name(), "."+ckptPrefix) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return k, nil
}

// Dir returns the checkpoint directory the keeper manages.
func (k *Keeper) Dir() string { return k.dir }

// generations lists the retained checkpoint sequence numbers in
// ascending order.
func (k *Keeper) generations() ([]uint64, error) {
	ents, err := os.ReadDir(k.dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: keeper dir: %w", err)
	}
	var gens []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(name[len(ckptPrefix):len(name)-len(ckptSuffix)], 10, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		gens = append(gens, seq)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// Generations returns the number of retained checkpoint generations.
func (k *Keeper) Generations() (int, error) {
	gens, err := k.generations()
	return len(gens), err
}

// NewestSeq returns the sequence number of the newest retained
// generation and whether one exists. It lists the directory rather
// than trusting the in-memory counter, so it reflects what a recovery
// would actually see.
func (k *Keeper) NewestSeq() (uint64, bool) {
	gens, err := k.generations()
	if err != nil || len(gens) == 0 {
		return 0, false
	}
	return gens[len(gens)-1], true
}

// path returns the durable file name of generation seq.
func (k *Keeper) path(seq uint64) string {
	return filepath.Join(k.dir, fmt.Sprintf("%s%d%s", ckptPrefix, seq, ckptSuffix))
}

// Save writes one new checkpoint generation: write streams the
// snapshot into the passed writer (Detector.Snapshot fits the
// signature directly). The data goes to a hidden temp file first, is
// fsynced, and only then renamed to its durable name and the directory
// fsynced — so a crash or write error at any point leaves every
// previous generation intact. On success, generations beyond the
// retention count are pruned. Returns the durable path and the number
// of bytes written.
func (k *Keeper) Save(write func(w io.Writer) error) (string, int64, error) {
	k.mu.Lock()
	seq := k.seq
	k.seq++
	k.mu.Unlock()
	tmp := filepath.Join(k.dir, fmt.Sprintf(".%s%d%s%s", ckptPrefix, seq, ckptSuffix, tmpSuffix))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return "", 0, fmt.Errorf("snapshot: create temp: %w", err)
	}
	cleanup := func(err error) (string, int64, error) {
		f.Close()
		os.Remove(tmp)
		return "", 0, err
	}
	if err := write(f); err != nil {
		return cleanup(fmt.Errorf("snapshot: write checkpoint: %w", err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("snapshot: sync checkpoint: %w", err))
	}
	st, err := f.Stat()
	if err != nil {
		return cleanup(fmt.Errorf("snapshot: stat checkpoint: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", 0, fmt.Errorf("snapshot: close checkpoint: %w", err)
	}
	dst := k.path(seq)
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return "", 0, fmt.Errorf("snapshot: publish checkpoint: %w", err)
	}
	syncDir(k.dir)
	k.prune()
	return dst, st.Size(), nil
}

// prune removes generations beyond the retention count, oldest first.
// Best effort: a prune failure never fails the Save that triggered it.
func (k *Keeper) prune() {
	gens, err := k.generations()
	if err != nil {
		return
	}
	for len(gens) > k.keep {
		os.Remove(k.path(gens[0]))
		gens = gens[1:]
	}
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
// Best effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Load restores from the newest generation that decodes cleanly:
// restore is invoked with each candidate checkpoint, newest first,
// until one succeeds (typically stream.Restore, which verifies every
// section CRC on the way through). Generations that fail are recorded
// and skipped. If no generation survives — including the
// zero-checkpoints case — Load returns an error wrapping
// ErrNoCheckpoint that lists every per-generation failure reason, and
// the caller falls back to a fresh start. Returns the path of the
// generation that restored.
func (k *Keeper) Load(restore func(r io.Reader) error) (string, error) {
	gens, err := k.generations()
	if err != nil {
		return "", err
	}
	var reasons []string
	for i := len(gens) - 1; i >= 0; i-- {
		p := k.path(gens[i])
		f, err := os.Open(p)
		if err != nil {
			reasons = append(reasons, fmt.Sprintf("%s: %v", filepath.Base(p), err))
			continue
		}
		err = restore(f)
		f.Close()
		if err == nil {
			return p, nil
		}
		reasons = append(reasons, fmt.Sprintf("%s: %v", filepath.Base(p), err))
	}
	if len(reasons) == 0 {
		return "", fmt.Errorf("%w: directory %s holds no checkpoints", ErrNoCheckpoint, k.dir)
	}
	return "", fmt.Errorf("%w: %s", ErrNoCheckpoint, strings.Join(reasons, "; "))
}

// IsNoCheckpoint reports whether err means no retained generation was
// usable — the condition under which a caller starts fresh instead of
// restoring.
func IsNoCheckpoint(err error) bool { return errors.Is(err, ErrNoCheckpoint) }

// Info describes the keeper's newest retained checkpoint generation —
// the metadata a serving daemon's health endpoint reports without
// decoding detector state.
type Info struct {
	// Generations is the number of retained checkpoint generations.
	Generations int
	// LatestSeq and LatestPath identify the newest generation; zero
	// values when Generations is 0.
	LatestSeq  uint64
	LatestPath string
	// Bytes is the newest generation's file size.
	Bytes int64
	// SavedAt is the newest generation's modification time — when its
	// Save completed.
	SavedAt time.Time
	// Verified reports whether the newest generation's framing and
	// every section CRC check out (see Verify); VerifyError carries
	// the typed failure when it does not. A false Verified does not
	// mean recovery is lost: Load falls back to older generations.
	Verified    bool
	VerifyError string
}

// Info inspects the retained generations and CRC-verifies the newest
// one. It never decodes detector state, so it is cheap enough for a
// health endpoint on a checkpoint cadence; with zero generations it
// returns a zero Info and no error.
func (k *Keeper) Info() (Info, error) {
	gens, err := k.generations()
	if err != nil {
		return Info{}, err
	}
	info := Info{Generations: len(gens)}
	if len(gens) == 0 {
		return info, nil
	}
	seq := gens[len(gens)-1]
	p := k.path(seq)
	info.LatestSeq = seq
	info.LatestPath = p
	st, err := os.Stat(p)
	if err != nil {
		// Pruned or removed between the listing and the stat; report
		// what the listing saw rather than failing the health probe.
		info.VerifyError = err.Error()
		return info, nil
	}
	info.Bytes = st.Size()
	info.SavedAt = st.ModTime()
	f, err := os.Open(p)
	if err != nil {
		info.VerifyError = err.Error()
		return info, nil
	}
	defer f.Close()
	if err := Verify(f); err != nil {
		info.VerifyError = err.Error()
		return info, nil
	}
	info.Verified = true
	return info, nil
}
