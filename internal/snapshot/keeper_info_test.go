package snapshot

import (
	"bytes"
	"errors"
	"io"
	"os"
	"strings"
	"testing"
)

// saveGen writes one generation holding a tiny valid snapshot stream
// whose single section carries payload.
func saveGen(t *testing.T, k *Keeper, payload []byte) string {
	t.Helper()
	path, _, err := k.Save(func(w io.Writer) error {
		sw, err := NewWriter(w)
		if err != nil {
			return err
		}
		sw.Begin(7)
		sw.Bytes32(payload)
		if err := sw.End(); err != nil {
			return err
		}
		return sw.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

// TestKeeperInfoEmpty pins the zero-generations case: a zero Info and
// no error, so a health probe on a fresh daemon is clean.
func TestKeeperInfoEmpty(t *testing.T) {
	k, err := NewKeeper(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	info, err := k.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info != (Info{}) {
		t.Fatalf("empty keeper: want zero Info, got %+v", info)
	}
}

// TestKeeperInfoRotation saves past the retention count and checks
// Info tracks the newest generation through pruning.
func TestKeeperInfoRotation(t *testing.T) {
	k, err := NewKeeper(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var lastPath string
	for i := 0; i < 5; i++ {
		lastPath = saveGen(t, k, bytes.Repeat([]byte{byte(i)}, 10+i))
		info, err := k.Info()
		if err != nil {
			t.Fatal(err)
		}
		wantGens := i + 1
		if wantGens > 2 {
			wantGens = 2
		}
		if info.Generations != wantGens {
			t.Fatalf("after save %d: got %d generations, want %d", i, info.Generations, wantGens)
		}
		if info.LatestSeq != uint64(i+1) {
			t.Fatalf("after save %d: latest seq %d, want %d", i, info.LatestSeq, i+1)
		}
		if info.LatestPath != lastPath {
			t.Fatalf("after save %d: latest path %q, want %q", i, info.LatestPath, lastPath)
		}
		if !info.Verified || info.VerifyError != "" {
			t.Fatalf("after save %d: clean generation not verified: %+v", i, info)
		}
		if info.Bytes <= 0 || info.SavedAt.IsZero() {
			t.Fatalf("after save %d: missing size/timestamp: %+v", i, info)
		}
	}
}

// TestKeeperInfoCorruptLatest flips a byte in the newest generation:
// Info must report Verified=false with the typed reason while an older
// intact generation still loads.
func TestKeeperInfoCorruptLatest(t *testing.T) {
	k, err := NewKeeper(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	saveGen(t, k, []byte("good"))
	latest := saveGen(t, k, []byte("newest"))

	raw, err := os.ReadFile(latest)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(latest, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	info, err := k.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Verified {
		t.Fatalf("corrupt latest reported verified: %+v", info)
	}
	if info.VerifyError == "" || !strings.Contains(info.VerifyError, "checksum") {
		t.Fatalf("want a checksum verify error, got %q", info.VerifyError)
	}
	// The keeper's fallback contract still holds: Load skips the
	// corrupt newest generation and restores the older one.
	var got []byte
	if _, err := k.Load(func(r io.Reader) error {
		sr, err := NewReader(r)
		if err != nil {
			return err
		}
		sec, err := sr.Next()
		if err != nil {
			return err
		}
		got = append([]byte{}, sec.Bytes32()...)
		return sec.Err()
	}); err != nil {
		t.Fatal(err)
	}
	if string(got) != "good" {
		t.Fatalf("fallback loaded %q, want the older generation", got)
	}
}

// TestKeeperInfoTruncatedLatest truncates the newest generation below
// its end marker; Verify must classify it as truncated.
func TestKeeperInfoTruncatedLatest(t *testing.T) {
	k, err := NewKeeper(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	latest := saveGen(t, k, []byte("payload"))
	raw, err := os.ReadFile(latest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(latest, raw[:len(raw)-6], 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := k.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Verified || !strings.Contains(info.VerifyError, "truncated") {
		t.Fatalf("truncated latest: %+v", info)
	}
}

// TestKeeperInfoReopen reopens the directory with a fresh keeper: Info
// must see the previous process's generations (the recovery-on-boot
// view spotd reports before its first Save).
func TestKeeperInfoReopen(t *testing.T) {
	dir := t.TempDir()
	k, err := NewKeeper(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	saveGen(t, k, []byte("a"))
	saveGen(t, k, []byte("b"))

	k2, err := NewKeeper(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	info, err := k2.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Generations != 2 || info.LatestSeq != 2 || !info.Verified {
		t.Fatalf("reopened keeper info: %+v", info)
	}
	// The resumed sequence counter keeps Info monotonic across the
	// restart boundary.
	saveGen(t, k2, []byte("c"))
	info, err = k2.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.LatestSeq != 3 || info.Generations != 2 {
		t.Fatalf("post-restart save: %+v", info)
	}
}

// TestVerifyTypedErrors drives Verify through the fault taxonomy
// directly: bad magic, wrong version, bit flip, truncation.
func TestVerifyTypedErrors(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sw.Begin(1)
	sw.U64(42)
	if err := sw.End(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	if err := Verify(bytes.NewReader(clean)); err != nil {
		t.Fatalf("clean stream failed verify: %v", err)
	}

	bad := append([]byte{}, clean...)
	bad[0] ^= 0xFF
	if err := Verify(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}

	bad = append([]byte{}, clean...)
	bad[len(Magic)] = 99
	if err := Verify(bytes.NewReader(bad)); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: got %v", err)
	}

	bad = append([]byte{}, clean...)
	bad[len(bad)-1] ^= 0x01
	if err := Verify(bytes.NewReader(bad)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("flipped CRC: got %v", err)
	}

	if err := Verify(bytes.NewReader(clean[:len(clean)-4])); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncation: got %v", err)
	}
}
