package snapshot

import (
	"bytes"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// validSnapshotBytes builds one tiny structurally-valid snapshot
// stream (header + a single CRC'd section) for saves whose content is
// irrelevant but whose verifiability is not.
func validSnapshotBytes(t *testing.T, fill byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sw.Begin(7)
	sw.Bytes32(bytes.Repeat([]byte{fill}, 64))
	if err := sw.End(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestKeeperConcurrentSaveLoadVerify hammers one Keeper from parallel
// savers (some of which fail mid-write), loaders and Info probes — the
// shape a tenant worker's cadence plus a replication shipper plus a
// health endpoint produce. It pins generation sequencing (every
// successful Save gets a distinct, strictly increasing sequence
// number) and that Info never reports Verified for a generation whose
// CRCs do not verify: whenever Info says Verified, re-opening that
// exact path must Verify cleanly, and whenever it does not, the only
// acceptable causes are pruning races — never a torn or corrupt file
// under a durable checkpoint name.
func TestKeeperConcurrentSaveLoadVerify(t *testing.T) {
	const savers, savesEach = 4, 8
	dir := t.TempDir()
	k, err := NewKeeper(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	snap := validSnapshotBytes(t, 0xAB)

	var wg sync.WaitGroup
	paths := make(chan string, savers*savesEach)
	errc := make(chan error, savers*savesEach+64)

	// Savers: valid snapshot writes, with a failing write interleaved so
	// the cleanup path (temp removal, no durable name) runs concurrently
	// with everything else.
	for g := 0; g < savers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < savesEach; i++ {
				p, _, err := k.Save(func(w io.Writer) error {
					_, err := w.Write(snap)
					return err
				})
				if err != nil {
					errc <- err
					return
				}
				paths <- p
				k.Save(func(w io.Writer) error {
					fw := &FaultWriter{W: w, Limit: 8}
					_, err := fw.Write(snap)
					return err
				})
			}
		}()
	}

	// Loaders: Load must always land on a complete, verifiable
	// generation or report ErrNoCheckpoint — never a decode fault from a
	// half-written file.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2*savesEach; i++ {
				_, err := k.Load(func(r io.Reader) error { return Verify(r) })
				if err != nil && !IsNoCheckpoint(err) {
					errc <- err
					return
				}
			}
		}()
	}

	// Info probes: Verified must be trustworthy while saves rotate
	// generations underneath.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4*savesEach; i++ {
			info, err := k.Info()
			if err != nil {
				errc <- err
				return
			}
			if info.Generations == 0 {
				continue
			}
			switch {
			case info.Verified:
				f, err := os.Open(info.LatestPath)
				if err != nil {
					// Pruned between Info and the re-open; fine.
					continue
				}
				err = Verify(f)
				f.Close()
				if err != nil {
					errc <- err
					return
				}
			case info.VerifyError != "":
				// The only legitimate failure under concurrency is the
				// generation vanishing to a prune between the listing
				// and the verify — never a corrupt durable file.
				if !strings.Contains(info.VerifyError, "no such file") {
					errc <- os.ErrInvalid
					return
				}
			}
		}
	}()

	wg.Wait()
	close(paths)
	close(errc)
	for err := range errc {
		t.Fatalf("concurrent keeper fault: %v", err)
	}

	// Generation sequencing: every successful Save produced a distinct
	// sequence number.
	seen := map[uint64]string{}
	for p := range paths {
		base := strings.TrimSuffix(strings.TrimPrefix(p[strings.LastIndex(p, "/")+1:], ckptPrefix), ckptSuffix)
		seq, err := strconv.ParseUint(base, 10, 64)
		if err != nil {
			t.Fatalf("save returned unparseable path %q", p)
		}
		if prev, dup := seen[seq]; dup {
			t.Fatalf("sequence %d allocated twice: %s and %s", seq, prev, p)
		}
		seen[seq] = p
	}
	if len(seen) != savers*savesEach {
		t.Fatalf("%d distinct generations, want %d", len(seen), savers*savesEach)
	}

	// After the dust settles the keeper holds exactly the retention
	// count, newest verified.
	if n, err := k.Generations(); err != nil || n != 3 {
		t.Fatalf("retained %d generations (err %v), want 3", n, err)
	}
	info, err := k.Info()
	if err != nil {
		t.Fatal(err)
	}
	if !info.Verified {
		t.Fatalf("settled newest generation unverified: %+v", info)
	}
	if seq, ok := k.NewestSeq(); !ok || seq != info.LatestSeq {
		t.Fatalf("NewestSeq %d/%v, want %d", seq, ok, info.LatestSeq)
	}
}
