package snapshot

import (
	"errors"
	"io"
)

// ErrInjected is the error every fault injector returns when its
// scripted fault fires; recovery tests assert against it to tell
// injected failures from real ones.
var ErrInjected = errors.New("snapshot: injected fault")

// FaultWriter wraps an io.Writer and injects a short write: the first
// Limit bytes pass through, then every write fails with ErrInjected —
// the disk-full / process-killed-mid-write shape the keeper tests
// drive checkpoint saves through.
type FaultWriter struct {
	// W is the underlying writer.
	W io.Writer
	// Limit is how many bytes pass through before writes start failing.
	Limit int64
	n     int64
}

// Write passes b through until Limit is reached, then short-writes the
// remaining budget and fails with ErrInjected.
func (f *FaultWriter) Write(b []byte) (int, error) {
	if f.n >= f.Limit {
		return 0, ErrInjected
	}
	if rem := f.Limit - f.n; int64(len(b)) > rem {
		n, err := f.W.Write(b[:rem])
		f.n += int64(n)
		if err != nil {
			return n, err
		}
		return n, ErrInjected
	}
	n, err := f.W.Write(b)
	f.n += int64(n)
	return n, err
}

// FaultReader wraps an io.Reader and injects the read-side fault
// menagerie: truncation (the stream ends early at Truncate bytes) and
// a bit flip (the byte at offset FlipAt is XORed with FlipMask). The
// recovery tests feed corrupted checkpoints through it and assert the
// decoder returns clean typed errors — never a panic or silently
// wrong state.
type FaultReader struct {
	// R is the underlying reader.
	R io.Reader
	// Truncate ends the stream after this many bytes; < 0 disables
	// truncation.
	Truncate int64
	// FlipAt is the byte offset whose bits are flipped; < 0 disables
	// the flip.
	FlipAt int64
	// FlipMask is XORed into the byte at FlipAt; a zero mask with
	// FlipAt ≥ 0 defaults to flipping the low bit.
	FlipMask byte
	n        int64
}

// Read reads from the underlying reader, applying the configured
// truncation and bit flip at their offsets.
func (f *FaultReader) Read(b []byte) (int, error) {
	if f.Truncate >= 0 && f.n >= f.Truncate {
		return 0, io.EOF
	}
	if f.Truncate >= 0 {
		if rem := f.Truncate - f.n; int64(len(b)) > rem {
			b = b[:rem]
		}
	}
	n, err := f.R.Read(b)
	if f.FlipAt >= f.n && f.FlipAt < f.n+int64(n) {
		mask := f.FlipMask
		if mask == 0 {
			mask = 1
		}
		b[f.FlipAt-f.n] ^= mask
	}
	f.n += int64(n)
	return n, err
}

// NewTruncatedReader returns a FaultReader that delivers only the
// first n bytes of r.
func NewTruncatedReader(r io.Reader, n int64) *FaultReader {
	return &FaultReader{R: r, Truncate: n, FlipAt: -1}
}

// NewBitFlipReader returns a FaultReader that flips mask into the byte
// at offset off of r.
func NewBitFlipReader(r io.Reader, off int64, mask byte) *FaultReader {
	return &FaultReader{R: r, Truncate: -1, FlipAt: off, FlipMask: mask}
}
