#!/usr/bin/env bash
# Runs the detector throughput benchmarks and refreshes BENCH_core.json,
# the machine-readable perf baseline tracked in the repo root. The
# recorded git SHA ties every baseline to the commit that produced it.
# Any failing step aborts the script with a non-zero exit (surfaced by
# `make bench`), so a broken benchmark can never silently leave a stale
# BENCH_core.json behind.
set -euo pipefail
cd "$(dirname "$0")/.."

trap 'code=$?; echo "bench.sh: FAILED (exit $code)" >&2; exit $code' ERR

go test -bench BenchmarkDetector -benchtime=1s -run '^$' ./internal/stream/
# spotbench resolves and records the producing git SHA itself
# (overridable with -gitsha). Extra flags pass straight through — e.g.
#   ./scripts/bench.sh -cpuprofile /tmp/spot.prof
# profiles the throughput grid, and the JSON now carries ns_per_point /
# allocs_per_point per configuration plus the serial-vs-parallel epoch
# sweep pause. `make microbench` complements this artifact with the
# table-level and per-point microbenchmarks and their zero-alloc gates.
go run ./cmd/spotbench -out BENCH_core.json "$@"
