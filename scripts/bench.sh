#!/usr/bin/env bash
# Runs the detector throughput benchmarks and refreshes BENCH_core.json,
# the machine-readable perf baseline tracked in the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

go test -bench BenchmarkDetector -benchtime=1s -run '^$' ./internal/stream/
go run ./cmd/spotbench -out BENCH_core.json "$@"
