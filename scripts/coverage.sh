#!/usr/bin/env bash
# Coverage gate for internal/...: fails when total statement coverage
# drops below the checked-in floor (scripts/coverage_threshold.txt).
# The floor exists so a future PR cannot silently drop the
# property/fuzz/table suites that pin the detector's correctness
# claims; raise it as coverage grows, never lower it to make a PR pass.
#
# Usage: coverage.sh [profile]
# With no argument the suite is run here to produce the profile; CI
# passes the profile its race run already produced so the tests only
# run once.
set -euo pipefail
cd "$(dirname "$0")/.."

threshold=$(<scripts/coverage_threshold.txt)
tmpfiles=()
trap '((${#tmpfiles[@]})) && rm -f "${tmpfiles[@]}"' EXIT
if [[ $# -ge 1 ]]; then
  profile=$1
else
  profile=$(mktemp)
  tmpfiles+=("$profile")
  go test -coverprofile="$profile" ./internal/... >/dev/null
fi
total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
echo "coverage: ${total}% of statements in internal/... (floor: ${threshold}%)"
if ! awk -v t="$threshold" -v c="$total" 'BEGIN { exit !(c+0 >= t+0) }'; then
  echo "coverage.sh: FAILED — ${total}% is below the ${threshold}% floor" >&2
  exit 1
fi

# Per-package floor for internal/stream, the detector's correctness
# core (verdict measures, scoring, top-K, snapshot round-trip): its
# oracle suites must not be diluted by growth elsewhere in internal/,
# so it carries its own higher floor on top of the aggregate one.
stream_threshold=$(<scripts/coverage_threshold_stream.txt)
stream_profile=$(mktemp)
tmpfiles+=("$stream_profile")
head -n 1 "$profile" > "$stream_profile"
grep '^spot/internal/stream/' "$profile" >> "$stream_profile"
stream=$(go tool cover -func="$stream_profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
echo "coverage: ${stream}% of statements in internal/stream (floor: ${stream_threshold}%)"
if ! awk -v t="$stream_threshold" -v c="$stream" 'BEGIN { exit !(c+0 >= t+0) }'; then
  echo "coverage.sh: FAILED — internal/stream ${stream}% is below its ${stream_threshold}% floor" >&2
  exit 1
fi
