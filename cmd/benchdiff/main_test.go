package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeReport drops a minimal artifact to disk for loadReport.
func writeReport(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldReport = `{
  "git_sha": "aaaa", "num_cpu": 4,
  "benchmarks": [
    {"name": "d=20/shards=1", "points_per_sec": 20000},
    {"name": "d=50/shards=1", "points_per_sec": 10000},
    {"name": "gone-scenario", "points_per_sec": 5000}
  ]
}`

// TestDiffFlagsRegressions: a >threshold drop is a regression, a small
// wobble and an improvement are not, and unmatched scenarios are
// skipped rather than compared against zero.
func TestDiffFlagsRegressions(t *testing.T) {
	newReport := `{
  "git_sha": "bbbb", "num_cpu": 4,
  "benchmarks": [
    {"name": "d=20/shards=1", "points_per_sec": 26000},
    {"name": "d=50/shards=1", "points_per_sec": 8500},
    {"name": "brand-new", "points_per_sec": 1}
  ]
}`
	oldR, err := loadReport(writeReport(t, "old.json", oldReport))
	if err != nil {
		t.Fatal(err)
	}
	newR, err := loadReport(writeReport(t, "new.json", newReport))
	if err != nil {
		t.Fatal(err)
	}
	deltas, regressions, missing := diff(oldR, newR, 0.10, 0.05)
	if len(deltas) != 2 {
		t.Fatalf("compared %d scenarios, want 2 (shared only): %+v", len(deltas), deltas)
	}
	if regressions != 1 {
		t.Fatalf("found %d regressions, want 1", regressions)
	}
	if len(missing) != 1 || missing[0] != "gone-scenario" {
		t.Fatalf("missing = %v, want the baseline-only scenario reported", missing)
	}
	if deltas[0].name != "d=20/shards=1" || deltas[0].regressed {
		t.Fatalf("improvement misclassified: %+v", deltas[0])
	}
	if deltas[1].name != "d=50/shards=1" || !deltas[1].regressed {
		t.Fatalf("15%% drop not flagged at threshold 10%%: %+v", deltas[1])
	}
	if deltas[1].pct > -14 || deltas[1].pct < -16 {
		t.Fatalf("delta percent = %v, want ≈ -15", deltas[1].pct)
	}
}

// TestDiffThresholdBoundary: a drop exactly at the threshold is not a
// regression — the gate fires strictly beyond it.
func TestDiffThresholdBoundary(t *testing.T) {
	newReport := `{
  "git_sha": "bbbb", "num_cpu": 4,
  "benchmarks": [
    {"name": "d=20/shards=1", "points_per_sec": 18000},
    {"name": "d=50/shards=1", "points_per_sec": 8999}
  ]
}`
	oldR, err := loadReport(writeReport(t, "old.json", oldReport))
	if err != nil {
		t.Fatal(err)
	}
	newR, err := loadReport(writeReport(t, "new.json", newReport))
	if err != nil {
		t.Fatal(err)
	}
	_, regressions, _ := diff(oldR, newR, 0.10, 0.05)
	if regressions != 1 {
		t.Fatalf("found %d regressions, want 1 (only the 10.01%% drop)", regressions)
	}
}

// TestDiffCheckpoint: encode/decode time growing beyond the threshold
// regresses, shrinking or wobbling does not, a pre-checkpoint baseline
// is not compared, and a vanished candidate row fails the gate.
func TestDiffCheckpoint(t *testing.T) {
	base := &ckptRow{SnapshotBytes: 1 << 20, EncodeNsPerOp: 1e6, DecodeNsPerOp: 2e6}
	if n := diffCheckpoint(nil, base, 0.10); n != 0 {
		t.Fatalf("pre-checkpoint baseline regressed: %d", n)
	}
	if n := diffCheckpoint(base, nil, 0.10); n != 1 {
		t.Fatalf("missing candidate row not flagged: %d", n)
	}
	ok := &ckptRow{SnapshotBytes: 2 << 20, EncodeNsPerOp: 1.05e6, DecodeNsPerOp: 1.5e6}
	if n := diffCheckpoint(base, ok, 0.10); n != 0 {
		t.Fatalf("wobble+improvement flagged as regression: %d", n)
	}
	slow := &ckptRow{SnapshotBytes: 1 << 20, EncodeNsPerOp: 1.2e6, DecodeNsPerOp: 2.5e6}
	if n := diffCheckpoint(base, slow, 0.10); n != 2 {
		t.Fatalf("both slowed legs should regress, got %d", n)
	}
}

// TestDiffQualityRegression: an AUC or precision@K fall beyond the
// quality-drop gate regresses even when throughput improved, is marked
// as a QUALITY regression (the subset -block-quality keeps blocking
// under -warn), and the gate width is the flag's to set.
func TestDiffQualityRegression(t *testing.T) {
	oldQ := `{
  "git_sha": "aaaa", "num_cpu": 4,
  "benchmarks": [
    {"name": "d=20/shards=1", "points_per_sec": 20000, "auc": 0.95, "precision_at_k": 0.90},
    {"name": "d=50/shards=1", "points_per_sec": 10000, "auc": 0.90, "precision_at_k": 0.80}
  ]
}`
	newQ := `{
  "git_sha": "bbbb", "num_cpu": 4,
  "benchmarks": [
    {"name": "d=20/shards=1", "points_per_sec": 30000, "auc": 0.80, "precision_at_k": 0.90},
    {"name": "d=50/shards=1", "points_per_sec": 11000, "auc": 0.88, "precision_at_k": 0.78}
  ]
}`
	oldR, err := loadReport(writeReport(t, "old.json", oldQ))
	if err != nil {
		t.Fatal(err)
	}
	newR, err := loadReport(writeReport(t, "new.json", newQ))
	if err != nil {
		t.Fatal(err)
	}
	deltas, regressions, _ := diff(oldR, newR, 0.10, 0.05)
	if regressions != 1 {
		t.Fatalf("found %d regressions, want 1 (the AUC fall)", regressions)
	}
	if !deltas[0].regressed || !deltas[0].qualityRegressed {
		t.Fatalf("AUC fall with faster throughput not marked as quality regression: %+v", deltas[0])
	}
	if deltas[1].regressed {
		t.Fatalf("0.02 wobble flagged at quality-drop 0.05: %+v", deltas[1])
	}
	// A wider gate admits the fall.
	_, regressions, _ = diff(oldR, newR, 0.10, 0.20)
	if regressions != 0 {
		t.Fatalf("quality-drop 0.20 still flagged %d regressions", regressions)
	}
}

// TestCheckAutoThreshold: out-of-band auto legs are quality
// regressions, the control leg (risk 0) is never gated, a candidate
// without the section fails as missing only when the baseline had one.
func TestCheckAutoThreshold(t *testing.T) {
	good := &autoSection{Legs: []autoLeg{
		{Name: "auto/q=1e-3", Risk: 1e-3, InBandSteady: true, InBandPostDrift: true},
		{Name: "fixed", Risk: 0},
	}}
	if n, miss := checkAutoThreshold(nil, good); n != 0 || miss {
		t.Fatalf("in-band legs gated: %d regressions, missing=%v", n, miss)
	}
	bad := &autoSection{Legs: []autoLeg{
		{Name: "auto/q=1e-3", Risk: 1e-3, InBandSteady: true, InBandPostDrift: false},
		{Name: "auto/q=1e-4", Risk: 1e-4, InBandSteady: false, InBandPostDrift: false},
		{Name: "fixed", Risk: 0},
	}}
	if n, _ := checkAutoThreshold(good, bad); n != 2 {
		t.Fatalf("out-of-band legs: %d regressions, want 2", n)
	}
	if n, miss := checkAutoThreshold(good, nil); n != 0 || !miss {
		t.Fatalf("vanished section: %d regressions, missing=%v, want missing", n, miss)
	}
	if n, miss := checkAutoThreshold(nil, nil); n != 0 || miss {
		t.Fatalf("pre-auto baseline and candidate: %d regressions, missing=%v", n, miss)
	}
}

// TestLoadReportRejectsEmpty: an artifact without benchmarks is a
// usage error, not a silent all-green diff.
func TestLoadReportRejectsEmpty(t *testing.T) {
	if _, err := loadReport(writeReport(t, "empty.json", `{"git_sha":"x"}`)); err == nil {
		t.Fatal("empty report loaded without error")
	}
	if _, err := loadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file loaded without error")
	}
}
