// Command benchdiff compares two BENCH_core.json artifacts — the
// tracked performance baseline against a fresh run — and prints the
// per-scenario points/sec delta plus the duplication statistics behind
// the coalesced batch path. It exits non-zero when any scenario shared
// by both reports regresses by more than the threshold, so `make
// bench-compare` (and CI, warn-only there: shared runners are noisy and
// often single-vCPU, which the printed num_cpu makes visible) can gate
// perf work on the artifact instead of on eyeballs.
//
// Quality metrics — ranking AUC / precision@K and the auto-threshold
// calibration band — are machine-independent, so -block-quality makes
// their regressions exit non-zero even under -warn: a noisy runner
// excuses throughput wobble, never a worse ranking or a detector that
// stopped honoring its requested flag rate.
//
// Usage: benchdiff [-threshold 0.10] [-quality-drop 0.05] [-warn] [-block-quality] OLD.json NEW.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// benchRow is the slice of a spotbench throughput scenario benchdiff
// cares about.
type benchRow struct {
	Name                  string  `json:"name"`
	PointsPerSec          float64 `json:"points_per_sec"`
	DistinctCellsPerBatch float64 `json:"distinct_cells_per_batch"`
	CellDupRatio          float64 `json:"cell_dup_ratio"`
	AUC                   float64 `json:"auc"`
	PrecisionAtK          float64 `json:"precision_at_k"`
}

// ckptRow is the slice of the checkpoint section benchdiff tracks: the
// full-state snapshot size and the encode/decode cost of the
// crash-safe checkpoint path.
type ckptRow struct {
	SnapshotBytes int64   `json:"snapshot_bytes"`
	EncodeNsPerOp float64 `json:"encode_ns_per_op"`
	DecodeNsPerOp float64 `json:"decode_ns_per_op"`
}

// autoLeg is the slice of one auto-threshold scenario leg benchdiff
// gates on: the in-band booleans are computed by spotbench against the
// leg's own requested risk, so the gate needs no baseline to compare
// against — a calibrated detector that stopped holding its rate is
// broken in absolute terms.
type autoLeg struct {
	Name            string  `json:"name"`
	Risk            float64 `json:"risk"`
	InBandSteady    bool    `json:"in_band_steady"`
	InBandPostDrift bool    `json:"in_band_post_drift"`
}

// autoSection is the auto_threshold block of the artifact.
type autoSection struct {
	Legs []autoLeg `json:"legs"`
}

// benchReport is the slice of the BENCH_core.json schema benchdiff
// reads; unknown fields are ignored so old and new artifact versions
// stay comparable.
type benchReport struct {
	GitSHA        string       `json:"git_sha"`
	NumCPU        int          `json:"num_cpu"`
	Benchmarks    []benchRow   `json:"benchmarks"`
	Checkpoint    *ckptRow     `json:"checkpoint"`
	AutoThreshold *autoSection `json:"auto_threshold"`
}

// delta is one compared scenario; distinct/dup carry the candidate's
// duplication statistics when its artifact records them, oldAUC/newAUC
// and oldPrec/newPrec the ranking-quality pair when the baseline has
// one (pre-scoring artifacts and uniform rows record zeros and are not
// compared). qualityRegressed marks the machine-independent subset of
// regressed — a ranking-quality fall rather than a throughput drop —
// which -block-quality keeps blocking even under -warn.
type delta struct {
	name             string
	oldPts           float64
	newPts           float64
	pct              float64 // (new-old)/old, in percent
	distinct         float64
	dup              float64
	oldAUC           float64
	newAUC           float64
	oldPrec          float64
	newPrec          float64
	regressed        bool
	qualityRegressed bool
}

// loadReport reads and decodes one artifact.
func loadReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks section", path)
	}
	return &r, nil
}

// diff compares the scenarios shared by both reports (matched by name,
// baseline order) and flags every one whose points/sec fell by more
// than threshold or whose AUC / precision@K fell by more than
// qualityDrop absolute (quality metrics live on a bounded [0,1] scale,
// so their gate is an absolute drop, not the relative one used for
// throughput). A newly added grid point is not a regression, and a
// baseline scenario absent from the candidate is not compared — but it
// is returned in missing, so the gate's output says so instead of
// silently shrinking (a renamed scenario, or a harness bug that stops
// emitting its row, must not pass unseen).
func diff(oldR, newR *benchReport, threshold, qualityDrop float64) (out []delta, regressions int, missing []string) {
	byName := make(map[string]benchRow, len(newR.Benchmarks))
	for _, b := range newR.Benchmarks {
		byName[b.Name] = b
	}
	for _, ob := range oldR.Benchmarks {
		if ob.PointsPerSec <= 0 {
			continue
		}
		nb, ok := byName[ob.Name]
		if !ok {
			missing = append(missing, ob.Name)
			continue
		}
		d := delta{
			name:     ob.Name,
			oldPts:   ob.PointsPerSec,
			newPts:   nb.PointsPerSec,
			pct:      100 * (nb.PointsPerSec - ob.PointsPerSec) / ob.PointsPerSec,
			distinct: nb.DistinctCellsPerBatch,
			dup:      nb.CellDupRatio,
			oldAUC:   ob.AUC,
			newAUC:   nb.AUC,
			oldPrec:  ob.PrecisionAtK,
			newPrec:  nb.PrecisionAtK,
		}
		if nb.PointsPerSec < ob.PointsPerSec*(1-threshold) {
			d.regressed = true
		}
		if ob.AUC > 0 && nb.AUC < ob.AUC-qualityDrop {
			d.regressed, d.qualityRegressed = true, true
		}
		if ob.PrecisionAtK > 0 && nb.PrecisionAtK < ob.PrecisionAtK-qualityDrop {
			d.regressed, d.qualityRegressed = true, true
		}
		if d.regressed {
			regressions++
		}
		out = append(out, d)
	}
	return out, regressions, missing
}

// diffCheckpoint compares the checkpoint rows when both artifacts
// carry one: encode/decode time growing past the threshold counts as a
// regression (time moves inversely to the points/sec gate); the
// snapshot size delta is printed for the record but informational —
// format growth is a deliberate, reviewed change, not a perf slip.
// A baseline with no checkpoint row (pre-checkpoint artifact) is not
// compared.
func diffCheckpoint(old, cand *ckptRow, threshold float64) (regressions int) {
	if old == nil {
		return 0
	}
	if cand == nil {
		fmt.Printf("  %-34s present in baseline only  << MISSING\n", "checkpoint")
		return 1
	}
	for _, leg := range []struct {
		name  string
		oldNs float64
		newNs float64
	}{
		{"checkpoint/encode", old.EncodeNsPerOp, cand.EncodeNsPerOp},
		{"checkpoint/decode", old.DecodeNsPerOp, cand.DecodeNsPerOp},
	} {
		if leg.oldNs <= 0 {
			continue
		}
		pct := 100 * (leg.newNs - leg.oldNs) / leg.oldNs
		mark := ""
		if leg.newNs > leg.oldNs*(1+threshold) {
			mark = "  << REGRESSION"
			regressions++
		}
		fmt.Printf("  %-34s %10.0f -> %10.0f ns/op        %+6.1f%%%s\n",
			leg.name, leg.oldNs, leg.newNs, pct, mark)
	}
	if old.SnapshotBytes > 0 {
		fmt.Printf("  %-34s %10d -> %10d bytes        %+6.1f%%\n",
			"checkpoint/bytes", old.SnapshotBytes, cand.SnapshotBytes,
			100*float64(cand.SnapshotBytes-old.SnapshotBytes)/float64(old.SnapshotBytes))
	}
	return regressions
}

// checkAutoThreshold gates the candidate's auto-threshold legs: every
// leg with a requested risk must sit inside [q/3, 3q] on both sides of
// the drift. The booleans are self-contained (spotbench computes them
// against the leg's own q), so a missing baseline section changes
// nothing — but a baseline WITH the section and a candidate without it
// is a vanished scenario and fails like one.
func checkAutoThreshold(old, cand *autoSection) (qualityRegressions int, missing bool) {
	if cand == nil {
		return 0, old != nil
	}
	for _, leg := range cand.Legs {
		if leg.Risk <= 0 {
			continue
		}
		mark := ""
		if !leg.InBandSteady || !leg.InBandPostDrift {
			mark = "  << QUALITY REGRESSION"
			qualityRegressions++
		}
		fmt.Printf("  auto-threshold/%-19s in band steady=%v post-drift=%v (q=%g)%s\n",
			leg.Name, leg.InBandSteady, leg.InBandPostDrift, leg.Risk, mark)
	}
	return qualityRegressions, false
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "relative points/sec drop that counts as a regression")
	qualityDrop := flag.Float64("quality-drop", 0.05, "absolute AUC / precision@K drop that counts as a quality regression")
	warn := flag.Bool("warn", false, "report regressions but exit 0 (noisy or single-vCPU runners)")
	blockQuality := flag.Bool("block-quality", false, "exit non-zero on quality regressions even under -warn (quality is machine-independent)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] [-quality-drop 0.05] [-warn] [-block-quality] OLD.json NEW.json")
		os.Exit(2)
	}
	oldR, err := loadReport(flag.Arg(0))
	if err == nil {
		var newR *benchReport
		newR, err = loadReport(flag.Arg(1))
		if err == nil {
			run(oldR, newR, *threshold, *qualityDrop, *warn, *blockQuality)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(2)
}

// run prints the comparison and exits per the regression verdict.
func run(oldR, newR *benchReport, threshold, qualityDrop float64, warn, blockQuality bool) {
	short := func(sha string) string {
		if len(sha) > 12 {
			return sha[:12]
		}
		return sha
	}
	fmt.Printf("baseline  %s (num_cpu=%d)\ncandidate %s (num_cpu=%d)\n",
		short(oldR.GitSHA), oldR.NumCPU, short(newR.GitSHA), newR.NumCPU)
	if oldR.NumCPU == 1 || newR.NumCPU == 1 {
		fmt.Println("note: a report was measured on 1 vCPU — shard-scaling scenarios are noise, per-point cost is the signal")
	}
	if oldR.NumCPU != newR.NumCPU {
		fmt.Println("note: CPU budgets differ between reports; absolute deltas are not like-for-like")
	}
	deltas, regressions, missing := diff(oldR, newR, threshold, qualityDrop)
	if len(deltas) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: the reports share no scenarios")
		os.Exit(2)
	}
	qualityRegressions := 0
	for _, d := range deltas {
		if d.qualityRegressed {
			qualityRegressions++
		}
	}
	regressions += diffCheckpoint(oldR.Checkpoint, newR.Checkpoint, threshold)
	autoQuality, autoMissing := checkAutoThreshold(oldR.AutoThreshold, newR.AutoThreshold)
	qualityRegressions += autoQuality
	regressions += autoQuality
	if autoMissing {
		missing = append(missing, "auto_threshold")
	}
	for _, d := range deltas {
		dup := ""
		if d.dup > 0 {
			dup = fmt.Sprintf("  (%.0f distinct/batch ×%.1f dup)", d.distinct, d.dup)
		}
		quality := ""
		if d.oldAUC > 0 || d.newAUC > 0 {
			quality = fmt.Sprintf("  auc %.3f->%.3f p@k %.3f->%.3f",
				d.oldAUC, d.newAUC, d.oldPrec, d.newPrec)
		}
		mark := ""
		if d.regressed {
			mark = "  << REGRESSION"
		}
		fmt.Printf("  %-34s %10.0f -> %10.0f points/sec  %+6.1f%%%s%s%s\n",
			d.name, d.oldPts, d.newPts, d.pct, dup, quality, mark)
	}
	for _, name := range missing {
		fmt.Printf("  %-34s present in baseline only  << MISSING\n", name)
	}
	if regressions == 0 && len(missing) == 0 {
		fmt.Printf("ok: no scenario regressed more than %.0f%%\n", threshold*100)
		return
	}
	// A vanished scenario fails the gate like a regression: a renamed
	// grid point or a harness bug that stops emitting a row must not
	// slip through ungated.
	if regressions > 0 {
		fmt.Printf("%d of %d scenarios regressed more than %.0f%%\n", regressions, len(deltas), threshold*100)
	}
	if len(missing) > 0 {
		fmt.Printf("%d baseline scenarios missing from the candidate\n", len(missing))
	}
	if warn {
		if blockQuality && qualityRegressions > 0 {
			fmt.Printf("%d quality regressions are blocking (-block-quality): exiting 1\n", qualityRegressions)
			os.Exit(1)
		}
		fmt.Println("warn-only mode: exiting 0")
		return
	}
	os.Exit(1)
}
