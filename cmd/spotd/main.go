// Command spotd is the SPOT serving daemon: it hosts one or more
// tenant detectors behind the binary TCP protocol of internal/server,
// with bounded-queue admission control, per-request deadlines,
// periodic crash-safe checkpointing, automatic recovery from the
// newest verifiable checkpoint generation on startup, live snapshot
// migration, and graceful drain on SIGTERM/SIGINT (exit 0 after a
// clean drain).
//
// Tenants are declared with repeated -tenant flags:
//
//	spotd -listen :7070 -data /var/lib/spotd \
//	    -tenant 'metrics:dims=8,shards=4,scoring,topk=16' \
//	    -tenant 'logs:dims=4,lambda=0.001'
//
// Each tenant with a -data root checkpoints into <data>/<name> and
// recovers from it on restart; without -data the daemon serves from
// memory only.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"spot/internal/replica"
	"spot/internal/server"
	"spot/internal/stream"
)

// repeatable collects a repeatable string flag (-tenant,
// -replicate-to).
type repeatable []string

func (s *repeatable) String() string { return strings.Join(*s, ";") }

// Set appends one occurrence.
func (s *repeatable) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// parseTenantSpec decodes one -tenant value. The grammar is
// "name:key=value,..." over a stream.DefaultConfig base; bare keys are
// boolean flags.
func parseTenantSpec(spec string) (server.TenantConfig, error) {
	var tc server.TenantConfig
	name, rest, ok := strings.Cut(spec, ":")
	if !ok || name == "" {
		return tc, fmt.Errorf("tenant spec %q: want name:key=value,...", spec)
	}
	tc.Name = name
	opts := map[string]string{}
	for _, kv := range strings.Split(rest, ",") {
		if kv == "" {
			continue
		}
		k, v, _ := strings.Cut(kv, "=")
		opts[k] = v
	}
	dims, err := specInt(opts, "dims", 0)
	if err != nil {
		return tc, fmt.Errorf("tenant %s: %w", name, err)
	}
	if dims < 1 {
		return tc, fmt.Errorf("tenant %s: dims is required and must be >= 1", name)
	}
	cfg := stream.DefaultConfig(dims)
	if cfg.Shards, err = specInt(opts, "shards", cfg.Shards); err != nil {
		return tc, fmt.Errorf("tenant %s: %w", name, err)
	}
	if cfg.Phi, err = specInt(opts, "phi", cfg.Phi); err != nil {
		return tc, fmt.Errorf("tenant %s: %w", name, err)
	}
	if cfg.Warmup, err = specFloat(opts, "warmup", cfg.Warmup); err != nil {
		return tc, fmt.Errorf("tenant %s: %w", name, err)
	}
	if cfg.TopK, err = specInt(opts, "topk", cfg.TopK); err != nil {
		return tc, fmt.Errorf("tenant %s: %w", name, err)
	}
	if cfg.Lambda, err = specFloat(opts, "lambda", cfg.Lambda); err != nil {
		return tc, fmt.Errorf("tenant %s: %w", name, err)
	}
	if _, ok := opts["scoring"]; ok {
		cfg.Scoring = true
		delete(opts, "scoring")
	}
	if cfg.TopK > 0 {
		cfg.Scoring = true
	}
	if len(opts) > 0 {
		for k := range opts {
			return tc, fmt.Errorf("tenant %s: unknown option %q", name, k)
		}
	}
	tc.Stream = cfg
	return tc, nil
}

// specInt consumes an integer option, falling back to def when absent.
func specInt(opts map[string]string, key string, def int) (int, error) {
	v, ok := opts[key]
	if !ok {
		return def, nil
	}
	delete(opts, key)
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("option %s=%q: %v", key, v, err)
	}
	return n, nil
}

// specFloat consumes a float option, falling back to def when absent.
func specFloat(opts map[string]string, key string, def float64) (float64, error) {
	v, ok := opts[key]
	if !ok {
		return def, nil
	}
	delete(opts, key)
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("option %s=%q: %v", key, v, err)
	}
	return f, nil
}

// run is the daemon body, separated from main for testability. It
// returns nil after a clean drain.
func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("spotd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specs        repeatable
		listen       = fs.String("listen", "127.0.0.1:7070", "TCP address to listen on (use :0 for an ephemeral port)")
		data         = fs.String("data", "", "checkpoint root directory; each tenant saves under <data>/<name> (empty: no durability)")
		keep         = fs.Int("keep", 3, "checkpoint generations to retain per tenant")
		queueDepth   = fs.Int("queue-depth", 64, "per-tenant admission queue capacity; full queues shed with the typed backpressure code")
		ckptPoints   = fs.Uint64("checkpoint-points", 4096, "checkpoint a tenant every N ingested points (0 disables the points cadence)")
		ckptInterval = fs.Duration("checkpoint-interval", 30*time.Second, "checkpoint a tenant after this much wall time with new points (0 disables)")
		maxDeadline  = fs.Duration("max-deadline", time.Minute, "cap on client-requested per-request deadlines")
		drainWait    = fs.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain may take before lingering connections are cut")
		addrFile     = fs.String("addr-file", "", "write the bound listen address to this file once serving (for test harnesses and supervisors)")
		id           = fs.String("id", "spotd", "server identity on the wire; ping replies and replication pushes carry it")
		standby      = fs.Bool("standby", false, "start in the standby role: refuse ingest and accept replication pushes until promoted")
		replInterval = fs.Duration("replicate-interval", time.Second, "warm-standby snapshot shipping cadence (with -replicate-to)")
		replFault    = fs.Int("replicate-fault-every", 0, "TESTING: corrupt every Nth replication push on the wire (0 disables)")
	)
	var replTargets repeatable
	fs.Var(&specs, "tenant", "tenant spec name:key=value,... (dims required; shards, phi, warmup, lambda, scoring, topk); repeatable")
	fs.Var(&replTargets, "replicate-to", "standby address to ship snapshot generations to while primary; repeatable")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(specs) == 0 {
		return fmt.Errorf("at least one -tenant is required")
	}

	logger := log.New(stderr, "spotd ", log.LstdFlags|log.Lmsgprefix)
	tenants := make([]server.TenantConfig, 0, len(specs))
	for _, spec := range specs {
		tc, err := parseTenantSpec(spec)
		if err != nil {
			return err
		}
		if *data != "" {
			tc.Dir = filepath.Join(*data, tc.Name)
			tc.Keep = *keep
		}
		tenants = append(tenants, tc)
	}

	role := server.RolePrimary
	if *standby {
		role = server.RoleStandby
	}
	s, err := server.New(server.Options{
		QueueDepth:         *queueDepth,
		CheckpointPoints:   *ckptPoints,
		CheckpointInterval: *ckptInterval,
		MaxDeadline:        *maxDeadline,
		ID:                 *id,
		Role:               role,
	}, tenants)
	if err != nil {
		return err
	}
	logger.Printf("serving as %s (role %s)", *id, role)
	for _, tc := range tenants {
		ts, _ := s.Tenant(tc.Name)
		if ts.RecoveredPath != "" {
			logger.Printf("tenant %s: recovered tick %d from %s", tc.Name, ts.RecoveredTick, ts.RecoveredPath)
		} else {
			logger.Printf("tenant %s: fresh start", tc.Name)
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	logger.Printf("listening on %s", ln.Addr())
	if *addrFile != "" {
		// Write-temp-rename so a watcher never reads a partial address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			return err
		}
	}

	// The shipper starts alongside Serve. On a standby it lies dormant
	// until promotion, so a symmetric pair can each point -replicate-to
	// at the other: only the current primary ever ships.
	var shipper *replica.Shipper
	if len(replTargets) > 0 {
		shipper, err = replica.NewShipper(replica.ShipperConfig{
			Server:      s,
			Targets:     replTargets,
			Interval:    *replInterval,
			FaultEveryN: *replFault,
			Logf:        logger.Printf,
		})
		if err != nil {
			return err
		}
		logger.Printf("replicating to %s every %s (incarnation %s)", strings.Join(replTargets, ", "), *replInterval, shipper.Incarnation())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	drained := make(chan error, 1)
	go func() {
		sig := <-sigc
		logger.Printf("received %s, draining (timeout %s)", sig, *drainWait)
		if shipper != nil {
			shipper.Stop()
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		drained <- s.Shutdown(ctx)
	}()

	if err := s.Serve(ln); err != nil {
		return err
	}
	if err := <-drained; err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	logger.Printf("drained cleanly")
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "spotd:", err)
		os.Exit(1)
	}
}
