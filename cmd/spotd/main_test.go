package main

import (
	"io"
	"strings"
	"testing"
)

// TestParseTenantSpec drives the -tenant grammar through its accepted
// and rejected shapes.
func TestParseTenantSpec(t *testing.T) {
	tc, err := parseTenantSpec("metrics:dims=8,shards=4,scoring,topk=16,lambda=0.001,warmup=0,phi=10")
	if err != nil {
		t.Fatal(err)
	}
	cfg := tc.Stream
	if tc.Name != "metrics" || cfg.Dims != 8 || cfg.Shards != 4 || !cfg.Scoring ||
		cfg.TopK != 16 || cfg.Lambda != 0.001 || cfg.Warmup != 0 || cfg.Phi != 10 {
		t.Fatalf("parsed %+v", tc)
	}

	// topk alone implies scoring.
	tc, err = parseTenantSpec("a:dims=2,topk=4")
	if err != nil {
		t.Fatal(err)
	}
	if !tc.Stream.Scoring {
		t.Fatal("topk did not imply scoring")
	}

	// Unset options keep the DefaultConfig values.
	tc, err = parseTenantSpec("a:dims=5")
	if err != nil {
		t.Fatal(err)
	}
	if tc.Stream.Phi == 0 || tc.Stream.Lambda == 0 {
		t.Fatalf("defaults not applied: %+v", tc.Stream)
	}

	for _, bad := range []string{
		"",                  // no name
		"noopts",            // missing colon
		":dims=2",           // empty name
		"a:",                // dims missing
		"a:dims=0",          // dims out of range
		"a:dims=x",          // non-integer
		"a:dims=2,bogus=1",  // unknown option
		"a:dims=2,lambda=x", // non-float
	} {
		if _, err := parseTenantSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestRunFlagErrors pins the daemon's refusal paths: no tenants, bad
// specs, and unparseable flags all fail before binding a socket.
func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{},                            // no tenants
		{"-tenant", "bad"},            // malformed spec
		{"-tenant", "a:dims=2", "-x"}, // unknown flag
		{"-listen", "256.0.0.1:bad", "-tenant", "a:dims=2"}, // unbindable address
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestTenantSpecsFlag covers the repeatable-flag plumbing.
func TestTenantSpecsFlag(t *testing.T) {
	var s repeatable
	s.Set("a:dims=2")
	s.Set("b:dims=3")
	if got := s.String(); !strings.Contains(got, "a:dims=2") || !strings.Contains(got, "b:dims=3") {
		t.Fatalf("specs flag: %q", got)
	}
}
