package main

import (
	"errors"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"spot/internal/server"
	"spot/internal/stream"
)

// buildOnce compiles the spotd binary one time for every e2e test in
// the run.
var buildOnce = struct {
	sync.Once
	path string
	err  error
}{}

// spotdBinary returns the path of a freshly built spotd binary.
func spotdBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "spotd-e2e-*")
		if err != nil {
			buildOnce.err = err
			return
		}
		bin := filepath.Join(dir, "spotd")
		cmd := exec.Command("go", "build", "-o", bin, ".")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildOnce.err = errors.New(string(out))
			return
		}
		buildOnce.path = bin
	})
	if buildOnce.err != nil {
		t.Fatalf("building spotd: %v", buildOnce.err)
	}
	return buildOnce.path
}

// daemon is one running spotd process under test.
type daemon struct {
	cmd  *exec.Cmd
	addr string
}

// startDaemon launches spotd with an ephemeral port and waits for the
// address file — the same discovery contract a supervisor would use.
func startDaemon(t *testing.T, dataDir string, extra ...string) *daemon {
	t.Helper()
	bin := spotdBinary(t)
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{
		"-listen", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-data", dataDir,
	}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	var addr string
	for {
		if raw, err := os.ReadFile(addrFile); err == nil && len(raw) > 0 {
			addr = string(raw)
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("spotd never wrote its address file")
		}
		time.Sleep(10 * time.Millisecond)
	}
	d := &daemon{cmd: cmd, addr: addr}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
	})
	return d
}

// tenantFlag is the one tenant every e2e test serves: small, unscored,
// no warmup so verdicts appear immediately.
const (
	e2eDims    = 3
	e2eBatch   = 32
	e2eBatches = 12
	e2eTenant  = "-tenant"
	e2eSpec    = "e2e:dims=3,warmup=0"
)

// e2eConfig mirrors e2eSpec for the in-process oracle.
func e2eConfig() stream.Config {
	cfg := stream.DefaultConfig(e2eDims)
	cfg.Warmup = 0
	return cfg
}

// e2ePoints generates the deterministic stream shared by daemon and
// oracle.
func e2ePoints() []float64 {
	rng := rand.New(rand.NewSource(99))
	flat := make([]float64, e2eBatch*e2eBatches*e2eDims)
	for i := range flat {
		flat[i] = 0.25 + 0.5*rng.Float64()
		if i%101 == 47 {
			flat[i] = rng.Float64()
		}
	}
	return flat
}

// oracleVerdicts runs the whole stream through one uninterrupted
// detector.
func oracleVerdicts(t *testing.T, flat []float64) []bool {
	t.Helper()
	det, err := stream.New(e2eConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	want := make([]bool, e2eBatch*e2eBatches)
	det.ProcessBatch(flat, want)
	return want
}

// TestE2ECrashRecovery is the kill -9 drill: stream into a live spotd,
// SIGKILL it mid-stream, restart over the same data directory, replay
// the suffix from the recovered tick, and require zero verdict
// divergence against an uninterrupted oracle.
func TestE2ECrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon")
	}
	dataDir := t.TempDir()
	flat := e2ePoints()
	want := oracleVerdicts(t, flat)

	// Checkpoint every batch so the crash loses at most the in-flight
	// tail.
	d1 := startDaemon(t, dataDir, e2eTenant, e2eSpec, "-checkpoint-points", "32")
	c1, err := server.Dial(d1.addr)
	if err != nil {
		t.Fatal(err)
	}
	checkBatch := func(c *server.Client, i int) {
		t.Helper()
		res, err := c.Ingest("e2e", flat[i*e2eBatch*e2eDims:(i+1)*e2eBatch*e2eDims], e2eBatch, server.IngestOptions{})
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if res.T0 != uint64(i*e2eBatch) {
			t.Fatalf("batch %d: T0 %d, want %d", i, res.T0, i*e2eBatch)
		}
		for j, v := range res.Verdicts {
			if v != want[i*e2eBatch+j] {
				t.Fatalf("batch %d point %d diverged from oracle", i, j)
			}
		}
	}
	const crashAfter = 7
	for i := 0; i < crashAfter; i++ {
		checkBatch(c1, i)
	}

	// SIGKILL: no drain, no final checkpoint, connections torn.
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d1.cmd.Wait()
	c1.Close()

	// Restart over the same directory: spotd must come back at a batch
	// boundary no later than the crash point.
	d2 := startDaemon(t, dataDir, e2eTenant, e2eSpec, "-checkpoint-points", "32")
	c2, err := server.Dial(d2.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ts, err := c2.TenantStats("e2e")
	if err != nil {
		t.Fatal(err)
	}
	if ts.RecoveredPath == "" {
		t.Fatal("restarted daemon did not recover from a checkpoint")
	}
	if ts.RecoveredTick%e2eBatch != 0 || ts.RecoveredTick == 0 || ts.RecoveredTick > crashAfter*e2eBatch {
		t.Fatalf("recovered tick %d: want a non-zero batch boundary <= %d", ts.RecoveredTick, crashAfter*e2eBatch)
	}

	// Replay the lost suffix and continue the stream to the end: every
	// verdict must match the uninterrupted oracle bit for bit.
	for i := int(ts.RecoveredTick) / e2eBatch; i < e2eBatches; i++ {
		checkBatch(c2, i)
	}
}

// TestE2ESigtermDrain is the graceful half: SIGTERM must drain, take a
// final checkpoint covering every acknowledged point, and exit 0; the
// next start resumes exactly at the drained tick.
func TestE2ESigtermDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon")
	}
	dataDir := t.TempDir()
	flat := e2ePoints()
	want := oracleVerdicts(t, flat)

	// No cadence: durability comes purely from the drain checkpoint.
	d1 := startDaemon(t, dataDir, e2eTenant, e2eSpec, "-checkpoint-points", "0", "-checkpoint-interval", "0")
	c1, err := server.Dial(d1.addr)
	if err != nil {
		t.Fatal(err)
	}
	const sent = 5
	for i := 0; i < sent; i++ {
		res, err := c1.Ingest("e2e", flat[i*e2eBatch*e2eDims:(i+1)*e2eBatch*e2eDims], e2eBatch, server.IngestOptions{})
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		for j, v := range res.Verdicts {
			if v != want[i*e2eBatch+j] {
				t.Fatalf("batch %d point %d diverged from oracle", i, j)
			}
		}
	}

	if err := d1.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d1.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM drain exited non-zero: %v", err)
	}
	c1.Close()

	d2 := startDaemon(t, dataDir, e2eTenant, e2eSpec)
	c2, err := server.Dial(d2.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ts, err := c2.TenantStats("e2e")
	if err != nil {
		t.Fatal(err)
	}
	if ts.RecoveredTick != sent*e2eBatch {
		t.Fatalf("recovered tick %d: the drain checkpoint must cover all %d acknowledged points", ts.RecoveredTick, sent*e2eBatch)
	}
	// The stream continues seamlessly from the drained boundary.
	for i := sent; i < e2eBatches; i++ {
		res, err := c2.Ingest("e2e", flat[i*e2eBatch*e2eDims:(i+1)*e2eBatch*e2eDims], e2eBatch, server.IngestOptions{})
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		for j, v := range res.Verdicts {
			if v != want[i*e2eBatch+j] {
				t.Fatalf("post-drain batch %d point %d diverged from oracle", i, j)
			}
		}
	}
}
