package main

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"spot/internal/replica"
	"spot/internal/server"
	"spot/internal/stream"
)

// chaosProxy is a severable TCP forwarder the replication link runs
// through, so the harness can cut primary→standby shipping without
// touching either process.
type chaosProxy struct {
	ln     net.Listener
	target string

	mu      sync.Mutex
	severed bool
	conns   map[net.Conn]struct{}
}

// newChaosProxy starts a forwarder to target on an ephemeral port.
func newChaosProxy(t *testing.T, target string) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	go p.accept()
	t.Cleanup(func() { ln.Close() })
	return p
}

// addr returns the proxy's dial address.
func (p *chaosProxy) addr() string { return p.ln.Addr().String() }

// sever cuts the link: active connections die and new ones are refused
// until heal.
func (p *chaosProxy) sever() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.severed = true
	for c := range p.conns {
		c.Close()
	}
}

// heal restores the link.
func (p *chaosProxy) heal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.severed = false
}

// accept forwards connections until the listener closes.
func (p *chaosProxy) accept() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.severed {
			p.mu.Unlock()
			c.Close()
			continue
		}
		p.conns[c] = struct{}{}
		p.mu.Unlock()
		go p.forward(c)
	}
}

// forward pipes one connection both ways, tearing both sides down when
// either half dies or the link is severed.
func (p *chaosProxy) forward(c net.Conn) {
	defer func() {
		p.mu.Lock()
		delete(p.conns, c)
		p.mu.Unlock()
		c.Close()
	}()
	up, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	p.mu.Lock()
	if p.severed {
		p.mu.Unlock()
		up.Close()
		return
	}
	p.conns[up] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.conns, up)
		p.mu.Unlock()
		up.Close()
	}()
	done := make(chan struct{}, 2)
	go func() { io.Copy(up, c); done <- struct{}{} }()
	go func() { io.Copy(c, up); done <- struct{}{} }()
	<-done
}

// chaosNode is one spotd process slot: a fixed listen address, a fixed
// data directory, and the proxy other nodes replicate to it through —
// all of which survive restarts so the replica set's addresses stay
// stable while processes come and go.
type chaosNode struct {
	name    string
	addr    string // fixed listen address, reused across restarts
	dataDir string
	proxy   *chaosProxy // inbound replication link
	d       *daemon
}

// chaosSpec is the tenant every chaos process serves.
const (
	chaosDims  = 3
	chaosBatch = 32
	chaosSpec  = "chaos:dims=3,warmup=0"
)

// startChaosNode (re)starts a node's process on its fixed address,
// shipping to peer's proxy when promoted to primary.
func startChaosNode(t *testing.T, n *chaosNode, peer *chaosNode, standby bool) {
	t.Helper()
	bin := spotdBinary(t)
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := []string{
		"-listen", n.addr,
		"-addr-file", addrFile,
		"-data", n.dataDir,
		"-tenant", chaosSpec,
		"-id", n.name,
		"-checkpoint-points", fmt.Sprint(chaosBatch),
		"-replicate-to", peer.proxy.addr(),
		"-replicate-interval", "25ms",
		"-replicate-fault-every", "3",
	}
	if standby {
		args = append(args, "-standby")
	}
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if raw, err := os.ReadFile(addrFile); err == nil && len(raw) > 0 {
			n.addr = string(raw)
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("node %s never wrote its address file", n.name)
		}
		time.Sleep(10 * time.Millisecond)
	}
	n.d = &daemon{cmd: cmd, addr: n.addr}
	t.Cleanup(func() {
		if n.d.cmd.ProcessState == nil {
			n.d.cmd.Process.Kill()
			n.d.cmd.Wait()
		}
	})
}

// killNode SIGKILLs a node's process: no drain, no final checkpoint.
func killNode(t *testing.T, n *chaosNode) {
	t.Helper()
	if err := n.d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	n.d.cmd.Wait()
}

// promoteNode flips a node to primary over the wire, retrying while
// the process finishes coming up.
func promoteNode(t *testing.T, n *chaosNode) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c, err := server.DialOptions(n.addr, server.ClientOptions{DialTimeout: time.Second, ReadTimeout: 2 * time.Second})
		if err == nil {
			err = c.Promote()
			c.Close()
			if err == nil {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("promoting %s: %v", n.name, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// logReplication surfaces the primary's replication health — lag in
// generations, shipping throughput — into the test log.
func logReplication(t *testing.T, n *chaosNode) {
	c, err := server.DialOptions(n.addr, server.ClientOptions{DialTimeout: time.Second, ReadTimeout: 2 * time.Second})
	if err != nil {
		return
	}
	defer c.Close()
	st, err := c.ServerStats()
	if err != nil {
		return
	}
	for _, tg := range st.Replication.Targets {
		t.Logf("replication %s -> %s: shipped %d gens / %d bytes, behind %d, %.0f B/s, failures %d",
			st.ID, tg.Addr, tg.GensShipped, tg.BytesShipped, tg.Behind, tg.BytesPerSec, tg.ShipFailures)
	}
}

// TestChaosFailover is the chaos drill the replication layer is judged
// by: a primary+standby pair streams a labeled workload while the
// harness randomly SIGKILLs processes (promoting and restarting per
// the failover runbook), severs the replication link, and lets the
// built-in corruption injection poison every sixth push. Throughout,
// every client call must return a verdict or a typed error within its
// deadline — never hang — and every verdict the pair ever returns must
// be bit-identical to one uninterrupted oracle detector at the tick
// the server reports, with replays after failover bounded by the
// replication-lag window.
func TestChaosFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs daemon pairs under fault injection")
	}
	rounds := 20
	if s := os.Getenv("CHAOS_ROUNDS"); s != "" {
		fmt.Sscanf(s, "%d", &rounds)
	}
	const batchesPerRound = 3
	totalBatches := rounds * batchesPerRound

	// The deterministic workload and its uninterrupted oracle.
	rng := rand.New(rand.NewSource(7))
	flat := make([]float64, totalBatches*chaosBatch*chaosDims)
	for i := range flat {
		flat[i] = 0.25 + 0.5*rng.Float64()
		if i%101 == 47 {
			flat[i] = rng.Float64()
		}
	}
	cfg := stream.DefaultConfig(chaosDims)
	cfg.Warmup = 0
	det, err := stream.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]bool, totalBatches*chaosBatch)
	det.ProcessBatch(flat, want)
	det.Close()

	// Two node slots with fixed addresses; each replicates to the other
	// through a severable proxy, so whichever holds the primary role
	// ships and the other receives.
	reserve := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr
	}
	a := &chaosNode{name: "a", addr: reserve(), dataDir: t.TempDir()}
	b := &chaosNode{name: "b", addr: reserve(), dataDir: t.TempDir()}
	a.proxy = newChaosProxy(t, a.addr)
	b.proxy = newChaosProxy(t, b.addr)
	startChaosNode(t, a, b, false)
	startChaosNode(t, b, a, true)
	pri, sby := a, b

	fc, err := replica.NewClient(replica.Config{
		Addrs:       []string{a.addr, b.addr},
		Client:      server.ClientOptions{DialTimeout: 2 * time.Second, ReadTimeout: 5 * time.Second, WriteTimeout: 5 * time.Second},
		MaxAttempts: 10,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  250 * time.Millisecond,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	// resync asks the serving replica where the stream stands and
	// returns the batch index to send next. The tick is always a batch
	// boundary: checkpoints, replication generations and promotions all
	// happen at batch boundaries, so a failover can rewind the stream
	// (the replication-lag window) but never tear a batch.
	resync := func() int {
		t.Helper()
		tick, err := fc.Resync("chaos")
		if err != nil {
			t.Fatalf("resync: %v", err)
		}
		if tick%chaosBatch != 0 {
			t.Fatalf("resync tick %d is not a batch boundary", tick)
		}
		return int(tick) / chaosBatch
	}

	chaos := rand.New(rand.NewSource(11))
	severed := false
	pos, maxPos := 0, 0
	for round := 0; round < rounds; round++ {
		switch action := chaos.Intn(5); action {
		case 0: // SIGKILL the primary, promote the standby, restart the corpse as standby.
			t.Logf("round %d: kill primary %s, promote %s", round, pri.name, sby.name)
			killNode(t, pri)
			promoteNode(t, sby)
			startChaosNode(t, pri, sby, true)
			pri, sby = sby, pri
			time.Sleep(50 * time.Millisecond)
		case 1: // SIGKILL the standby and restart it; the primary re-ships.
			t.Logf("round %d: kill standby %s", round, sby.name)
			killNode(t, sby)
			startChaosNode(t, sby, pri, true)
		case 2: // Sever the replication link into the standby.
			if !severed {
				t.Logf("round %d: sever replication into %s", round, sby.name)
				sby.proxy.sever()
				severed = true
			}
		case 3: // Heal the link; the primary catches the standby up.
			if severed {
				t.Logf("round %d: heal replication into %s", round, sby.name)
				sby.proxy.heal()
				severed = false
			}
		default:
			// Calm round: stream undisturbed.
		}

		for sent := 0; sent < batchesPerRound; {
			if pos >= totalBatches {
				break
			}
			start := time.Now()
			res, err := fc.Ingest("chaos", flat[pos*chaosBatch*chaosDims:(pos+1)*chaosBatch*chaosDims], chaosBatch, server.IngestOptions{})
			if elapsed := time.Since(start); elapsed > 90*time.Second {
				t.Fatalf("ingest call blocked %v — the no-hang contract is broken", elapsed)
			}
			switch {
			case err == nil:
				if res.T0 != uint64(pos*chaosBatch) {
					t.Fatalf("batch %d: T0 %d, want %d", pos, res.T0, pos*chaosBatch)
				}
				for j, v := range res.Verdicts {
					if v != want[pos*chaosBatch+j] {
						t.Fatalf("batch %d point %d diverged from the uninterrupted oracle", pos, j)
					}
				}
				pos++
				sent++
				if pos > maxPos {
					maxPos = pos
					// Pace fresh ground so the 25ms ship cadence gets to
					// interleave pushes with the stream; replayed batches
					// run unpaced (they only re-cover verified ground).
					time.Sleep(15 * time.Millisecond)
				}
			case errors.Is(err, replica.ErrPossiblyApplied):
				// The ambiguous case: resolve against the server's tick
				// and replay deterministically from there. The rewind is
				// bounded by the replication-lag window.
				next := resync()
				t.Logf("round %d: ambiguous batch %d, resynced to %d", round, pos, next)
				pos = next
			case strings.Contains(err.Error(), "attempts exhausted"):
				// Every candidate refused or was unreachable for the
				// whole retry budget (e.g. mid-failover). Typed, not a
				// hang; re-aim and continue.
				next := resync()
				t.Logf("round %d: attempts exhausted at batch %d (%v), resynced to %d", round, pos, err, next)
				pos = next
			default:
				t.Fatalf("batch %d: unexpected error class: %v", pos, err)
			}
		}
	}
	if severed {
		sby.proxy.heal()
	}

	// Drain the tail so the full labeled stream was verified at least
	// once, then surface the replication health into the log.
	for pos < totalBatches {
		res, err := fc.Ingest("chaos", flat[pos*chaosBatch*chaosDims:(pos+1)*chaosBatch*chaosDims], chaosBatch, server.IngestOptions{})
		if err != nil {
			if errors.Is(err, replica.ErrPossiblyApplied) || strings.Contains(err.Error(), "attempts exhausted") {
				pos = resync()
				continue
			}
			t.Fatalf("tail batch %d: %v", pos, err)
		}
		for j, v := range res.Verdicts {
			if v != want[pos*chaosBatch+j] {
				t.Fatalf("tail batch %d point %d diverged from the uninterrupted oracle", pos, j)
			}
		}
		pos++
	}
	logReplication(t, pri)

	// The divergence guard held: no standby ever accepted a generation
	// older than one it held from the same incarnation (stale pushes are
	// counted and refused, the detector state stays monotonic within an
	// incarnation). Corruption injection must have actually exercised
	// the verification path on at least one node.
	var corrupt uint64
	for _, n := range []*chaosNode{pri, sby} {
		c, err := server.DialOptions(n.addr, server.ClientOptions{DialTimeout: 2 * time.Second, ReadTimeout: 5 * time.Second})
		if err != nil {
			t.Fatalf("dial %s for final stats: %v", n.name, err)
		}
		ts, err := c.TenantStats("chaos")
		c.Close()
		if err != nil {
			t.Fatalf("final stats from %s: %v", n.name, err)
		}
		t.Logf("node %s: tick %d, repl accepted %d stale %d corrupt %d (last %s/%d)",
			n.name, ts.Tick, ts.ReplAccepted, ts.ReplStale, ts.ReplCorrupt, ts.ReplPrimary, ts.ReplSeq)
		corrupt += ts.ReplCorrupt
	}
	if corrupt == 0 {
		t.Error("corruption injection never reached a standby — the chaos run exercised nothing")
	}
}
