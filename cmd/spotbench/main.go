// Command spotbench measures the streaming throughput of the SPOT
// detector across dimensionalities and shard counts and writes the
// results as JSON (BENCH_core.json), seeding the repo's performance
// trajectory. Unlike `go test -bench` it drives the detector directly,
// so the output is a machine-readable artifact rather than text to
// parse.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"spot/internal/bench"
	"spot/internal/stream"
)

type result struct {
	Name          string  `json:"name"`
	Dims          int     `json:"dims"`
	Shards        int     `json:"shards"`
	MaxDim        int     `json:"max_subspace_dim"`
	Phi           int     `json:"phi"`
	Subspaces     int     `json:"subspaces"`
	Batch         int     `json:"batch"`
	Points        int     `json:"points"`
	Seconds       float64 `json:"seconds"`
	PointsPerSec  float64 `json:"points_per_sec"`
	OutlierRate   float64 `json:"flagged_rate"`
	ProjectedCell int     `json:"projected_cells"`
}

type report struct {
	Generated  string             `json:"generated"`
	GoVersion  string             `json:"go_version"`
	NumCPU     int                `json:"num_cpu"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Benchmarks []result           `json:"benchmarks"`
	Ratios     map[string]float64 `json:"shard8_over_shard1"`
}

func run(d, shards, batch int, dur time.Duration) (result, error) {
	cfg := stream.DefaultConfig(d)
	cfg.MaxSubspaceDim = bench.MaxDimFor(d)
	cfg.Shards = shards
	det, err := stream.New(cfg)
	if err != nil {
		return result{}, err
	}
	defer det.Close()

	gen := bench.NewGenerator(bench.DefaultGenConfig(d))
	const pool = 4
	flats := make([][]float64, pool)
	labels := make([]bool, batch)
	out := make([]bool, batch)
	for i := range flats {
		flats[i] = make([]float64, batch*d)
		gen.Fill(flats[i], labels, batch)
	}
	for i := range flats { // populate cell tables before timing
		det.ProcessBatch(flats[i], out)
	}

	points, flagged := 0, 0
	start := time.Now()
	for i := 0; time.Since(start) < dur; i++ {
		det.ProcessBatch(flats[i%pool], out)
		points += batch
		for _, f := range out {
			if f {
				flagged++
			}
		}
	}
	elapsed := time.Since(start).Seconds()
	return result{
		Name:          fmt.Sprintf("d=%d/shards=%d", d, shards),
		Dims:          d,
		Shards:        shards,
		MaxDim:        cfg.MaxSubspaceDim,
		Phi:           cfg.Phi,
		Subspaces:     det.Template().Count(),
		Batch:         batch,
		Points:        points,
		Seconds:       elapsed,
		PointsPerSec:  float64(points) / elapsed,
		OutlierRate:   float64(flagged) / float64(points),
		ProjectedCell: det.ProjectedCells(),
	}, nil
}

func main() {
	out := flag.String("out", "BENCH_core.json", "output JSON path")
	dur := flag.Duration("duration", 2*time.Second, "measurement duration per configuration")
	batch := flag.Int("batch", 512, "batch size in points")
	flag.Parse()
	if *batch < 1 {
		fmt.Fprintf(os.Stderr, "spotbench: -batch must be ≥ 1, got %d\n", *batch)
		os.Exit(2)
	}
	if *dur <= 0 {
		fmt.Fprintf(os.Stderr, "spotbench: -duration must be positive, got %v\n", *dur)
		os.Exit(2)
	}

	rep := report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Ratios:     map[string]float64{},
	}
	perDim := map[int]map[int]float64{}
	for _, d := range []int{20, 50, 100} {
		perDim[d] = map[int]float64{}
		for _, shards := range []int{1, 4, 8} {
			r, err := run(d, shards, *batch, *dur)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spotbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%-18s %12.0f points/sec  (%d subspaces, %d cells)\n",
				r.Name, r.PointsPerSec, r.Subspaces, r.ProjectedCell)
			rep.Benchmarks = append(rep.Benchmarks, r)
			perDim[d][shards] = r.PointsPerSec
		}
		if perDim[d][1] > 0 {
			rep.Ratios[fmt.Sprintf("d=%d", d)] = perDim[d][8] / perDim[d][1]
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "spotbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "spotbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
