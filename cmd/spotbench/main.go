// Command spotbench measures the streaming throughput of the SPOT
// detector across dimensionalities and shard counts, plus the epoch
// engine's memory-bounding and SST-evolution behavior, and writes the
// results as JSON (BENCH_core.json), the repo's tracked performance
// baseline. Unlike `go test -bench` it drives the detector directly,
// so the output is a machine-readable artifact rather than text to
// parse. Each report records the git commit it was produced from.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"spot/internal/bench"
	"spot/internal/replica"
	"spot/internal/server"
	"spot/internal/sst"
	"spot/internal/stream"
)

// result is one throughput measurement at a (dims, shards)
// configuration. NsPerPoint is the inverse throughput; AllocsPerPoint
// counts heap allocations per ingested point over the timed window
// (steady state should be ~0 — the microbench suite gates the exact
// zero).
type result struct {
	Name           string  `json:"name"`
	Dims           int     `json:"dims"`
	Shards         int     `json:"shards"`
	MaxDim         int     `json:"max_subspace_dim"`
	Phi            int     `json:"phi"`
	Subspaces      int     `json:"subspaces"`
	Batch          int     `json:"batch"`
	Points         int     `json:"points"`
	Seconds        float64 `json:"seconds"`
	PointsPerSec   float64 `json:"points_per_sec"`
	NsPerPoint     float64 `json:"ns_per_point"`
	AllocsPerPoint float64 `json:"allocs_per_point"`
	OutlierRate    float64 `json:"flagged_rate"`
	ProjectedCell  int     `json:"projected_cells"`
	BaseCells      int     `json:"base_cells"`
	// DistinctCellsPerBatch is the average number of distinct projected
	// cells per (subspace, batch) grouping pass and CellDupRatio the
	// points-folded-per-distinct-cell factor — the workload's intra-
	// batch duplication, which is exactly what batch cell coalescing
	// converts into saved index probes. Zero when coalescing was off or
	// the adaptive gate skipped every pass.
	DistinctCellsPerBatch float64 `json:"distinct_cells_per_batch"`
	CellDupRatio          float64 `json:"cell_dup_ratio"`
	// Ranking quality on a fresh labeled evaluation stream fed after the
	// timed window: tie-aware rank AUC of the ensemble score against the
	// planted ground truth, precision@K at K = planted count
	// (R-precision, with fractional credit for the boundary tie group),
	// and the recall of the plain verdict bitset on the same points —
	// the baseline the calibrated ranking has to beat. Zero on the
	// uniform adversarial stream, which plants no outliers.
	EvalPoints   int     `json:"eval_points"`
	EvalPlanted  int     `json:"eval_planted"`
	AUC          float64 `json:"auc"`
	PrecisionAtK float64 `json:"precision_at_k"`
	RankK        int     `json:"rank_k"`
	BitsetRecall float64 `json:"bitset_recall"`
	// BitsetPrecisionAtK is precision@K of the bitset treated as a
	// two-level ranking (flagged=1, unflagged=0, ties fractional) — the
	// best a consumer of the old boolean API can do when asked for the K
	// worst offenders, and the floor the calibrated score must beat.
	BitsetPrecisionAtK float64 `json:"bitset_precision_at_k"`
}

// driftResult reports the bounded-memory run: a jump-drifting stream
// where only epoch eviction keeps the summary tables from growing with
// every cell ever touched.
type driftResult struct {
	Dims             int     `json:"dims"`
	Points           int     `json:"points"`
	DriftPeriod      int     `json:"drift_period"`
	EpochTicks       uint64  `json:"epoch_ticks"`
	EvictEpsilon     float64 `json:"evict_epsilon"`
	EntriesMid       int     `json:"summary_entries_mid"`
	EntriesEnd       int     `json:"summary_entries_end"`
	GrowthRatio      float64 `json:"end_over_mid"`
	UnboundedEntries int     `json:"summary_entries_no_eviction"`
	EvictedProjected uint64  `json:"evicted_projected"`
	EvictedBase      uint64  `json:"evicted_base"`
	Sweeps           uint64  `json:"sweeps"`
}

// evolutionResult reports the self-evolving-SST run: projected
// outliers planted outside the fixed group, detectable only after the
// evolver promotes their subspace.
type evolutionResult struct {
	Dims          int     `json:"dims"`
	Points        int     `json:"points"`
	Promoted      uint64  `json:"promoted"`
	Demoted       uint64  `json:"demoted"`
	EvolvedActive int     `json:"evolved_active"`
	Planted       int     `json:"planted_outliers"`
	Caught        int     `json:"caught_outliers"`
	Recall        float64 `json:"recall_post_promotion"`
}

// supervisedResult reports the supervised-MOGA run: the same
// high-dimensional mix-outlier stream fed to an unsupervised-only
// detector (TopSparse, whose per-epoch Explore budget is a needle-in-
// haystack search at this d) and to a supervised one (TopSparse + MOGA
// behind sst.Multi) whose MOGA group learns from confirmed-outlier
// examples fed back between points. Recall is recorded per epoch so the
// artifact shows how many epochs each detector needs before the planted
// ground-truth subspace is found.
type supervisedResult struct {
	Dims               int       `json:"dims"`
	Points             int       `json:"points"`
	EpochTicks         uint64    `json:"epoch_ticks"`
	MixDim             int       `json:"mix_dim"`
	CandidatePairs     int       `json:"candidate_pairs"`
	ExamplesMarked     int       `json:"examples_marked"`
	RecallByEpochUnsup []float64 `json:"recall_by_epoch_unsupervised"`
	RecallByEpochSup   []float64 `json:"recall_by_epoch_supervised"`
	RecallUnsup        float64   `json:"recall_overall_unsupervised"`
	RecallSup          float64   `json:"recall_overall_supervised"`
	TruthFoundUnsup    bool      `json:"truth_found_unsupervised"`
	TruthFoundByMOGA   bool      `json:"truth_found_by_moga"`
	TruthInTopSparse   bool      `json:"truth_in_topsparse_supervised_run"`
	MOGAPromoted       [][]int   `json:"moga_promoted_subspaces"`
}

// report is the full JSON artifact.
type report struct {
	Generated     string               `json:"generated"`
	GitSHA        string               `json:"git_sha"`
	GoVersion     string               `json:"go_version"`
	NumCPU        int                  `json:"num_cpu"`
	GOMAXPROCS    int                  `json:"gomaxprocs"`
	Benchmarks    []result             `json:"benchmarks"`
	Ratios        map[string]float64   `json:"shard8_over_shard1"`
	Coalesce      []coalesceResult     `json:"coalesce"`
	SweepPause    *sweepPauseResult    `json:"sweep_pause"`
	Drift         *driftResult         `json:"drift_memory"`
	Evolution     *evolutionResult     `json:"sst_evolution"`
	Supervised    *supervisedResult    `json:"supervised"`
	Checkpoint    *checkpointResult    `json:"checkpoint"`
	AutoThreshold *autoThresholdResult `json:"auto_threshold"`
	ServingPath   *servingPathResult   `json:"serving_path"`
}

// run measures throughput for one scenario: a (dims, shards) grid point
// on the default clustered stream, or — for the duplication-aware
// coalescing scenarios — the uniform adversarial stream and/or the
// Config.NoCoalesce fused path.
func run(name string, d, shards, batch int, dur time.Duration, uniform, noCoalesce bool) (result, error) {
	cfg := stream.DefaultConfig(d)
	cfg.MaxSubspaceDim = bench.MaxDimFor(d)
	cfg.Shards = shards
	cfg.NoCoalesce = noCoalesce
	// The timed loop recycles a small batch pool, so every point recurs
	// with a period ~3× the decay window and every cell looks
	// perpetually fresh — a degenerate workload the populated-RD test
	// would flag wholesale, drowning the flagged-rate signal. Disable
	// it here (its hot-path cost is one compare); the drift and
	// evolution runs below use real streams and keep it.
	cfg.RDPopulatedThreshold = 0
	// The timed loop runs scored: AllocsPerPoint below is the live proof
	// that ensemble scoring, attribution capture and top-K maintenance
	// stay allocation-free in steady state, and the post-timed eval
	// phase reuses the same detector for the ranking metrics.
	cfg.Scoring = true
	cfg.TopK = 16
	det, err := stream.New(cfg)
	if err != nil {
		return result{}, err
	}
	defer det.Close()

	gcfg := bench.DefaultGenConfig(d)
	gcfg.Uniform = uniform
	gen := bench.NewGenerator(gcfg)
	const pool = 4
	flats := make([][]float64, pool)
	labels := make([]bool, batch)
	out := make([]bool, batch)
	scores := make([]float64, batch)
	for i := range flats {
		flats[i] = make([]float64, batch*d)
		gen.Fill(flats[i], labels, batch)
	}
	for i := range flats { // populate cell tables before timing
		det.ProcessBatchScored(flats[i], out, scores)
	}

	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	points, flagged := 0, 0
	start := time.Now()
	for i := 0; time.Since(start) < dur; i++ {
		det.ProcessBatchScored(flats[i%pool], out, scores)
		points += batch
		for _, f := range out {
			if f {
				flagged++
			}
		}
	}
	elapsed := time.Since(start).Seconds()
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	var distinct, dup float64
	if s := det.Stats(); s.CoalesceGroupings > 0 {
		distinct = float64(s.CoalescedDistinct) / float64(s.CoalesceGroupings)
		dup = float64(s.CoalescedPoints) / float64(s.CoalescedDistinct)
	}

	// Ranking evaluation: fresh labeled points from the same generator
	// (not the recycled pool), scored by the warmed detector. The planted
	// outliers are the ground truth for AUC / precision@K; the verdict
	// bitset's recall on the identical points is the baseline.
	const evalBatches = 16
	evalScores := make([]float64, 0, evalBatches*batch)
	evalBits := make([]float64, 0, evalBatches*batch)
	evalLabels := make([]bool, 0, evalBatches*batch)
	planted, caught := 0, 0
	for i := 0; i < evalBatches; i++ {
		gen.Fill(flats[0], labels, batch)
		det.ProcessBatchScored(flats[0], out, scores)
		evalScores = append(evalScores, scores...)
		evalLabels = append(evalLabels, labels...)
		for j, lab := range labels {
			bit := 0.0
			if out[j] {
				bit = 1.0
			}
			evalBits = append(evalBits, bit)
			if lab {
				planted++
				if out[j] {
					caught++
				}
			}
		}
	}
	auc, prec, rankK := rankMetrics(evalScores, evalLabels)
	_, bitsetPrec, _ := rankMetrics(evalBits, evalLabels)
	var bitsetRecall float64
	if planted > 0 {
		bitsetRecall = float64(caught) / float64(planted)
	}

	return result{
		Name:           name,
		Dims:           d,
		Shards:         shards,
		MaxDim:         cfg.MaxSubspaceDim,
		Phi:            cfg.Phi,
		Subspaces:      det.Template().Count(),
		Batch:          batch,
		Points:         points,
		Seconds:        elapsed,
		PointsPerSec:   float64(points) / elapsed,
		NsPerPoint:     elapsed * 1e9 / float64(points),
		AllocsPerPoint: float64(msAfter.Mallocs-msBefore.Mallocs) / float64(points),
		OutlierRate:    float64(flagged) / float64(points),
		ProjectedCell:  det.ProjectedCells(),
		BaseCells:      det.BaseCells(),

		DistinctCellsPerBatch: distinct,
		CellDupRatio:          dup,
		EvalPoints:            len(evalLabels),
		EvalPlanted:           planted,
		AUC:                   auc,
		PrecisionAtK:          prec,
		RankK:                 rankK,
		BitsetRecall:          bitsetRecall,
		BitsetPrecisionAtK:    bitsetPrec,
	}, nil
}

// rankMetrics scores a labeled ranking: tie-aware AUC via the rank-sum
// (Mann–Whitney U) statistic with average ranks over tie groups, and
// precision@K at K = positive count with fractional credit for
// positives inside the tie group straddling the K-th rank — both are
// therefore invariant to how a sort breaks score ties. Returns zeros
// when either class is empty (e.g. the uniform stream plants nothing).
func rankMetrics(scores []float64, labels []bool) (auc, precAtK float64, k int) {
	n := len(scores)
	pos := 0
	for _, lab := range labels {
		if lab {
			pos++
		}
	}
	if pos == 0 || pos == n {
		return 0, 0, pos
	}
	k = pos
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	// AUC: walk descending score, assign each tie group its average
	// rank (1 = highest score), then AUC = (R⁺ − pos(pos+1)/2)/(pos·neg)
	// computed against ascending ranks — equivalently, flip the
	// descending rank sum.
	var posRankSum float64
	for i := 0; i < n; {
		j := i
		grpPos := 0
		for j < n && scores[idx[j]] == scores[idx[i]] {
			if labels[idx[j]] {
				grpPos++
			}
			j++
		}
		avgDescRank := float64(i+j+1) / 2 // mean of descending ranks i+1..j
		posRankSum += float64(grpPos) * avgDescRank
		i = j
	}
	neg := n - pos
	// Convert descending ranks to ascending: rAsc = n+1 − rDesc.
	ascSum := float64(pos)*float64(n+1) - posRankSum
	auc = (ascSum - float64(pos)*float64(pos+1)/2) / (float64(pos) * float64(neg))

	// Precision@K: positives strictly above the K-th score count whole;
	// the tie group at the K-th score fills the remaining slots with its
	// positive fraction.
	kth := scores[idx[k-1]]
	above, posAbove, tieN, tiePos := 0, 0, 0, 0
	for i := 0; i < n; i++ {
		switch {
		case scores[i] > kth:
			above++
			if labels[i] {
				posAbove++
			}
		case scores[i] == kth:
			tieN++
			if labels[i] {
				tiePos++
			}
		}
	}
	credit := float64(posAbove)
	if tieN > 0 {
		credit += float64(k-above) * float64(tiePos) / float64(tieN)
	}
	precAtK = credit / float64(k)
	return auc, precAtK, k
}

// coalesceResult reports the duplication-aware coalescing scenarios:
// the same d=20/shards=1 configuration measured with batch cell
// coalescing on and off (Config.NoCoalesce), on the clustered default
// stream (heavy intra-batch duplication — the win case) and on the
// adversarial uniform stream (almost no duplication in the high-arity
// subspaces — the stay-flat case, which the per-subspace adaptive gate
// enforces by routing duplication-free subspaces back to the fused
// path). The full per-run rows also live in benchmarks[], so
// bench-compare gates on them like any grid point.
type coalesceResult struct {
	Dims                  int     `json:"dims"`
	Shards                int     `json:"shards"`
	Batch                 int     `json:"batch"`
	Scenario              string  `json:"scenario"`
	PointsPerSecOn        float64 `json:"points_per_sec_coalesce"`
	PointsPerSecOff       float64 `json:"points_per_sec_nocoalesce"`
	OnOverOff             float64 `json:"coalesce_over_nocoalesce"`
	DistinctCellsPerBatch float64 `json:"distinct_cells_per_batch"`
	CellDupRatio          float64 `json:"cell_dup_ratio"`
}

// coalesceSummary pairs one scenario's coalesce-on and -off rows.
func coalesceSummary(scenario string, on, off result) coalesceResult {
	return coalesceResult{
		Dims:                  on.Dims,
		Shards:                on.Shards,
		Batch:                 on.Batch,
		Scenario:              scenario,
		PointsPerSecOn:        on.PointsPerSec,
		PointsPerSecOff:       off.PointsPerSec,
		OnOverOff:             on.PointsPerSec / off.PointsPerSec,
		DistinctCellsPerBatch: on.DistinctCellsPerBatch,
		CellDupRatio:          on.CellDupRatio,
	}
}

// sweepPauseResult reports the epoch-sweep pause with the per-shard
// table sweeps run serially on the dispatcher vs fanned out to the
// shard workers, on the same stream. Pauses are the mean wall time of
// a sweep's table scans (SST evolution excluded); the ratio is only
// meaningful on multi-core machines — on one CPU the parallel fan-out
// can't overlap and merely adds handoff cost.
type sweepPauseResult struct {
	Dims               int     `json:"dims"`
	Shards             int     `json:"shards"`
	EpochTicks         uint64  `json:"epoch_ticks"`
	Points             int     `json:"points"`
	Sweeps             uint64  `json:"sweeps"`
	ProjectedCells     int     `json:"projected_cells"`
	SerialNsPerSweep   float64 `json:"serial_ns_per_sweep"`
	ParallelNsPerSweep float64 `json:"parallel_ns_per_sweep"`
	ParallelOverSerial float64 `json:"parallel_over_serial"`
}

// runSweepPause feeds the identical batched stream through two
// detectors differing only in Config.SerialSweep and reports the mean
// epoch pause of each.
func runSweepPause() (*sweepPauseResult, error) {
	const (
		d      = 20
		shards = 4
		batch  = 512
		epochs = 16
	)
	measure := func(serial bool) (stream.Stats, error) {
		cfg := stream.DefaultConfig(d)
		cfg.MaxSubspaceDim = bench.MaxDimFor(d)
		cfg.Shards = shards
		cfg.SerialSweep = serial
		det, err := stream.New(cfg)
		if err != nil {
			return stream.Stats{}, err
		}
		defer det.Close()
		gen := bench.NewGenerator(bench.DefaultGenConfig(d))
		flat := make([]float64, batch*d)
		labels := make([]bool, batch)
		out := make([]bool, batch)
		points := epochs * int(cfg.EpochTicks)
		for fed := 0; fed < points; fed += batch {
			gen.Fill(flat, labels, batch)
			det.ProcessBatch(flat, out)
		}
		return det.Stats(), nil
	}
	ser, err := measure(true)
	if err != nil {
		return nil, err
	}
	par, err := measure(false)
	if err != nil {
		return nil, err
	}
	if ser.Sweeps == 0 || par.Sweeps == 0 {
		return nil, fmt.Errorf("sweep pause run recorded no sweeps")
	}
	serNs := float64(ser.SweepNanos) / float64(ser.Sweeps)
	parNs := float64(par.SweepNanos) / float64(par.Sweeps)
	cfgTicks := stream.DefaultConfig(d).EpochTicks
	return &sweepPauseResult{
		Dims:               d,
		Shards:             shards,
		EpochTicks:         cfgTicks,
		Points:             epochs * int(cfgTicks),
		Sweeps:             par.Sweeps,
		ProjectedCells:     par.ProjectedCells,
		SerialNsPerSweep:   serNs,
		ParallelNsPerSweep: parNs,
		ParallelOverSerial: parNs / serNs,
	}, nil
}

// runDrift measures the memory-bounding behavior on a jump-drifting
// stream, with and without epoch sweeps.
func runDrift() (*driftResult, error) {
	const (
		d      = 20
		points = 24000
		drift  = 1000
	)
	mk := func(epoch uint64) stream.Config {
		cfg := stream.DefaultConfig(d)
		cfg.MaxSubspaceDim = 2
		cfg.Shards = 2
		cfg.Lambda = 0.01
		cfg.Warmup = 50
		cfg.EpochTicks = epoch
		cfg.EvictEpsilon = 1e-4
		if epoch == 0 {
			cfg.RDPopulatedThreshold = 0
		}
		return cfg
	}
	gcfg := bench.DefaultGenConfig(d)
	gcfg.DriftPeriod = drift

	feed := func(cfg stream.Config) (mid int, s stream.Stats, err error) {
		det, err := stream.New(cfg)
		if err != nil {
			return 0, stream.Stats{}, err
		}
		defer det.Close()
		gen := bench.NewGenerator(gcfg)
		buf := make([]float64, d)
		for i := 0; i < points; i++ {
			gen.Next(buf)
			det.Process(buf)
			if i+1 == points/2 {
				mid = det.Stats().SummaryEntries
			}
		}
		return mid, det.Stats(), nil
	}

	cfg := mk(500)
	mid, s, err := feed(cfg)
	if err != nil {
		return nil, err
	}
	cfgNo := mk(0)
	_, sNo, err := feed(cfgNo)
	if err != nil {
		return nil, err
	}
	return &driftResult{
		Dims:             d,
		Points:           points,
		DriftPeriod:      drift,
		EpochTicks:       cfg.EpochTicks,
		EvictEpsilon:     cfg.EvictEpsilon,
		EntriesMid:       mid,
		EntriesEnd:       s.SummaryEntries,
		GrowthRatio:      float64(s.SummaryEntries) / float64(mid),
		UnboundedEntries: sNo.SummaryEntries,
		EvictedProjected: s.EvictedProjected,
		EvictedBase:      s.EvictedBase,
		Sweeps:           s.Sweeps,
	}, nil
}

// runEvolution measures the self-evolving group end to end: mix
// outliers invisible to the arity-1 fixed group until promotion.
func runEvolution() (*evolutionResult, error) {
	const (
		d      = 6
		points = 3000
	)
	ev, err := sst.NewTopSparse(sst.TopSparseConfig{
		Arity: 2, TopS: 2, Explore: 64, SparseRatio: 0.1, MinScore: 0.05, Seed: 1,
	})
	if err != nil {
		return nil, err
	}
	cfg := stream.DefaultConfig(d)
	cfg.MaxSubspaceDim = 1
	cfg.Shards = 2
	cfg.Lambda = 0.02
	cfg.Warmup = 30
	cfg.EpochTicks = 400
	cfg.EvictEpsilon = 1e-4
	cfg.RDPopulatedThreshold = 0.2
	cfg.Evolver = ev
	det, err := stream.New(cfg)
	if err != nil {
		return nil, err
	}
	defer det.Close()

	gcfg := bench.GenConfig{
		Dims: d,
		Centers: [][]float64{
			{0.19, 0.19, 0.19, 0.19, 0.19, 0.19},
			{0.81, 0.81, 0.81, 0.81, 0.81, 0.81},
		},
		Sigma:       0.005,
		OutlierRate: 0.02,
		Mode:        bench.OutlierMix,
		MixDim:      4,
		Seed:        11,
	}
	gen := bench.NewGenerator(gcfg)
	buf := make([]float64, d)
	planted, caught := 0, 0
	for i := 0; i < points; i++ {
		isOut := gen.Next(buf)
		flag := det.Process(buf)
		if i < 2*int(cfg.EpochTicks)+100 {
			continue // pre-promotion + warmup window
		}
		if isOut {
			planted++
			if flag {
				caught++
			}
		}
	}
	s := det.Stats()
	recall := 0.0
	if planted > 0 {
		recall = float64(caught) / float64(planted)
	}
	return &evolutionResult{
		Dims:          d,
		Points:        points,
		Promoted:      s.Promoted,
		Demoted:       s.Demoted,
		EvolvedActive: s.EvolvedActive,
		Planted:       planted,
		Caught:        caught,
		Recall:        recall,
	}, nil
}

// runSupervised measures the supervised MOGA group end to end at a
// dimensionality where unsupervised subspace search is a lottery:
// C(64,2) = 2016 candidate pairs, of which only the 63 containing the
// mix dimension reveal the planted outliers, against a TopSparse budget
// of 4 random candidates per epoch (~12% chance per epoch of sampling
// any truth pair). The supervised detector runs the same TopSparse plus
// a MOGA group fed every confirmed outlier as an example; once any
// genome touches the mix dimension the example-driven objectives pin
// it, so the population converges within the first epochs.
func runSupervised() (*supervisedResult, error) {
	const (
		d      = 64
		mixDim = 11
		epochs = 12
	)
	centerA := make([]float64, d)
	centerB := make([]float64, d)
	for i := range centerA {
		centerA[i] = 0.19
		centerB[i] = 0.81
	}
	gcfg := bench.GenConfig{
		Dims:        d,
		Centers:     [][]float64{centerA, centerB},
		Sigma:       0.005,
		OutlierRate: 0.02,
		Mode:        bench.OutlierMix,
		MixDim:      mixDim,
		Seed:        11,
	}
	newTopSparse := func() (*sst.TopSparse, error) {
		return sst.NewTopSparse(sst.TopSparseConfig{
			Arity: 2, TopS: 2, Explore: 4, SparseRatio: 0.1, MinScore: 0.05, Seed: 1,
		})
	}
	mkCfg := func(ev sst.Evolver) stream.Config {
		cfg := stream.DefaultConfig(d)
		cfg.MaxSubspaceDim = 1
		cfg.Shards = 2
		cfg.Lambda = 0.02
		cfg.Warmup = 30
		cfg.EpochTicks = 400
		cfg.EvictEpsilon = 1e-4
		cfg.RDPopulatedThreshold = 0.2
		cfg.Evolver = ev
		return cfg
	}

	// runOne streams the identical point sequence through one detector,
	// optionally feeding planted outliers back as examples, and records
	// recall per epoch window plus overall recall past the promotion +
	// warmup horizon. The caller inspects the template before Close.
	runOne := func(ev sst.Evolver, supervise bool) (*stream.Detector, []float64, float64, int, error) {
		cfg := mkCfg(ev)
		det, err := stream.New(cfg)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		gen := bench.NewGenerator(gcfg)
		buf := make([]float64, d)
		measureFrom := 2*int(cfg.EpochTicks) + 100
		var recalls []float64
		var planted, caught, totPlanted, totCaught, marked int
		for i := 0; i < epochs*int(cfg.EpochTicks); i++ {
			isOut := gen.Next(buf)
			flag := det.Process(buf)
			if isOut {
				if supervise {
					det.MarkExample(buf)
					marked++
				}
				planted++
				if flag {
					caught++
				}
				if i >= measureFrom {
					totPlanted++
					if flag {
						totCaught++
					}
				}
			}
			if (i+1)%int(cfg.EpochTicks) == 0 {
				r := 0.0
				if planted > 0 {
					r = float64(caught) / float64(planted)
				}
				recalls = append(recalls, r)
				planted, caught = 0, 0
			}
		}
		overall := 0.0
		if totPlanted > 0 {
			overall = float64(totCaught) / float64(totPlanted)
		}
		return det, recalls, overall, marked, nil
	}

	// containsMix reports whether a live evolved pair of the detector
	// contains the mix dimension and passes the ownership test.
	containsMix := func(det *stream.Detector, owns func([]uint16) bool) bool {
		for _, id := range det.Template().EvolvedIDs(nil) {
			dims := det.Template().Dims(int(id))
			for _, dim := range dims {
				if dim == uint16(mixDim) && (owns == nil || owns(dims)) {
					return true
				}
			}
		}
		return false
	}

	tsU, err := newTopSparse()
	if err != nil {
		return nil, err
	}
	detU, recallsU, overallU, _, err := runOne(tsU, false)
	if err != nil {
		return nil, err
	}
	defer detU.Close()

	tsS, err := newTopSparse()
	if err != nil {
		return nil, err
	}
	moga, err := sst.NewMOGA(sst.MOGAConfig{
		MinArity: 2, MaxArity: 2, PopSize: 24, Generations: 6, TopS: 2,
		SparseRatio: 0.1, MinCoverage: 0.6, MinSparsity: 0.5, Seed: 1,
	})
	if err != nil {
		return nil, err
	}
	detS, recallsS, overallS, marked, err := runOne(sst.Multi{tsS, moga}, true)
	if err != nil {
		return nil, err
	}
	defer detS.Close()

	var mogaSets [][]int
	for _, id := range detS.Template().EvolvedIDs(nil) {
		dims := detS.Template().Dims(int(id))
		if moga.Owns(dims) {
			set := make([]int, len(dims))
			for i, dim := range dims {
				set[i] = int(dim)
			}
			mogaSets = append(mogaSets, set)
		}
	}
	return &supervisedResult{
		Dims:               d,
		Points:             epochs * 400,
		EpochTicks:         400,
		MixDim:             mixDim,
		CandidatePairs:     d * (d - 1) / 2,
		ExamplesMarked:     marked,
		RecallByEpochUnsup: recallsU,
		RecallByEpochSup:   recallsS,
		RecallUnsup:        overallU,
		RecallSup:          overallS,
		TruthFoundUnsup:    containsMix(detU, nil),
		TruthFoundByMOGA:   containsMix(detS, moga.Owns),
		TruthInTopSparse:   containsMix(detS, tsS.Owns),
		MOGAPromoted:       mogaSets,
	}, nil
}

// checkpointResult reports the crash-safe checkpoint path on a
// populated detector: the full-state snapshot size and the
// encode (Detector.Snapshot) and decode (stream.Restore) cost, so
// bench-compare catches a checkpoint that silently bloats or a restore
// that stops being cheap enough to run on a recovery path.
type checkpointResult struct {
	Dims           int     `json:"dims"`
	Shards         int     `json:"shards"`
	ProjectedCells int     `json:"projected_cells"`
	BaseCells      int     `json:"base_cells"`
	SnapshotBytes  int64   `json:"snapshot_bytes"`
	EncodeOps      int     `json:"encode_ops"`
	DecodeOps      int     `json:"decode_ops"`
	EncodeNsPerOp  float64 `json:"encode_ns_per_op"`
	DecodeNsPerOp  float64 `json:"decode_ns_per_op"`
}

// runCheckpoint populates a d=20 detector with the clustered stream,
// then times snapshot encodes into a reused buffer and restores from
// the captured bytes, each for the configured duration.
func runCheckpoint(dur time.Duration, batch int) (*checkpointResult, error) {
	const d = 20
	cfg := stream.DefaultConfig(d)
	cfg.MaxSubspaceDim = bench.MaxDimFor(d)
	cfg.Shards = 4
	det, err := stream.New(cfg)
	if err != nil {
		return nil, err
	}
	defer det.Close()
	gen := bench.NewGenerator(bench.DefaultGenConfig(d))
	flat := make([]float64, batch*d)
	labels := make([]bool, batch)
	out := make([]bool, batch)
	for i := 0; i < 40; i++ {
		gen.Fill(flat, labels, batch)
		det.ProcessBatch(flat, out)
	}

	var buf bytes.Buffer
	if err := det.Snapshot(&buf); err != nil {
		return nil, err
	}
	raw := append([]byte(nil), buf.Bytes()...)

	encOps := 0
	start := time.Now()
	for time.Since(start) < dur {
		buf.Reset()
		if err := det.Snapshot(&buf); err != nil {
			return nil, err
		}
		encOps++
	}
	encNs := float64(time.Since(start).Nanoseconds()) / float64(encOps)

	decOps := 0
	start = time.Now()
	for time.Since(start) < dur {
		restored, err := stream.Restore(bytes.NewReader(raw), cfg)
		if err != nil {
			return nil, err
		}
		restored.Close()
		decOps++
	}
	decNs := float64(time.Since(start).Nanoseconds()) / float64(decOps)

	return &checkpointResult{
		Dims:           d,
		Shards:         cfg.Shards,
		ProjectedCells: det.ProjectedCells(),
		BaseCells:      det.BaseCells(),
		SnapshotBytes:  int64(len(raw)),
		EncodeOps:      encOps,
		DecodeOps:      decOps,
		EncodeNsPerOp:  encNs,
		DecodeNsPerOp:  decNs,
	}, nil
}

// servingPathResult reports the serving-path comparison: the identical
// d=20 batched stream driven through the library detector directly,
// through an in-process spotd server over a real loopback TCP
// connection (one synchronous Ingest round-trip per batch), and
// through that same server while a warm standby receives snapshot
// generations from the replication shipper. The two ratios are the
// artifact's record of what the wire costs and what replication costs
// on top of it; the shipped-generation counters prove the standby leg
// actually replicated during the timed window rather than measuring an
// idle shipper.
type servingPathResult struct {
	Dims                int     `json:"dims"`
	Shards              int     `json:"shards"`
	Batch               int     `json:"batch"`
	ReplIntervalMillis  int64   `json:"replicate_interval_millis"`
	LibraryPointsPerSec float64 `json:"library_points_per_sec"`
	DaemonPointsPerSec  float64 `json:"daemon_points_per_sec"`
	StandbyPointsPerSec float64 `json:"daemon_standby_points_per_sec"`
	DaemonOverLibrary   float64 `json:"daemon_over_library"`
	StandbyOverDaemon   float64 `json:"standby_over_daemon"`
	GenerationsShipped  uint64  `json:"generations_shipped"`
	ReplicationBytes    uint64  `json:"replication_bytes_shipped"`
	StandbyTicksBehind  uint64  `json:"standby_ticks_behind_at_end"`
}

// servingTenant is the tenant name every serving-path leg ingests into.
const servingTenant = "bench"

// runServingPath measures the three serving-path legs on the same
// clustered stream and batch pool as the grid points. Each leg warms
// the detector with the pool before timing; the daemon legs speak the
// real wire protocol over loopback TCP, so the measured gap includes
// encoding, the syscall path and the tenant worker handoff.
func runServingPath(dur time.Duration, batch int) (*servingPathResult, []result, error) {
	const (
		d            = 20
		shards       = 4
		replInterval = 100 * time.Millisecond
	)
	cfg := stream.DefaultConfig(d)
	cfg.MaxSubspaceDim = bench.MaxDimFor(d)
	cfg.Shards = shards
	// Same recycled-pool caveat as run(): the pool makes every cell look
	// perpetually fresh, so the populated-RD test would flag wholesale.
	cfg.RDPopulatedThreshold = 0

	gcfg := bench.DefaultGenConfig(d)
	gen := bench.NewGenerator(gcfg)
	const pool = 4
	flats := make([][]float64, pool)
	labels := make([]bool, batch)
	for i := range flats {
		flats[i] = make([]float64, batch*d)
		gen.Fill(flats[i], labels, batch)
	}

	// measure warms with one pass over the pool, then drives batches
	// until the duration elapses and returns points/sec.
	measure := func(ingest func(flat []float64) error) (float64, int, error) {
		for _, flat := range flats {
			if err := ingest(flat); err != nil {
				return 0, 0, err
			}
		}
		points := 0
		start := time.Now()
		for i := 0; time.Since(start) < dur; i++ {
			if err := ingest(flats[i%pool]); err != nil {
				return 0, 0, err
			}
			points += batch
		}
		return float64(points) / time.Since(start).Seconds(), points, nil
	}

	// startServer serves one in-process spotd on loopback; the returned
	// stop drains it.
	startServer := func(opts server.Options) (*server.Server, string, func(), error) {
		s, err := server.New(opts, []server.TenantConfig{{Name: servingTenant, Stream: cfg}})
		if err != nil {
			return nil, "", nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, "", nil, err
		}
		serveDone := make(chan error, 1)
		go func() { serveDone <- s.Serve(ln) }()
		stop := func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			s.Shutdown(ctx)
			<-serveDone
		}
		return s, ln.Addr().String(), stop, nil
	}

	// Leg 1: the library path, no wire.
	det, err := stream.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	out := make([]bool, batch)
	libPts, libPoints, err := measure(func(flat []float64) error {
		det.ProcessBatch(flat, out)
		return nil
	})
	det.Close()
	if err != nil {
		return nil, nil, err
	}

	// Leg 2: the daemon path — one synchronous Ingest per batch over
	// loopback TCP.
	ingestLeg := func(addr string) (float64, int, error) {
		c, err := server.Dial(addr)
		if err != nil {
			return 0, 0, err
		}
		defer c.Close()
		return measure(func(flat []float64) error {
			_, err := c.Ingest(servingTenant, flat, batch, server.IngestOptions{})
			return err
		})
	}
	_, priAddr, priStop, err := startServer(server.Options{ID: "bench-pri"})
	if err != nil {
		return nil, nil, err
	}
	daemonPts, daemonPoints, err := ingestLeg(priAddr)
	priStop()
	if err != nil {
		return nil, nil, err
	}

	// Leg 3: the daemon path again, with a warm standby receiving
	// snapshot generations while the timed window runs.
	sby, sbyAddr, sbyStop, err := startServer(server.Options{ID: "bench-sby", Role: server.RoleStandby})
	if err != nil {
		return nil, nil, err
	}
	defer sbyStop()
	pri2, pri2Addr, pri2Stop, err := startServer(server.Options{ID: "bench-pri2"})
	if err != nil {
		return nil, nil, err
	}
	defer pri2Stop()
	shipper, err := replica.NewShipper(replica.ShipperConfig{
		Server:   pri2,
		Targets:  []string{sbyAddr},
		Interval: replInterval,
		ID:       "bench-pri2",
	})
	if err != nil {
		return nil, nil, err
	}
	standbyPts, standbyPoints, err := ingestLeg(pri2Addr)
	if err != nil {
		shipper.Stop()
		return nil, nil, err
	}
	// One final pass so the counters cover the last cut generation,
	// then freeze them before shutdown.
	time.Sleep(2 * replInterval)
	shipper.Stop()
	var gens, bytesShipped uint64
	for _, tgt := range shipper.Status().Targets {
		gens += tgt.GensShipped
		bytesShipped += tgt.BytesShipped
	}
	priTS, _ := pri2.Tenant(servingTenant)
	sbyTS, _ := sby.Tenant(servingTenant)
	var behind uint64
	if priTS.Tick > sbyTS.Tick {
		behind = priTS.Tick - sbyTS.Tick
	}

	mkRow := func(name string, pts float64, points int) result {
		return result{
			Name: name, Dims: d, Shards: shards, MaxDim: cfg.MaxSubspaceDim,
			Phi: cfg.Phi, Batch: batch, Points: points,
			Seconds: float64(points) / pts, PointsPerSec: pts,
			NsPerPoint: 1e9 / pts,
		}
	}
	rows := []result{
		mkRow("serving/library", libPts, libPoints),
		mkRow("serving/daemon", daemonPts, daemonPoints),
		mkRow("serving/daemon+standby", standbyPts, standbyPoints),
	}
	return &servingPathResult{
		Dims:                d,
		Shards:              shards,
		Batch:               batch,
		ReplIntervalMillis:  replInterval.Milliseconds(),
		LibraryPointsPerSec: libPts,
		DaemonPointsPerSec:  daemonPts,
		StandbyPointsPerSec: standbyPts,
		DaemonOverLibrary:   daemonPts / libPts,
		StandbyOverDaemon:   standbyPts / daemonPts,
		GenerationsShipped:  gens,
		ReplicationBytes:    bytesShipped,
		StandbyTicksBehind:  behind,
	}, rows, nil
}

// autoThresholdLeg is one detector configuration driven through the
// calibration stream: an auto-thresholded leg targeting per-point risk
// q, or the fixed-threshold control whose flagged rate simply follows
// the distribution.
type autoThresholdLeg struct {
	Name string `json:"name"`
	// Risk is the requested per-point flag probability; 0 marks the
	// fixed-threshold control leg.
	Risk          float64 `json:"risk"`
	WarmEpochs    int     `json:"warm_epochs"`
	MeasureEpochs int     `json:"measure_epochs"`
	// FlaggedSteady and FlaggedPostDrift are the pooled flagged rates
	// over the two measure windows, each taken after the controller's
	// ~40-epoch convergence transient (warm_epochs covers it).
	FlaggedSteady    float64 `json:"flagged_rate_steady"`
	FlaggedPostDrift float64 `json:"flagged_rate_post_drift"`
	// InBandSteady / InBandPostDrift report rate ∈ [q/3, 3q] — the
	// calibration contract bench-compare gates on. Always false on the
	// control leg (no q to be in band of).
	InBandSteady    bool    `json:"in_band_steady"`
	InBandPostDrift bool    `json:"in_band_post_drift"`
	Calibrations    uint64  `json:"calibrations"`
	EffTrials       float64 `json:"eff_trials"`
}

// autoThresholdResult reports the EVT auto-thresholding scenario: a
// pure-inlier uniform stream whose support abruptly collapses to half
// the box mid-run. The auto legs must hold their requested flagged rate
// through the shift once re-calibrated; the fixed-threshold control
// shows why that is not free — its rate moves with the distribution.
type autoThresholdResult struct {
	Dims       int                `json:"dims"`
	Shards     int                `json:"shards"`
	EpochTicks uint64             `json:"epoch_ticks"`
	Legs       []autoThresholdLeg `json:"legs"`
}

// runAutoThreshold drives each leg through warm/measure windows on both
// sides of the drift. Measure windows scale with 1/q so even the
// q=1e-4 leg pools enough expected flags (~50) for a stable rate.
func runAutoThreshold() (*autoThresholdResult, error) {
	const (
		d          = 20
		epochTicks = 512
		warmEpochs = 60
	)
	mk := func(risk float64) stream.Config {
		cfg := stream.DefaultConfig(d)
		cfg.MaxSubspaceDim = 2
		cfg.Shards = 1
		cfg.Lambda = 0.01
		cfg.Warmup = 50
		cfg.EpochTicks = epochTicks
		if risk > 0 {
			cfg.AutoThreshold = stream.AutoThreshold{Risk: risk}
		}
		return cfg
	}
	leg := func(name string, risk float64, measureEpochs int) (autoThresholdLeg, error) {
		det, err := stream.New(mk(risk))
		if err != nil {
			return autoThresholdLeg{}, err
		}
		defer det.Close()
		rng := rand.New(rand.NewSource(71))
		flat := make([]float64, epochTicks*d)
		out := make([]bool, epochTicks)
		feed := func(epochs int, scale float64) float64 {
			flags := 0
			for e := 0; e < epochs; e++ {
				for i := range flat {
					flat[i] = rng.Float64() * scale
				}
				det.ProcessBatch(flat, out)
				for _, f := range out {
					if f {
						flags++
					}
				}
			}
			return float64(flags) / float64(epochs*epochTicks)
		}
		feed(warmEpochs, 1)
		steady := feed(measureEpochs, 1)
		// The support collapses to [0, 0.5)^d; re-learn, then measure.
		feed(warmEpochs, 0.5)
		drifted := feed(measureEpochs, 0.5)
		s := det.Stats()
		inBand := func(rate float64) bool {
			return risk > 0 && rate >= risk/3 && rate <= risk*3
		}
		return autoThresholdLeg{
			Name:             name,
			Risk:             risk,
			WarmEpochs:       warmEpochs,
			MeasureEpochs:    measureEpochs,
			FlaggedSteady:    steady,
			FlaggedPostDrift: drifted,
			InBandSteady:     inBand(steady),
			InBandPostDrift:  inBand(drifted),
			Calibrations:     s.Calibrations,
			EffTrials:        s.AutoEffTrials,
		}, nil
	}
	res := &autoThresholdResult{Dims: d, Shards: 1, EpochTicks: epochTicks}
	for _, l := range []struct {
		name          string
		risk          float64
		measureEpochs int
	}{
		{"auto/q=1e-3", 1e-3, 200},
		{"auto/q=1e-4", 1e-4, 1000},
		{"fixed", 0, 200},
	} {
		r, err := leg(l.name, l.risk, l.measureEpochs)
		if err != nil {
			return nil, err
		}
		res.Legs = append(res.Legs, r)
	}
	return res, nil
}

// gitSHA resolves the current commit, preferring the flag value; falls
// back to asking git, then to "unknown" so the artifact never lies by
// omission.
func gitSHA(flagVal string) string {
	if flagVal != "" {
		return flagVal
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func main() {
	out := flag.String("out", "BENCH_core.json", "output JSON path")
	dur := flag.Duration("duration", 2*time.Second, "measurement duration per configuration")
	batch := flag.Int("batch", 512, "batch size in points")
	sha := flag.String("gitsha", "", "git commit to record (default: ask git)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark runs to this file")
	flag.Parse()
	if *batch < 1 {
		fmt.Fprintf(os.Stderr, "spotbench: -batch must be ≥ 1, got %d\n", *batch)
		os.Exit(2)
	}
	if *dur <= 0 {
		fmt.Fprintf(os.Stderr, "spotbench: -duration must be positive, got %v\n", *dur)
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spotbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "spotbench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	rep := report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GitSHA:     gitSHA(*sha),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Ratios:     map[string]float64{},
	}
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "spotbench: %v\n", err)
		os.Exit(1)
	}
	perDim := map[int]map[int]float64{}
	var gridOn result // the d=20/shards=1 grid point doubles as the clustered coalesce-on leg
	for _, d := range []int{20, 50, 100} {
		perDim[d] = map[int]float64{}
		for _, shards := range []int{1, 4, 8} {
			r, err := run(fmt.Sprintf("d=%d/shards=%d", d, shards), d, shards, *batch, *dur, false, false)
			if err != nil {
				fail(err)
			}
			fmt.Printf("%-18s %12.0f points/sec  auc=%.3f p@%d=%.3f (bitset %.3f)  (%d subspaces, %d cells, %.0f distinct/batch ×%.1f dup)\n",
				r.Name, r.PointsPerSec, r.AUC, r.RankK, r.PrecisionAtK, r.BitsetPrecisionAtK,
				r.Subspaces, r.ProjectedCell, r.DistinctCellsPerBatch, r.CellDupRatio)
			rep.Benchmarks = append(rep.Benchmarks, r)
			perDim[d][shards] = r.PointsPerSec
			if d == 20 && shards == 1 {
				gridOn = r
			}
		}
		if perDim[d][1] > 0 {
			rep.Ratios[fmt.Sprintf("d=%d", d)] = perDim[d][8] / perDim[d][1]
		}
	}
	// Duplication-aware coalescing scenarios at d=20/shards=1: the win
	// case (clustered — its coalesce-on leg IS the grid measurement,
	// not a duplicate run) and the adversarial stay-flat case (uniform)
	// each get a NoCoalesce counterpart row.
	clOff, err := run("d=20/shards=1/clustered/nocoalesce", 20, 1, *batch, *dur, false, true)
	if err != nil {
		fail(err)
	}
	uqOn, err := run("d=20/shards=1/unique/coalesce", 20, 1, *batch, *dur, true, false)
	if err != nil {
		fail(err)
	}
	uqOff, err := run("d=20/shards=1/unique/nocoalesce", 20, 1, *batch, *dur, true, true)
	if err != nil {
		fail(err)
	}
	rep.Benchmarks = append(rep.Benchmarks, clOff, uqOn, uqOff)
	rep.Coalesce = append(rep.Coalesce, coalesceSummary("clustered", gridOn, clOff), coalesceSummary("unique", uqOn, uqOff))
	for _, cr := range rep.Coalesce {
		fmt.Printf("coalesce %-10s %8.0f vs %8.0f points/sec off (×%.2f, %.0f distinct/batch ×%.1f dup)\n",
			cr.Scenario, cr.PointsPerSecOn, cr.PointsPerSecOff, cr.OnOverOff, cr.DistinctCellsPerBatch, cr.CellDupRatio)
	}
	sp, err := runSweepPause()
	if err != nil {
		fail(err)
	}
	rep.SweepPause = sp
	fmt.Printf("sweep pause d=%d/shards=%d: serial %.0fns parallel %.0fns (×%.2f, %d cells)\n",
		sp.Dims, sp.Shards, sp.SerialNsPerSweep, sp.ParallelNsPerSweep, sp.ParallelOverSerial, sp.ProjectedCells)
	dr, err := runDrift()
	if err != nil {
		fail(err)
	}
	rep.Drift = dr
	fmt.Printf("drift d=%d: entries mid=%d end=%d (×%.2f), %d without eviction\n",
		dr.Dims, dr.EntriesMid, dr.EntriesEnd, dr.GrowthRatio, dr.UnboundedEntries)
	er, err := runEvolution()
	if err != nil {
		fail(err)
	}
	rep.Evolution = er
	fmt.Printf("evolution d=%d: promoted=%d demoted=%d recall=%.3f (%d/%d)\n",
		er.Dims, er.Promoted, er.Demoted, er.Recall, er.Caught, er.Planted)
	sr, err := runSupervised()
	if err != nil {
		fail(err)
	}
	rep.Supervised = sr
	fmt.Printf("supervised d=%d: recall %.3f (moga truth=%v) vs unsupervised %.3f (truth=%v), %d examples\n",
		sr.Dims, sr.RecallSup, sr.TruthFoundByMOGA, sr.RecallUnsup, sr.TruthFoundUnsup, sr.ExamplesMarked)
	ck, err := runCheckpoint(*dur, *batch)
	if err != nil {
		fail(err)
	}
	rep.Checkpoint = ck
	fmt.Printf("checkpoint d=%d/shards=%d: %d bytes (%d cells), encode %.0fns decode %.0fns\n",
		ck.Dims, ck.Shards, ck.SnapshotBytes, ck.ProjectedCells, ck.EncodeNsPerOp, ck.DecodeNsPerOp)
	svp, svpRows, err := runServingPath(*dur, *batch)
	if err != nil {
		fail(err)
	}
	rep.ServingPath = svp
	rep.Benchmarks = append(rep.Benchmarks, svpRows...)
	fmt.Printf("serving path d=%d: library %.0f, daemon %.0f (×%.2f), +standby %.0f (×%.2f, %d gens %d bytes shipped, %d ticks behind)\n",
		svp.Dims, svp.LibraryPointsPerSec, svp.DaemonPointsPerSec, svp.DaemonOverLibrary,
		svp.StandbyPointsPerSec, svp.StandbyOverDaemon, svp.GenerationsShipped, svp.ReplicationBytes, svp.StandbyTicksBehind)
	at, err := runAutoThreshold()
	if err != nil {
		fail(err)
	}
	rep.AutoThreshold = at
	for _, l := range at.Legs {
		fmt.Printf("auto-threshold %-12s steady %.2e post-drift %.2e (band [q/3,3q]: %v/%v, %d calibrations)\n",
			l.Name, l.FlaggedSteady, l.FlaggedPostDrift, l.InBandSteady, l.InBandPostDrift, l.Calibrations)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
