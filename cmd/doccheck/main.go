// Command doccheck enforces the repo's godoc discipline without
// third-party linters: every package must have a package comment, and
// every exported top-level symbol (function, method, type, const, var)
// must carry a doc comment. It parses the tree with go/ast only, so it
// runs identically in CI and in hermetic build environments.
//
// Usage:
//
//	doccheck [dir ...]
//
// Directories are walked recursively; _test.go files, testdata and
// hidden directories are skipped. Exits 1 listing every offender.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	dirs := map[string]bool{}
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				dirs[filepath.Dir(path)] = true
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var problems []string
	for _, dir := range sorted {
		problems = append(problems, checkDir(dir)...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported symbol(s)\n", len(problems))
		os.Exit(1)
	}
}

// checkDir parses every non-test Go file of one package directory and
// returns a formatted problem line per missing doc comment.
func checkDir(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: parse error: %v", dir, err)}
	}
	var problems []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for name, f := range pkg.Files {
			problems = append(problems, checkFile(fset, name, f)...)
		}
	}
	return problems
}

// checkFile reports every exported top-level symbol of one file that
// lacks a doc comment.
func checkFile(fset *token.FileSet, _ string, f *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			// Methods on unexported receivers are unreachable API; skip.
			if d.Recv != nil && !exportedRecv(d.Recv) {
				continue
			}
			if d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					// A doc comment on the grouped decl, the spec, or a
					// trailing line comment all count.
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// exportedRecv reports whether a method receiver's base type is
// exported.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true // unusual shape: err on the side of checking
		}
	}
}
