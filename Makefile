.PHONY: build test bench vet lint

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

# lint = vet + the repo's godoc discipline: every exported symbol in
# internal/ and cmd/ must carry a doc comment (see cmd/doccheck).
lint: vet
	go run ./cmd/doccheck ./internal ./cmd

bench:
	./scripts/bench.sh
