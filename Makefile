.PHONY: build test bench microbench vet lint fuzz cover

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

# Short native-fuzzing smoke over the cell-key round-trip property; a
# counterexample fails the run and is minimized into testdata/fuzz as a
# permanent regression case.
fuzz:
	go test -run '^$$' -fuzz FuzzEncodeDecodeCell -fuzztime 10s ./internal/core

# lint = vet + the repo's godoc discipline (every exported symbol in
# internal/ and cmd/ must carry a doc comment, see cmd/doccheck) + the
# fuzz smoke run.
lint: vet fuzz
	go run ./cmd/doccheck ./internal ./cmd

# Coverage gate: fails when internal/... test coverage drops below the
# checked-in threshold (scripts/coverage_threshold.txt).
cover:
	./scripts/coverage.sh

bench:
	./scripts/bench.sh

# Hot-path microbenchmarks: the open-addressed cell table vs its
# map-backed oracle (internal/core) and the detector's point/batch
# ingestion paths (internal/stream), with allocation reporting. The
# -run filter also executes the zero-allocs gates, so a steady-state
# allocation on the hot path fails the target. Override BENCHTIME
# (e.g. BENCHTIME=1x) for a smoke run in CI.
BENCHTIME ?= 1s
microbench:
	go test -run 'ZeroAllocs' -bench 'PCSTable|ProcessPoint|ProcessBatch' -benchmem -benchtime $(BENCHTIME) ./internal/core ./internal/stream
