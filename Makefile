.PHONY: build test bench vet

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

bench:
	./scripts/bench.sh
