.PHONY: build test bench vet lint fuzz cover

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

# Short native-fuzzing smoke over the cell-key round-trip property; a
# counterexample fails the run and is minimized into testdata/fuzz as a
# permanent regression case.
fuzz:
	go test -run '^$$' -fuzz FuzzEncodeDecodeCell -fuzztime 10s ./internal/core

# lint = vet + the repo's godoc discipline (every exported symbol in
# internal/ and cmd/ must carry a doc comment, see cmd/doccheck) + the
# fuzz smoke run.
lint: vet fuzz
	go run ./cmd/doccheck ./internal ./cmd

# Coverage gate: fails when internal/... test coverage drops below the
# checked-in threshold (scripts/coverage_threshold.txt).
cover:
	./scripts/coverage.sh

bench:
	./scripts/bench.sh
