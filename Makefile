.PHONY: build test bench bench-compare microbench vet lint fuzz cover e2e chaos

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

# Short native-fuzzing smoke over the cell-key round-trip property and
# the snapshot codec (mutated checkpoint bytes must decode with
# matching CRCs or fail with a typed error — never panic or over-
# allocate); a counterexample fails the run and is minimized into
# testdata/fuzz as a permanent regression case.
fuzz:
	go test -run '^$$' -fuzz FuzzEncodeDecodeCell -fuzztime 10s ./internal/core
	go test -run '^$$' -fuzz FuzzSnapshotRoundTrip -fuzztime 10s ./internal/snapshot
	go test -run '^$$' -fuzz FuzzScoreStateRoundTrip -fuzztime 10s ./internal/stream

# lint = vet + the repo's godoc discipline (every exported symbol in
# internal/ and cmd/ must carry a doc comment, see cmd/doccheck) + the
# fuzz smoke run.
lint: vet fuzz
	go run ./cmd/doccheck ./internal ./cmd

# Coverage gate: fails when internal/... test coverage drops below the
# checked-in threshold (scripts/coverage_threshold.txt).
cover:
	./scripts/coverage.sh

# spotd crash-recovery e2e: builds the daemon binary, streams into it,
# SIGKILLs it mid-stream, restarts over the same data directory and
# replays — recovered verdicts must match the uninterrupted oracle bit
# for bit; the SIGTERM variant must drain, checkpoint every
# acknowledged point and exit 0.
e2e:
	go test -count=1 -run 'TestE2E' -v ./cmd/spotd

# Replication chaos drill, under the race detector: a primary+standby
# spotd pair streams a labeled workload while the harness SIGKILLs
# processes (promote + restart per the failover runbook), severs the
# replication link through a proxy, and corrupts every Nth shipped
# snapshot on the wire. Every verdict must match an uninterrupted
# oracle at the tick the server reports, every call must return a
# verdict or typed error (never hang), and no standby may accept a
# generation that regresses one it holds. CHAOS_ROUNDS overrides the
# default 20 randomized rounds.
chaos:
	go test -race -count=1 -run 'TestChaosFailover' -v ./cmd/spotd

bench:
	./scripts/bench.sh

# Regression gate on the tracked perf baseline: run the benchmark grid
# into a scratch artifact and diff it against the checked-in
# BENCH_core.json — exits non-zero when any shared scenario loses more
# than 10% points/sec (cmd/benchdiff; threshold and warn-only mode are
# flags there). Override BENCHDUR for a quicker, noisier run.
BENCHDUR ?= 2s
bench-compare:
	go run ./cmd/spotbench -out /tmp/BENCH_new.json -duration $(BENCHDUR)
	go run ./cmd/benchdiff BENCH_core.json /tmp/BENCH_new.json

# Hot-path microbenchmarks: the open-addressed cell table vs its
# map-backed oracle (internal/core) and the detector's point/batch
# ingestion paths (internal/stream), with allocation reporting. The
# -run filter also executes the zero-allocs gates, so a steady-state
# allocation on the hot path fails the target. Override BENCHTIME
# (e.g. BENCHTIME=1x) for a smoke run in CI.
BENCHTIME ?= 1s
microbench:
	go test -run 'ZeroAllocs' -bench 'PCSTable|ProcessPoint|ProcessBatch' -benchmem -benchtime $(BENCHTIME) ./internal/core ./internal/stream
