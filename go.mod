module spot

go 1.22
